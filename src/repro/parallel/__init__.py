"""Parallel query-batch execution over a shared per-graph index cache."""

from repro.parallel.executor import STRATEGIES, BatchExecutor, ExecutorReport

__all__ = ["BatchExecutor", "ExecutorReport", "STRATEGIES"]
