"""Parallel query-batch execution over a shared per-graph index cache."""

from repro.parallel.executor import STRATEGIES, BatchExecutor, ExecutorReport
from repro.parallel.pool import WorkerPool

__all__ = ["BatchExecutor", "ExecutorReport", "STRATEGIES", "WorkerPool"]
