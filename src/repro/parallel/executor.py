"""Batch executor: fan a query stream out over a worker pool.

:class:`BatchExecutor` answers a batch of queries against one
:class:`~repro.core.dsql.DSQL` session using one of three strategies:

``serial``
    Exactly ``session.query_many`` — the reference semantics.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` sharing the session
    directly. Every worker reads the same pinned
    :class:`~repro.indexes.graph_cache.GraphIndexCache` (whose candidate-pool
    memo is internally locked); per-query search state is worker-local.
    Useful when the hot loops release the GIL (numpy-backed backends) or the
    workload is I/O-interleaved; on pure-Python search it degrades gracefully
    to roughly serial throughput.
``process``
    A fork-based :class:`~concurrent.futures.ProcessPoolExecutor`. The
    session — graph, warmed index cache, config — is *inherited* by the
    forked children through a module global rather than pickled, so workers
    start with the same shared per-graph state the parent already paid for.
    Queries travel to workers as plain ``(labels, edges)`` payloads and only
    the (picklable, frozen) :class:`~repro.core.result.DSQResult` comes back.

Whatever the strategy, ``run`` returns results **in input order and
bit-identical to serial** ``session.query_many(queries)``: the parallel
strategies search each distinct query structure on a worker, then replay the
batch through the session's own memo logic (:meth:`DSQL._memo_answer`), so
LRU contents, hit/miss counters and ``from_cache`` flags all evolve exactly
as a serial run's would. Determinism of the underlying search (fixed seeds,
sorted iteration everywhere) makes the worker-computed result equal to the
one a serial run would have computed in place.

Failure handling degrades gracefully: a chunk whose worker crashes (e.g. a
forked child OOM-killed, tearing down the whole process pool) is re-run
serially in the parent, so a batch always completes with full results.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.core.result import DSQResult
from repro.exceptions import ConfigError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

STRATEGIES = ("serial", "thread", "process")
"""Supported execution strategies, in escalating-isolation order."""

logger = logging.getLogger("repro.parallel")

# Chunks per worker when auto-chunking: small enough to amortize dispatch,
# large enough that a straggler chunk cannot idle the rest of the pool long.
_CHUNKS_PER_JOB = 4

# The forked children's handle on the parent's session (graph + warmed index
# cache + config). Set only for the lifetime of one process-strategy run;
# fork inheritance makes it visible in the workers without pickling.
_FORK_SESSION: Optional[DSQL] = None

Key = Tuple
_ProcessItem = Tuple[Key, Sequence, List[Tuple[int, int]]]


def default_jobs() -> int:
    """Worker count honoring CPU affinity (cgroup/taskset aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _process_chunk(payload: List[_ProcessItem]) -> List[Tuple[Key, DSQResult]]:
    """Worker body for the process strategy (runs in a forked child)."""
    session = _FORK_SESSION
    out = []
    for key, labels, edges in payload:
        out.append((key, session.query(QueryGraph(labels, edges))))
    return out


@dataclass(frozen=True)
class ExecutorReport:
    """What one :meth:`BatchExecutor.run` call actually did.

    ``searches`` counts queries answered by running a search (distinct query
    structures not already memoized); the remaining ``len(batch) - searches``
    were replayed from the session memo. ``chunks_retried`` counts chunks
    whose worker failed and which were re-run serially in the parent.
    """

    strategy: str
    jobs: int
    batch: int
    searches: int
    chunks: int
    chunks_retried: int


class BatchExecutor:
    """Answer query batches over a thread/process pool, serially reproducible.

    Parameters
    ----------
    graph:
        The data graph, or an existing :class:`DSQL` session to execute
        against (then ``config``/``k`` must be omitted).
    config, k:
        Forwarded to :class:`DSQL` when ``graph`` is a graph.
    strategy:
        One of :data:`STRATEGIES`.
    jobs:
        Worker count; defaults to the CPUs this process may run on.
    chunk_size:
        Queries per dispatched chunk; default splits the distinct-query work
        into ~4 chunks per worker.
    """

    def __init__(
        self,
        graph: Union[LabeledGraph, DSQL],
        config: Optional[DSQLConfig] = None,
        k: Optional[int] = None,
        *,
        strategy: str = "serial",
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown strategy {strategy!r}; choose from {list(STRATEGIES)}"
            )
        if isinstance(graph, DSQL):
            if config is not None or k is not None:
                raise ValueError("pass either a DSQL session or config/k, not both")
            self.session = graph
        else:
            self.session = DSQL(graph, config=config, k=k)
        if jobs is not None and jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.strategy = strategy
        self.jobs = default_jobs() if jobs is None else jobs
        self.chunk_size = chunk_size
        self.last_report: Optional[ExecutorReport] = None

    # ------------------------------------------------------------------
    def run(self, queries) -> List[DSQResult]:
        """Answer the batch; results are in input order, identical to serial."""
        queries = list(queries)
        session = self.session
        if self.strategy == "serial" or self.jobs <= 1 or len(queries) <= 1:
            results = session.query_many(queries)
            self.last_report = ExecutorReport(
                strategy=self.strategy,
                jobs=1,
                batch=len(queries),
                searches=sum(1 for r in results if not r.from_cache),
                chunks=0,
                chunks_retried=0,
            )
            self._record_report()
            return results

        keys = [q.canonical_key() for q in queries]
        need = self._plan_searches(keys, queries)
        logger.debug(
            "batch of %d: %d distinct searches over %d %s workers",
            len(queries),
            len(need),
            self.jobs,
            self.strategy,
        )
        fresh, chunks, retried = self._search_parallel(need)
        # Replay the batch through the session's own memo step: LRU state,
        # hit/miss counters and from_cache flags evolve exactly as in a
        # serial query_many, with compute() served by the worker results.
        results = [
            session._memo_answer(key, lambda key=key: fresh[key])
            for key in keys
        ]
        self.last_report = ExecutorReport(
            strategy=self.strategy,
            jobs=self.jobs,
            batch=len(queries),
            searches=len(need),
            chunks=chunks,
            chunks_retried=retried,
        )
        self._record_report()
        return results

    def _record_report(self) -> None:
        """Flush :attr:`last_report` into the session's instrumentation."""
        instr = self.session.instrumentation
        report = self.last_report
        if instr is None or report is None:
            return
        metrics = instr.metrics
        metrics.counter("executor.batches").inc()
        metrics.counter("executor.queries").inc(report.batch)
        metrics.counter("executor.searches").inc(report.searches)
        if report.chunks:
            metrics.counter("executor.chunks").inc(report.chunks)
        if report.chunks_retried:
            metrics.counter("executor.chunks_retried").inc(report.chunks_retried)
        instr.point(
            "executor.batch",
            strategy=report.strategy,
            jobs=report.jobs,
            batch=report.batch,
            searches=report.searches,
            chunks=report.chunks,
            chunks_retried=report.chunks_retried,
        )

    # ------------------------------------------------------------------
    def _plan_searches(
        self, keys: List[Key], queries: List[QueryGraph]
    ) -> Dict[Key, QueryGraph]:
        """Distinct query structures a serial run would actually search.

        Simulates the batch against a mirror of the current memo (with the
        same LRU capacity) so keys that will be evicted mid-batch and
        re-missed are still searched only once — the search is deterministic,
        so one worker result serves every miss of that key.
        """
        session = self.session
        cap = session.config.query_cache_size
        need: Dict[Key, QueryGraph] = {}
        if cap == 0:
            for key, query in zip(keys, queries):
                need.setdefault(key, query)
            return need
        mirror = dict.fromkeys(session._query_cache)
        for key, query in zip(keys, queries):
            if key in mirror:
                continue
            need.setdefault(key, query)
            mirror[key] = None
            if cap is not None and len(mirror) > cap:
                del mirror[next(iter(mirror))]
        return need

    # ------------------------------------------------------------------
    def _chunk(self, items: List) -> List[List]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(items) // (self.jobs * _CHUNKS_PER_JOB)))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _search_parallel(
        self, need: Dict[Key, QueryGraph]
    ) -> Tuple[Dict[Key, DSQResult], int, int]:
        """Search every distinct query on the pool; returns (results, chunks, retried)."""
        if not need:
            return {}, 0, 0
        session = self.session
        # Warm the per-graph cache before any worker (or fork) exists, so the
        # expensive one-off index build is shared rather than raced/duplicated.
        session.graph.index_cache()
        if self.strategy == "thread":
            items = list(need.items())
            chunks = self._chunk(items)

            def run_chunk(chunk):
                return [(key, session.query(query)) for key, query in chunk]

            def retry_chunk(chunk):
                return [(key, session.query(query)) for key, query in chunk]

            return self._dispatch(ThreadPoolExecutor, chunks, run_chunk, retry_chunk)

        # process strategy: ship (labels, edges) payloads, inherit the session.
        items = [
            (key, list(query.labels), list(query.edges()))
            for key, query in need.items()
        ]
        chunks = self._chunk(items)

        def retry_payload(chunk):
            return [
                (key, session.query(QueryGraph(labels, edges)))
                for key, labels, edges in chunk
            ]

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            # No fork, no cheap shared cache: degrade to in-process execution.
            results = {}
            for chunk in chunks:
                results.update(retry_payload(chunk))
            return results, len(chunks), len(chunks)

        global _FORK_SESSION
        _FORK_SESSION = session
        try:
            return self._dispatch(
                lambda max_workers: ProcessPoolExecutor(
                    max_workers=max_workers, mp_context=context
                ),
                chunks,
                _process_chunk,
                retry_payload,
            )
        finally:
            _FORK_SESSION = None

    def _dispatch(
        self,
        pool_factory: Callable,
        chunks: List[List],
        worker: Callable,
        retry: Callable,
    ) -> Tuple[Dict[Key, DSQResult], int, int]:
        """Submit chunks, collect results, re-run failed chunks serially."""
        results: Dict[Key, DSQResult] = {}
        failed: List[List] = []
        workers = min(self.jobs, len(chunks))
        with pool_factory(workers) as pool:
            futures = [(pool.submit(worker, chunk), chunk) for chunk in chunks]
            for future, chunk in futures:
                try:
                    results.update(future.result())
                except Exception:
                    # Worker (or the whole pool) died; the chunk is intact in
                    # the parent, so fall back to searching it here.
                    logger.warning(
                        "worker chunk of %d queries failed; retrying serially",
                        len(chunk),
                        exc_info=True,
                    )
                    failed.append(chunk)
        for chunk in failed:
            results.update(retry(chunk))
        return results, len(chunks), len(failed)
