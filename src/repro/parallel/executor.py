"""Batch executor: fan a query stream out over a worker pool.

:class:`BatchExecutor` answers a batch of queries against one
:class:`~repro.core.dsql.DSQL` session using one of three strategies:

``serial``
    Exactly ``session.query_many`` — the reference semantics.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` sharing the session
    directly. Every worker reads the same pinned
    :class:`~repro.indexes.graph_cache.GraphIndexCache` (whose candidate-pool
    memo is internally locked); per-query search state is worker-local.
    Useful when the hot loops release the GIL (numpy-backed backends) or the
    workload is I/O-interleaved; on pure-Python search it degrades gracefully
    to roughly serial throughput.
``process``
    A persistent :class:`~repro.parallel.pool.WorkerPool`, created lazily on
    the first process batch and **reused for every batch after it**. The
    graph is published to shared memory once
    (:mod:`repro.graph.shared`); workers attach at spawn and keep their DSQL
    sessions — plan caches, candidate pools, adjacency bitsets — warm across
    batches. Queries travel as plain ``(labels, edges)`` payloads; frozen
    :class:`~repro.core.result.DSQResult` objects come back together with
    each worker's counter snapshot, which is merged into the parent's
    metrics registry so ``search.*``/``kernel.dispatch.*`` stay truthful.

Whatever the strategy, ``run`` returns results **in input order and
bit-identical to serial** ``session.query_many(queries)``: the parallel
strategies search each distinct query structure on a worker, then replay the
batch through the session's own memo logic (:meth:`DSQL._memo_answer`), so
LRU contents, hit/miss counters and ``from_cache`` flags all evolve exactly
as a serial run's would. Determinism of the underlying search (fixed seeds,
sorted iteration everywhere) makes the worker-computed result equal to the
one a serial run would have computed in place.

Failure handling degrades gracefully: a chunk whose worker crashes (e.g. a
forked child OOM-killed, breaking the whole process pool) is re-run
serially in the parent, the broken pool is discarded, and the next batch
builds a fresh one — a batch always completes with full results. Wedges
are bounded the same way crashes are: chunk waits carry a generous timeout
(:attr:`BatchExecutor.pool_timeout_s`), and a pool that produces nothing
inside it — every worker stuck, e.g. on a lock fork captured mid-operation
from another parent thread — is killed and its chunks re-run serially.
Platforms where shared memory or multiprocessing is unavailable fall back
to in-process execution (counted as retried chunks).

Executors owning a process pool hold shared-memory segments; call
:meth:`BatchExecutor.close` (or use the executor as a context manager) when
done. Serial/thread executors hold nothing and need no teardown.
"""

from __future__ import annotations

import logging
import os
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.core.result import DSQResult
from repro.exceptions import ConfigError, SharedMemoryError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.parallel.pool import WorkerPool

STRATEGIES = ("serial", "thread", "process")
"""Supported execution strategies, in escalating-isolation order."""

logger = logging.getLogger("repro.parallel")

# Chunks per worker when auto-chunking: small enough to amortize dispatch,
# large enough that a straggler chunk cannot idle the rest of the pool long.
_CHUNKS_PER_JOB = 4

Key = Tuple


def default_jobs() -> int:
    """Worker count honoring CPU affinity (cgroup/taskset aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ExecutorReport:
    """What one :meth:`BatchExecutor.run` call actually did.

    ``searches`` counts queries answered by running a search (distinct query
    structures not already memoized); the remaining ``len(batch) - searches``
    were replayed from the session memo. ``chunks_retried`` counts chunks
    whose worker failed and which were re-run serially in the parent.
    ``per_worker`` holds ``(pid, searches)`` rows for process batches —
    which worker answered how many distinct queries — and is empty for the
    serial and thread strategies.
    """

    strategy: str
    jobs: int
    batch: int
    searches: int
    chunks: int
    chunks_retried: int
    per_worker: Tuple[Tuple[int, int], ...] = field(default=())


class BatchExecutor:
    """Answer query batches over a thread/process pool, serially reproducible.

    Parameters
    ----------
    graph:
        The data graph, or an existing :class:`DSQL` session to execute
        against (then ``config``/``k`` must be omitted).
    config, k:
        Forwarded to :class:`DSQL` when ``graph`` is a graph.
    strategy:
        One of :data:`STRATEGIES`.
    jobs:
        Worker count; defaults to the CPUs this process may run on.
    chunk_size:
        Queries per dispatched chunk; default splits the distinct-query work
        into ~4 chunks per worker.
    """

    #: Seconds to wait for one pool chunk before declaring the pool wedged.
    #: Generous next to real chunk times (milliseconds to seconds here);
    #: only a pool whose workers are all stuck — e.g. a fork-time lock
    #: wedge — ever reaches it, and the response is kill-and-retry-serially,
    #: never a missing answer.
    pool_timeout_s: float = 120.0

    def __init__(
        self,
        graph: Union[LabeledGraph, DSQL],
        config: Optional[DSQLConfig] = None,
        k: Optional[int] = None,
        *,
        strategy: str = "serial",
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown strategy {strategy!r}; choose from {list(STRATEGIES)}"
            )
        if isinstance(graph, DSQL):
            if config is not None or k is not None:
                raise ValueError("pass either a DSQL session or config/k, not both")
            self.session = graph
        else:
            self.session = DSQL(graph, config=config, k=k)
        if jobs is not None and jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.strategy = strategy
        self.jobs = default_jobs() if jobs is None else jobs
        self.chunk_size = chunk_size
        self.last_report: Optional[ExecutorReport] = None
        self._pool: Optional[WorkerPool] = None
        self._pool_unavailable = False
        self._per_worker: Tuple[Tuple[int, int], ...] = ()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> Optional[WorkerPool]:
        """The persistent worker pool, if one has been spun up."""
        return self._pool

    def _ensure_pool(self) -> Optional[WorkerPool]:
        """The persistent pool, created on first use; None when unsupported.

        A failed creation (no multiprocessing context, shared-memory
        publication error) is remembered so later batches do not re-pay the
        publication attempt; they run in-process instead.
        """
        if self._pool is not None:
            return self._pool
        if self._pool_unavailable:
            return None
        try:
            self._pool = WorkerPool(
                self.session.graph, self.session.config, self.jobs
            )
        except SharedMemoryError:
            logger.warning(
                "worker pool unavailable; process batches will run in-process",
                exc_info=True,
            )
            self._pool_unavailable = True
            return None
        return self._pool

    def _discard_pool(self) -> None:
        """Tear down a (typically broken) pool; the next batch rebuilds it."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close(wait=False)

    def close(self) -> None:
        """Release the worker pool and its shared segments (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def run(self, queries) -> List[DSQResult]:
        """Answer the batch; results are in input order, identical to serial."""
        queries = list(queries)
        session = self.session
        self._per_worker = ()
        if self.strategy == "serial" or self.jobs <= 1 or len(queries) <= 1:
            results = session.query_many(queries)
            self.last_report = ExecutorReport(
                strategy=self.strategy,
                jobs=1,
                batch=len(queries),
                searches=sum(1 for r in results if not r.from_cache),
                chunks=0,
                chunks_retried=0,
            )
            self._record_report()
            return results

        # Memo keys are version-qualified (graph (epoch, delta_seq) + query
        # canonical structure) via the session's own key builder, so the
        # mirror, the worker results, and the replay all agree with what a
        # serial query_many would have keyed — including across mutations.
        keys = [session.memo_key(q) for q in queries]
        need = self._plan_searches(keys, queries)
        logger.debug(
            "batch of %d: %d distinct searches over %d %s workers",
            len(queries),
            len(need),
            self.jobs,
            self.strategy,
        )
        fresh, chunks, retried = self._search_parallel(need)
        # Replay the batch through the session's own memo step: LRU state,
        # hit/miss counters and from_cache flags evolve exactly as in a
        # serial query_many, with compute() served by the worker results.
        results = [
            session._memo_answer(key, lambda key=key: fresh[key])
            for key in keys
        ]
        self.last_report = ExecutorReport(
            strategy=self.strategy,
            jobs=self.jobs,
            batch=len(queries),
            searches=len(need),
            chunks=chunks,
            chunks_retried=retried,
            per_worker=self._per_worker,
        )
        self._record_report()
        return results

    def _record_report(self) -> None:
        """Flush :attr:`last_report` into the session's instrumentation."""
        instr = self.session.instrumentation
        report = self.last_report
        if instr is None or report is None:
            return
        metrics = instr.metrics
        metrics.counter("executor.batches").inc()
        metrics.counter("executor.queries").inc(report.batch)
        metrics.counter("executor.searches").inc(report.searches)
        if report.chunks:
            metrics.counter("executor.chunks").inc(report.chunks)
        if report.chunks_retried:
            metrics.counter("executor.chunks_retried").inc(report.chunks_retried)
        instr.point(
            "executor.batch",
            strategy=report.strategy,
            jobs=report.jobs,
            batch=report.batch,
            searches=report.searches,
            chunks=report.chunks,
            chunks_retried=report.chunks_retried,
            per_worker=list(report.per_worker),
        )

    # ------------------------------------------------------------------
    def _plan_searches(
        self, keys: List[Key], queries: List[QueryGraph]
    ) -> Dict[Key, QueryGraph]:
        """Distinct query structures a serial run would actually search.

        Simulates the batch against a mirror of the current memo (with the
        same LRU capacity) so keys that will be evicted mid-batch and
        re-missed are still searched only once — the search is deterministic,
        so one worker result serves every miss of that key.

        The mirror must replicate :meth:`DSQL._memo_answer`'s LRU semantics
        exactly, including the ``move_to_end`` on a hit: skipping hits
        without refreshing their recency would evict in a different order
        than the replay, predict a hit for a key the replay actually
        misses, and die on ``fresh[key]``.
        """
        session = self.session
        cap = session.config.query_cache_size
        need: Dict[Key, QueryGraph] = {}
        if cap == 0:
            for key, query in zip(keys, queries):
                need.setdefault(key, query)
            return need
        mirror: "OrderedDict[Key, None]" = OrderedDict.fromkeys(session._query_cache)
        for key, query in zip(keys, queries):
            if key in mirror:
                mirror.move_to_end(key)
                continue
            need.setdefault(key, query)
            mirror[key] = None
            if cap is not None and len(mirror) > cap:
                mirror.popitem(last=False)
        return need

    # ------------------------------------------------------------------
    def _chunk(self, items: List) -> List[List]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(items) // (self.jobs * _CHUNKS_PER_JOB)))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _search_parallel(
        self, need: Dict[Key, QueryGraph]
    ) -> Tuple[Dict[Key, DSQResult], int, int]:
        """Search every distinct query on the pool; returns (results, chunks, retried)."""
        if not need:
            return {}, 0, 0
        session = self.session
        # Warm the per-graph cache before any worker dispatch, so the
        # expensive one-off index build is shared rather than raced/duplicated
        # (for the process pool this also feeds the shared-memory publication).
        session.graph.index_cache()
        if self.strategy == "thread":
            items = list(need.items())
            chunks = self._chunk(items)

            def run_chunk(chunk):
                return [(key, session.query(query)) for key, query in chunk]

            def retry_chunk(chunk):
                return [(key, session.query(query)) for key, query in chunk]

            return self._dispatch_threads(chunks, run_chunk, retry_chunk)

        # process strategy: ship (labels, edges) payloads to the persistent
        # pool, whose workers hold warm sessions over the shared graph.
        items = [
            (key, list(query.labels), list(query.edges()))
            for key, query in need.items()
        ]
        chunks = self._chunk(items)

        def retry_payload(chunk):
            return [
                (key, session.query(QueryGraph(labels, edges)))
                for key, labels, edges in chunk
            ]

        pool = self._ensure_pool()
        if pool is not None and pool.stale:
            # A compaction started a fresh epoch the attached workers can
            # never reach by replay; rebuild the pool (which republishes at
            # the new epoch) before dispatching.
            logger.info("published graph went stale (compaction); rebuilding the pool")
            self._discard_pool()
            pool = self._ensure_pool()
        if pool is None:
            # No shared memory / multiprocessing on this platform: degrade to
            # in-process execution, surfaced as retried chunks.
            results: Dict[Key, DSQResult] = {}
            for chunk in chunks:
                results.update(retry_payload(chunk))
            return results, len(chunks), len(chunks)

        results, failed = self._dispatch_pool(pool, chunks)
        if pool.broken:
            logger.warning("worker pool broke mid-batch; discarding it")
            self._discard_pool()
        for chunk in failed:
            results.update(retry_payload(chunk))
        return results, len(chunks), len(failed)

    def _dispatch_pool(
        self, pool: WorkerPool, chunks: List[List]
    ) -> Tuple[Dict[Key, DSQResult], List[List]]:
        """Run chunks on the persistent pool; failed chunks come back intact.

        Successful chunks contribute their worker's counter snapshot to the
        parent registry and their pid to the per-worker tally.
        """
        results: Dict[Key, DSQResult] = {}
        failed: List[List] = []
        per_worker: Dict[int, int] = {}
        instr = self.session.instrumentation
        futures = []
        for chunk in chunks:
            try:
                futures.append((pool.submit(chunk), chunk))
            except SharedMemoryError:
                # Defensive: submission found the publication stale (e.g. a
                # compaction raced the pre-dispatch check). The chunk is
                # intact in the parent; answer it serially.
                logger.warning(
                    "chunk submission found the publication stale; retrying serially",
                    exc_info=True,
                )
                failed.append(chunk)
        for future, chunk in futures:
            try:
                pid, pairs, counters = future.result(timeout=self.pool_timeout_s)
            except FuturesTimeoutError:
                # Nothing came back for a whole timeout window: the pool is
                # wedged (every worker stuck), not merely slow. Kill it —
                # the outstanding futures then fail fast and land in the
                # retry path below, so the batch still completes serially.
                logger.warning(
                    "worker chunk of %d queries timed out after %.0fs; "
                    "killing the wedged pool",
                    len(chunk),
                    self.pool_timeout_s,
                )
                failed.append(chunk)
                self._discard_pool()
                continue
            except Exception:
                # Worker (or the whole pool) died; the chunk is intact in
                # the parent, so fall back to searching it here.
                logger.warning(
                    "worker chunk of %d queries failed; retrying serially",
                    len(chunk),
                    exc_info=True,
                )
                failed.append(chunk)
                continue
            results.update(pairs)
            per_worker[pid] = per_worker.get(pid, 0) + len(pairs)
            if instr is not None:
                instr.metrics.merge_counters(counters)
        self._per_worker = tuple(sorted(per_worker.items()))
        return results, failed

    def _dispatch_threads(
        self,
        chunks: List[List],
        worker: Callable,
        retry: Callable,
    ) -> Tuple[Dict[Key, DSQResult], int, int]:
        """Submit chunks to a thread pool, re-running failed chunks serially."""
        results: Dict[Key, DSQResult] = {}
        failed: List[List] = []
        workers = min(self.jobs, len(chunks))
        with ThreadPoolExecutor(workers) as tp:
            futures = [(tp.submit(worker, chunk), chunk) for chunk in chunks]
            for future, chunk in futures:
                try:
                    results.update(future.result())
                except Exception:
                    logger.warning(
                        "worker chunk of %d queries failed; retrying serially",
                        len(chunk),
                        exc_info=True,
                    )
                    failed.append(chunk)
        for chunk in failed:
            results.update(retry(chunk))
        return results, len(chunks), len(failed)


__all__ = [
    "STRATEGIES",
    "BatchExecutor",
    "ExecutorReport",
    "default_jobs",
]
