"""Persistent worker pool over a shared-memory graph publication.

This is the process half of the parallel story done right. The old process
strategy paid, *per batch*: a fresh ``ProcessPoolExecutor`` (fork + interp
setup per worker), a module-global session hand-off (racy — two executors
running concurrently clobbered each other), and cold per-worker caches.
:class:`WorkerPool` replaces all three:

* the graph is **published once** to shared memory
  (:func:`~repro.graph.shared.publish_graph`) when the pool is created;
* workers **attach once** at spawn, through the pool initializer — the
  descriptor travels as a pickled initarg, so there is no parent-side
  module global to race on, and a worker's state is scoped to its pool by
  construction;
* each worker keeps a **persistent DSQL session** (and with it the
  per-graph plan cache, candidate-pool memo, and adjacency bitsets) warm
  across every batch the pool ever runs.

Queries still travel to workers as plain ``(labels, edges)`` payloads and
frozen :class:`~repro.core.result.DSQResult` objects come back — plus a
per-chunk counter snapshot, so the parent can merge ``search.*`` /
``kernel.dispatch.*`` metrics that previously died with the worker.

Live mutation rides along as a **catch-up protocol**: every chunk carries a
sync header ``(epoch, target_seq, ops_tail)`` in the parent graph's version
numbering. Workers replay the unseen tail onto their attached views (the
Python-level rows/sets are process-local and mutable; the shared numpy base
is never written) before answering, so worker results stay bit-identical to
the parent's live topology without republishing per delta. A *compaction*
in the parent starts a fresh epoch the workers cannot reach by replay; the
pool then reports :attr:`WorkerPool.stale` and submission raises
:class:`~repro.exceptions.StaleSegmentError` — the executor's cue to
discard the pool and build a fresh publication — rather than ever serving
answers from the old base.

The pool prefers the ``fork`` start method (cheapest, and shares the
publisher's resource tracker); where fork is unavailable it falls back to
``spawn``, which works because everything workers need arrives via
initargs and shared memory rather than inherited globals.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import time
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DSQLConfig
from repro.core.result import DSQResult
from repro.exceptions import SharedMemoryError, StaleSegmentError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.shared import (
    AttachedGraph,
    SharedGraphDescriptor,
    attach_graph,
    publish_graph,
)

logger = logging.getLogger("repro.parallel")

Key = Tuple
ChunkItem = Tuple[Key, Sequence, List[Tuple[int, int]]]
ChunkResult = Tuple[int, List[Tuple[Key, DSQResult]], Dict[str, float]]
"""What one worker chunk returns: ``(worker pid, (key, result) pairs,
non-zero counter snapshot for the chunk)``."""

SyncHeader = Tuple[int, int, Tuple[Tuple[int, Tuple], ...]]
"""Per-chunk mutation sync, in the parent graph's version numbering:
``(epoch, target_seq, ops_tail)`` where ``ops_tail`` is the parent mutation
log's ``(seq, op)`` entries since the publication baseline. Workers apply
only the entries beyond what they have already replayed."""

_WORKER_STATE: Optional["_WorkerState"] = None
"""Child-process-only session state, set by the pool initializer.

Unlike the old ``_FORK_SESSION`` hand-off this is never written in the
parent: each worker process belongs to exactly one pool and receives its
state through initargs, so concurrent pools cannot interleave writes.
"""


class _WorkerState:
    """Everything one worker process keeps warm across batches.

    ``sync_epoch``/``synced_seq`` track mutation catch-up in the *parent's*
    version numbering (which may differ from the attached cache's own
    counters when the publisher converted backends): the worker has replayed
    every parent op up to ``synced_seq`` within ``sync_epoch``.
    """

    __slots__ = ("attachment", "session", "instrumentation", "sync_epoch", "synced_seq")

    def __init__(
        self, attachment: AttachedGraph, session, instrumentation, sync_epoch, synced_seq
    ) -> None:
        self.attachment = attachment
        self.session = session
        self.instrumentation = instrumentation
        self.sync_epoch = sync_epoch
        self.synced_seq = synced_seq


def _init_worker(
    descriptor: SharedGraphDescriptor, config: DSQLConfig, baseline: Tuple[int, int]
) -> None:
    """Pool initializer (runs once in each worker process at spawn).

    Attaches the shared segments (zero-copy for the CSR arrays), builds a
    persistent instrumented session over the attached graph, and pins both
    for the worker's lifetime. ``baseline`` is the parent-side
    ``(epoch, delta_seq)`` at publication time, the starting point for
    mutation catch-up.
    """
    global _WORKER_STATE
    # Late imports keep the module importable in the parent before any
    # worker exists, and off the child's critical path for repeat batches.
    from repro.core.dsql import DSQL
    from repro.observability import Instrumentation

    attachment = attach_graph(descriptor)
    instrumentation = Instrumentation()
    session = DSQL(attachment.graph, config=config, instrumentation=instrumentation)
    _WORKER_STATE = _WorkerState(
        attachment, session, instrumentation, baseline[0], baseline[1]
    )


def _apply_sync(state: "_WorkerState", sync: SyncHeader) -> None:
    """Catch the worker's attached graph up to the parent's version.

    Replays the unseen suffix of the parent's mutation-log tail through the
    attached graph's public mutation API (which delta-repairs the worker's
    own cache). The attached Python views (rows/sets) are process-local and
    mutable; the shared numpy base is read-only and never written — the CSR
    overlay serves the divergence. An epoch change or a sequence gap means a
    compaction severed the replay chain: raise
    :class:`~repro.exceptions.StaleSegmentError` instead of answering from
    a stale view.
    """
    epoch, target_seq, tail = sync
    if epoch != state.sync_epoch:
        raise StaleSegmentError(
            f"worker attached at epoch {state.sync_epoch} cannot reach epoch "
            f"{epoch}: the parent graph compacted; the pool must be rebuilt"
        )
    graph = state.session.graph
    for seq, op in tail:
        if seq <= state.synced_seq:
            continue
        if seq != state.synced_seq + 1:
            raise StaleSegmentError(
                f"mutation catch-up gap: worker synced to {state.synced_seq}, "
                f"next shipped op is {seq}"
            )
        kind = op[0]
        if kind == "add_vertex":
            graph.add_vertex(op[2])
        elif kind == "add_edge":
            graph.add_edge(op[1], op[2])
        elif kind == "remove_edge":
            graph.remove_edge(op[1], op[2])
        else:
            raise StaleSegmentError(f"unknown mutation op {kind!r} in catch-up tail")
        state.synced_seq = seq
    if state.synced_seq != target_seq:
        raise StaleSegmentError(
            f"mutation catch-up fell short: synced to {state.synced_seq}, "
            f"parent is at {target_seq}"
        )


def _run_chunk(payload: Tuple[SyncHeader, List[ChunkItem]]) -> ChunkResult:
    """Worker body: sync to the parent version, then answer one chunk.

    The worker registry is reset per chunk so the returned snapshot holds
    exactly this chunk's counters; the parent merges them into its own
    registry, keeping process-strategy metrics truthful.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer failure surfaces first
        raise RuntimeError("worker pool initializer did not run")
    sync, chunk = payload
    _apply_sync(state, sync)
    state.instrumentation.metrics.reset()
    session = state.session
    out = [
        (key, session.query(QueryGraph(labels, edges)))
        for key, labels, edges in chunk
    ]
    return os.getpid(), out, state.instrumentation.metrics.counters_snapshot()


def _pool_context():
    """The preferred multiprocessing context: fork, else spawn, else None."""
    for method in ("fork", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:  # pragma: no cover - platform-dependent
            continue
    return None  # pragma: no cover - no known platform lacks both


_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()
"""Every not-yet-closed pool, reaped at interpreter exit.

A pool leaked until interpreter shutdown can deadlock the exit: the
executor's manager thread (joined by ``threading._shutdown``) waits for
workers that can no longer receive their wake-up sentinel once
multiprocessing's own atexit hook has reaped the call queue's feeder
thread. Killing the workers outright first unwedges the manager — at exit
no further batches are coming and worker sessions hold no parent-visible
state, so this loses nothing.
"""


def _reap_live_pools() -> None:  # pragma: no cover - interpreter-exit path
    for pool in list(_LIVE_POOLS):
        try:
            pool.close(wait=False)
        except Exception:
            logger.debug("worker pool reap at exit failed", exc_info=True)


atexit.register(_reap_live_pools)


class WorkerPool:
    """N persistent workers attached to one published graph.

    Parameters
    ----------
    graph:
        The data graph to publish; its index cache is warmed (if needed)
        and shipped with the publication.
    config:
        The :class:`~repro.core.config.DSQLConfig` every worker session
        uses. Must match the driving session's config for bit-identical
        replay.
    jobs:
        Worker-process count.

    Raises :class:`~repro.exceptions.SharedMemoryError` when the platform
    cannot support the pool (no multiprocessing context, or shared-memory
    publication failed); callers degrade to in-process execution.
    """

    #: Seconds a graceful :meth:`close` waits for workers to drain before
    #: killing stragglers. Fork can wedge a worker at birth — a lock some
    #: other parent thread held at fork time stays locked forever in the
    #: child — and a wedged worker never reads its shutdown sentinel, so an
    #: unbounded join would hang the caller forever.
    shutdown_grace_s: float = 15.0

    def __init__(self, graph: LabeledGraph, config: DSQLConfig, jobs: int) -> None:
        context = _pool_context()
        if context is None:  # pragma: no cover - platform-dependent
            raise SharedMemoryError("no usable multiprocessing start method")
        self.jobs = jobs
        self._graph = graph
        # Publish BEFORE creating the executor: fork children must inherit
        # the local-token set so they know they share the parent's resource
        # tracker (see repro.graph.shared._LOCAL_TOKENS).
        self._published = publish_graph(graph)
        # The sync baseline is the *parent* graph's version at publication
        # (publish_graph compacts a dirty overlay, so the parent cache is
        # clean here); chunk sync headers and worker catch-up both count in
        # this numbering.
        cache = graph.index_cache()
        self._sync_epoch = cache.epoch
        self._base_seq = cache.delta_seq
        baseline = (cache.epoch, cache.delta_seq)
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self._published.descriptor, config, baseline),
            )
        except Exception:
            self._published.close()
            self._published.unlink()
            raise
        self._closed = False
        _LIVE_POOLS.add(self)

    @property
    def descriptor(self) -> SharedGraphDescriptor:
        return self._published.descriptor

    @property
    def shared_nbytes(self) -> int:
        """Bytes of shared memory backing the published graph."""
        return self._published.nbytes

    @property
    def stale(self) -> bool:
        """Whether the parent graph compacted since publication.

        A stale pool's workers can never catch up by replay (the mutation
        log restarted with the new epoch); the owner should discard the
        pool and build a fresh one, which republishes at the new epoch.
        """
        return self._graph.index_cache().epoch != self._sync_epoch

    def submit(self, chunk: List[ChunkItem]) -> "Future[ChunkResult]":
        """Dispatch one chunk to the pool.

        Each chunk carries a sync header with the parent's current version
        and the mutation-log tail since publication, so workers catch up to
        live deltas before answering. Raises
        :class:`~repro.exceptions.StaleSegmentError` when the parent
        compacted after publication (see :attr:`stale`).
        """
        cache = self._graph.index_cache()
        if cache.epoch != self._sync_epoch:
            raise StaleSegmentError(
                f"published graph is pinned to epoch {self._sync_epoch} but the "
                f"parent is at epoch {cache.epoch}: compaction invalidated the "
                "publication; rebuild the pool"
            )
        sync: SyncHeader = (cache.epoch, cache.delta_seq, cache.ops_since(self._base_seq))
        return self._executor.submit(_run_chunk, (sync, chunk))

    @property
    def broken(self) -> bool:
        """Whether the pool lost its workers (a crashed child breaks the
        whole ``ProcessPoolExecutor``); a broken pool must be replaced."""
        return bool(getattr(self._executor, "_broken", False))

    def close(self, wait: bool = True) -> None:
        """Shut the workers down and free the shared segments (idempotent).

        ``wait=True`` (the default) drains gracefully but with a *bounded*
        join: workers get :attr:`shutdown_grace_s` seconds to pick up their
        shutdown sentinels and exit, then stragglers are killed. The bound
        matters because a fork-wedged worker never reads its sentinel; an
        unbounded join would park the caller (or interpreter shutdown)
        forever. ``wait=False`` — the discard / GC / interpreter-exit
        path — skips the grace period and kills the workers outright:
        nobody is waiting on their results. Unlinking while a worker still
        holds its mapping is safe either way (POSIX keeps the segment alive
        until the last map closes).
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        processes = list(getattr(self._executor, "_processes", {}).values())
        if wait:
            # Wake the manager thread so it delivers sentinels, then give
            # healthy workers a grace window to drain and exit.
            self._executor.shutdown(wait=False)
            deadline = time.monotonic() + self.shutdown_grace_s
            for process in processes:
                process.join(max(0.0, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():
                try:
                    process.kill()
                except Exception:  # pragma: no cover - already dead / no perms
                    pass
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
        self._published.close()
        self._published.unlink()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close(wait=False)
        except Exception:
            pass


__all__ = ["ChunkItem", "ChunkResult", "WorkerPool"]
