"""repro — Diversified Top-k Subgraph Querying in a Large Graph.

A production-quality reproduction of Yang, Fu & Liu (SIGMOD 2016): the DSQL
two-phase, level-wise algorithm for diversified top-k subgraph querying,
together with every substrate the paper's evaluation depends on — a labeled
graph store, a subgraph-isomorphism engine, the maximum k-coverage
algorithm family (Greedy, SWAP0/1/2/A/α), baselines (first-k, COM,
random-start), synthetic stand-ins for the paper's nine datasets, and an
experiment harness regenerating every table and figure.

Quick start::

    from repro import diversified_search
    from repro.datasets import figure1

    graph, query = figure1()
    result = diversified_search(graph, query, k=2)
    print(result.summary())
"""

from repro.core.config import DSQLConfig, variant_config
from repro.core.dsql import DSQL, diversified_search
from repro.core.result import DSQResult
from repro.exceptions import (
    BudgetExceeded,
    ConfigError,
    DatasetError,
    GraphError,
    QueryError,
    ReproError,
)
from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

__version__ = "1.0.0"

__all__ = [
    "LabeledGraph",
    "QueryGraph",
    "GraphBuilder",
    "DSQL",
    "DSQLConfig",
    "DSQResult",
    "diversified_search",
    "variant_config",
    "ReproError",
    "GraphError",
    "QueryError",
    "ConfigError",
    "DatasetError",
    "BudgetExceeded",
    "__version__",
]
