"""Vertex-equivalence compression for subgraph querying (BoostIso-style).

The paper generates its exhaustive embedding streams with BoostIso [24],
which "rewrites vertices with the same neighborhood as a super node" —
structurally equivalent data vertices are interchangeable in any embedding,
so the search can run over equivalence *classes* and multiply out the
combinations. Two standard equivalence notions are used:

* **false twins** — same label and identical open neighborhoods
  ``N(v) == N(w)`` (no edge between the twins);
* **true twins** — same label and identical closed neighborhoods
  ``N(v) ∪ {v} == N(w) ∪ {w}`` (the twins form a clique).

:class:`CompressedGraph` partitions the data graph into twin classes;
:func:`count_embeddings_compressed` runs Algorithm-1-style backtracking
over classes and multiplies falling factorials ``m * (m-1) * ...`` for the
members drawn from each class; :func:`enumerate_embeddings_compressed`
expands class assignments back into concrete embeddings, and
:func:`iter_embeddings_compressed` does the same **lazily** — class-level
frames are searched first and concrete members are drawn only when a frame
is actually consumed, which is what lets coverage-aware consumers stop a
fan-out region after the few members they need.

Since PR 10 the partition also backs the *compiled-plan hot path*
(``DSQLConfig.use_compression``): :class:`~repro.indexes.graph_cache.
GraphIndexCache` caches one ``CompressedGraph`` per ``(epoch, delta_seq)``,
plans compile class-level candidate pools and the ``cbitset`` kernel over
class ids (:mod:`repro.indexes.plans`), and the engines fold per-frame join
masks over classes instead of vertices. Those masks live here:
:meth:`CompressedGraph.class_join_mask` encodes, for a class ``c``, every
class whose members are adjacent to *all* members of ``c`` — by twin
symmetry one bit test per candidate replaces the per-vertex adjacency mask
at ``num_classes`` bits instead of ``num_vertices``.

Live mutation keeps the partition honest without rebuilds
(:meth:`CompressedGraph.apply_delta`): an edge delta changes exactly its
two endpoints' neighborhoods, so those endpoints are **split** out of their
classes into fresh singletons and every derived view (adjacency, join
masks) is invalidated; untouched classes remain valid twin classes because
their members' neighborhoods never changed. The partition only refines
under mutation — re-merging is deferred to the next epoch rebuild.

Exactness (same counts and same embedding sets as the plain engine) is
asserted in the test suite; the win is on graphs with interchangeable
vertices — precisely the fan-out regions that dominate exhaustive
enumeration cost (e.g. the paper's Example 6/7 scenarios, or affiliation
graphs where many leaf actors attach to the same movie).
"""

from __future__ import annotations

from itertools import permutations
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.joinable import UNMATCHED
from repro.isomorphism.match import Mapping
from repro.isomorphism.qsearch import connected_search_order
from repro.queries.ordering import selectivity_order


class CompressedGraph:
    """A twin-class partition of a labeled graph.

    Attributes
    ----------
    classes:
        List of member tuples; ``classes[c]`` are the vertices of class ``c``
        in ascending order.
    class_of:
        ``class_of[v]`` is the class id of vertex ``v``.
    clique:
        ``clique[c]`` is True for true-twin (clique) classes — query edges
        *within* the class are satisfiable.
    split_repairs:
        Number of vertices split out of their class by
        :meth:`apply_delta` over this object's lifetime.
    lazy_expansions:
        Number of concrete embeddings drawn out of class frames by the lazy
        expander (:func:`iter_embeddings_compressed`).

    Class adjacency and the per-class join masks are derived **lazily from a
    representative member** and memoized: every member of a valid twin class
    has the same neighborhood (closed, for cliques), so one neighbor-row
    scan answers for the whole class. Lazy derivation is also what makes
    delta repair cheap — :meth:`apply_delta` only has to drop memos, never
    patch them. Memoized values are pure functions of immutable state
    between deltas, so concurrent rebuilds race benignly (equal values; the
    last store wins — the same contract as the plan lazies).
    """

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        self.classes: List[Tuple[int, ...]] = []
        self.class_of: List[int] = [-1] * graph.num_vertices
        self.clique: List[bool] = []
        self.split_repairs = 0
        self.lazy_expansions = 0
        # Optional sink mirroring lazy_expansions into a metrics registry
        # (wired by GraphIndexCache.compressed when instrumentation is on).
        self.on_lazy_expansion: Optional[Callable[[], None]] = None
        self._adjacency: Dict[int, Set[int]] = {}
        self._join_masks: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        graph = self.graph
        # Pass 1: false twins (identical open neighborhoods).
        open_groups: Dict[Tuple, List[int]] = {}
        for v in graph.vertices():
            key = (graph.label(v), frozenset(graph.neighbors(v)))
            open_groups.setdefault(key, []).append(v)

        assigned = [False] * graph.num_vertices
        for (label, _nbrs), members in open_groups.items():
            if len(members) > 1:
                self._add_class(members, clique=False, assigned=assigned)

        # Pass 2: true twins (identical closed neighborhoods) among the rest.
        closed_groups: Dict[Tuple, List[int]] = {}
        for v in graph.vertices():
            if assigned[v]:
                continue
            key = (graph.label(v), frozenset(graph.neighbors(v)) | {v})
            closed_groups.setdefault(key, []).append(v)
        for (_label, _nbrs), members in closed_groups.items():
            if len(members) > 1:
                self._add_class(members, clique=True, assigned=assigned)

        # Singletons for everything left.
        for v in graph.vertices():
            if not assigned[v]:
                self._add_class([v], clique=False, assigned=assigned)

    def _add_class(self, members: Sequence[int], clique: bool, assigned: List[bool]) -> None:
        cid = len(self.classes)
        self.classes.append(tuple(sorted(members)))
        self.clique.append(clique)
        for v in members:
            self.class_of[v] = cid
            assigned[v] = True

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """Number of twin classes (== vertices of the compressed graph)."""
        return len(self.classes)

    def size(self, cid: int) -> int:
        """Multiplicity of class ``cid``."""
        return len(self.classes[cid])

    def label(self, cid: int) -> object:
        """The shared label of class ``cid``."""
        return self.graph.label(self.classes[cid][0])

    def neighbors(self, cid: int) -> Set[int]:
        """Classes adjacent to ``cid`` (excluding itself).

        Derived from the representative member's neighbor row: twins share
        their (open or closed) neighborhood, so the class ids of one
        member's neighbors are the class ids of every member's neighbors.
        """
        adj = self._adjacency.get(cid)
        if adj is None:
            class_of = self.class_of
            adj = {class_of[w] for w in self.graph.neighbors(self.classes[cid][0])}
            adj.discard(cid)
            self._adjacency[cid] = adj
        return adj

    def adjacent(self, c1: int, c2: int) -> bool:
        """Can a query edge map across ``(c1, c2)``?

        Distinct classes: any member pair carries an edge iff every member
        pair does (twin symmetry). The same class carries within-class
        edges iff it is a clique (true twins).
        """
        if c1 == c2:
            return self.clique[c1] and self.size(c1) > 1
        return c2 in self.neighbors(c1)

    def class_join_mask(self, cid: int) -> int:
        """Join constraint of class ``cid`` as a class-id bitset.

        Bit ``c`` is set iff a data vertex of class ``c`` can sit next to a
        matched vertex of class ``cid``: the adjacent classes, plus the
        self-bit for multi-member cliques. This is the compressed analogue
        of :meth:`~repro.indexes.graph_cache.GraphIndexCache.
        adjacency_mask` — ``num_classes`` bits instead of ``num_vertices``,
        and one mask shared by every member of the class.
        """
        mask = self._join_masks.get(cid)
        if mask is None:
            mask = 0
            for c in self.neighbors(cid):
                mask |= 1 << c
            if self.clique[cid] and len(self.classes[cid]) > 1:
                mask |= 1 << cid
            self._join_masks[cid] = mask
        return mask

    def compression_ratio(self) -> float:
        """``num_classes / |V|`` — lower is more compressible."""
        n = self.graph.num_vertices
        return self.num_classes / n if n else 1.0

    # ------------------------------------------------------------------
    # Live mutation: split repair
    # ------------------------------------------------------------------
    def apply_delta(self, ops) -> int:
        """Repair the partition after the graph applied ``ops``; returns the
        number of vertices split out of a shared class.

        ``ops`` are the normalized applied mutations of
        :meth:`~repro.indexes.graph_cache.GraphIndexCache.apply_delta`. An
        edge op changes the neighborhoods of exactly its two endpoints, so
        those endpoints are detached into fresh singleton classes (class
        ids are stable: old classes shrink in place, new ids append). Every
        *other* class stays a valid twin class — its members' neighborhoods
        did not change — but the memoized adjacency/join-mask views may
        reference reassigned class ids, so all lazies are dropped and
        rebuilt on demand from the representatives.
        """
        dirty: Set[int] = set()
        grew = False
        for op in ops:
            kind = op[0]
            if kind == "add_vertex":
                v = op[1]
                if v != len(self.class_of):
                    raise ValueError(
                        f"out-of-order vertex delta: got id {v}, "
                        f"expected {len(self.class_of)}"
                    )
                cid = len(self.classes)
                self.classes.append((v,))
                self.clique.append(False)
                self.class_of.append(cid)
                grew = True
            elif kind in ("add_edge", "remove_edge"):
                dirty.add(op[1])
                dirty.add(op[2])
            else:
                raise ValueError(f"unknown mutation op {kind!r}")
        splits = 0
        for v in sorted(dirty):
            splits += self._detach(v)
        if splits or dirty or grew:
            # Memoized views may embed pre-delta class ids/neighborhoods;
            # they rebuild lazily at O(deg(representative)) each.
            self._adjacency.clear()
            self._join_masks.clear()
        self.split_repairs += splits
        return splits

    def _detach(self, v: int) -> int:
        """Split ``v`` into a fresh singleton class; returns 1 if it moved."""
        old = self.class_of[v]
        members = self.classes[old]
        if len(members) == 1:
            # Already alone in its class; its neighborhood changed, but the
            # lazy views are rebuilt from scratch after any delta.
            return 0
        self.classes[old] = tuple(w for w in members if w != v)
        cid = len(self.classes)
        self.classes.append((v,))
        self.clique.append(False)
        self.class_of[v] = cid
        return 1


class _ClassSearch:
    """Backtracking over classes with per-class usage counting.

    With a compiled :class:`~repro.indexes.plans.QueryPlan` (compression
    variant), the search order, backward lists, and class-level candidate
    pools come straight off the plan; otherwise they are derived per query
    exactly as the seed did.
    """

    def __init__(
        self,
        compressed: CompressedGraph,
        query: QueryGraph,
        candidates: CandidateIndex,
        node_budget: Optional[int] = None,
        plan=None,
    ) -> None:
        self.compressed = compressed
        self.query = query
        self.node_budget = node_budget
        self.nodes_expanded = 0
        self.budget_exhausted = False
        if plan is not None and getattr(plan, "class_pools", None) is not None:
            self.order = list(plan.order)
            self._backward = [list(b) for b in plan.backward]
            self.class_candidates: List[Set[int]] = [
                set(pool) for pool in plan.class_pools
            ]
            return
        qlist = selectivity_order(query, candidates)
        self.order = connected_search_order(query, qlist)
        position = {u: i for i, u in enumerate(self.order)}
        self._backward = [
            [w for w in query.neighbors(u) if position[w] < position[u]]
            for u in self.order
        ]
        # Class candidates per query node: classes whose representative is a
        # filter-passing candidate (twins share degree and signature).
        self.class_candidates = []
        for u in range(query.size):
            cands = {compressed.class_of[v] for v in candidates.candidates(u)}
            self.class_candidates.append(cands)

    def assignments(self) -> Iterator[List[int]]:
        """Yield query-node -> class-id assignments satisfying all edges."""
        q = self.query.size
        assignment = [UNMATCHED] * q
        usage: Dict[int, int] = {}
        yield from self._recurse(0, assignment, usage)

    def _ok(self, u: int, cid: int, assignment: List[int]) -> bool:
        compressed = self.compressed
        for u2 in self.query.neighbors(u):
            c2 = assignment[u2]
            if c2 == UNMATCHED:
                continue
            if not compressed.adjacent(cid, c2):
                return False
        return True

    def _recurse(
        self, depth: int, assignment: List[int], usage: Dict[int, int]
    ) -> Iterator[List[int]]:
        if depth == self.query.size:
            yield list(assignment)
            return
        u = self.order[depth]
        backward = self._backward[depth]
        if backward:
            pool: Set[int] = set()
            first = assignment[backward[0]]
            pool |= self.compressed.neighbors(first) | {first}
            pool &= self.class_candidates[u]
        else:
            pool = self.class_candidates[u]
        for cid in sorted(pool):
            self.nodes_expanded += 1
            if self.node_budget is not None and self.nodes_expanded > self.node_budget:
                self.budget_exhausted = True
                return
            if usage.get(cid, 0) >= self.compressed.size(cid):
                continue
            if not self._ok(u, cid, assignment):
                continue
            assignment[u] = cid
            usage[cid] = usage.get(cid, 0) + 1
            yield from self._recurse(depth + 1, assignment, usage)
            usage[cid] -= 1
            assignment[u] = UNMATCHED


def count_embeddings_compressed(
    graph: LabeledGraph,
    query: QueryGraph,
    compressed: Optional[CompressedGraph] = None,
    node_budget: Optional[int] = None,
    candidates: Optional[CandidateIndex] = None,
    plan=None,
) -> Tuple[int, bool]:
    """``(count, complete)`` via class search + falling factorials.

    ``complete`` mirrors :func:`repro.isomorphism.qsearch.count_embeddings`:
    ``False`` when ``node_budget`` tripped and the count is a lower bound.
    """
    candidates = candidates or CandidateIndex(graph, query, plan=plan)
    if candidates.any_empty():
        return 0, True
    compressed = compressed or CompressedGraph(graph)
    search = _ClassSearch(
        compressed, query, candidates, node_budget=node_budget, plan=plan
    )
    total = 0
    for assignment in search.assignments():
        counts: Dict[int, int] = {}
        for cid in assignment:
            counts[cid] = counts.get(cid, 0) + 1
        ways = 1
        for cid, used in counts.items():
            m = compressed.size(cid)
            for i in range(used):
                ways *= m - i
        total += ways
    return total, not search.budget_exhausted


def iter_embeddings_compressed(
    graph: LabeledGraph,
    query: QueryGraph,
    compressed: Optional[CompressedGraph] = None,
    node_budget: Optional[int] = None,
    candidates: Optional[CandidateIndex] = None,
    plan=None,
) -> Iterator[Mapping]:
    """Lazily expand class frames into concrete embeddings.

    The class-level search runs first; each accepted class assignment (one
    *class frame*) is expanded member-combination by member-combination only
    as the consumer pulls. A coverage-driven consumer that stops after a few
    embeddings of a fan-out region therefore never pays for the rest of the
    cross product — the collapse-then-expand shape of [24] with the
    expansion on demand.
    """
    candidates = candidates or CandidateIndex(graph, query, plan=plan)
    if candidates.any_empty():
        return
    compressed = compressed or CompressedGraph(graph)
    search = _ClassSearch(
        compressed, query, candidates, node_budget=node_budget, plan=plan
    )
    for assignment in search.assignments():
        groups: Dict[int, List[int]] = {}
        for u, cid in enumerate(assignment):
            groups.setdefault(cid, []).append(u)
        for mapping in _iter_expansions(groups, compressed, len(assignment)):
            compressed.lazy_expansions += 1
            if compressed.on_lazy_expansion is not None:
                compressed.on_lazy_expansion()
            yield mapping


def _iter_expansions(
    groups: Dict[int, List[int]],
    compressed: CompressedGraph,
    q: int,
) -> Iterator[Mapping]:
    """All concrete embeddings of one class assignment, lazily.

    Per class, an ordered selection of distinct members is drawn for the
    query nodes assigned to it; the cross product over classes enumerates
    exactly the plain engine's embedding set for this frame (order
    differs).
    """
    class_ids = list(groups)

    def recurse(index: int, mapping: Dict[int, int]) -> Iterator[Mapping]:
        if index == len(class_ids):
            yield tuple(mapping[u] for u in range(q))
            return
        cid = class_ids[index]
        nodes = groups[cid]
        for combo in permutations(compressed.classes[cid], len(nodes)):
            for u, v in zip(nodes, combo):
                mapping[u] = v
            yield from recurse(index + 1, mapping)

    return recurse(0, {})


def enumerate_embeddings_compressed(
    graph: LabeledGraph,
    query: QueryGraph,
    limit: Optional[int] = None,
    compressed: Optional[CompressedGraph] = None,
    candidates: Optional[CandidateIndex] = None,
    plan=None,
) -> List[Mapping]:
    """Concrete embeddings by expanding each class assignment.

    Expansion draws, per class, an ordered selection of distinct members for
    the query nodes assigned to it; the cross product over classes
    enumerates exactly the plain engine's embedding set (order differs).
    ``limit`` truncates to at most ``limit`` embeddings; ``limit <= 0``
    returns an empty list (pinned by the ``_expand`` unit tests — the
    truncation check runs *before* an embedding is recorded, so a zero
    limit can never over-report).
    """
    candidates = candidates or CandidateIndex(graph, query, plan=plan)
    if candidates.any_empty():
        return []
    compressed = compressed or CompressedGraph(graph)
    search = _ClassSearch(compressed, query, candidates, plan=plan)
    out: List[Mapping] = []
    if limit is not None and limit <= 0:
        return out
    for assignment in search.assignments():
        groups: Dict[int, List[int]] = {}
        for u, cid in enumerate(assignment):
            groups.setdefault(cid, []).append(u)
        if _expand(groups, compressed, assignment, out, limit):
            return out
    return out


def _expand(
    groups: Dict[int, List[int]],
    compressed: CompressedGraph,
    assignment: List[int],
    out: List[Mapping],
    limit: Optional[int],
) -> bool:
    """Cross-product expansion of one class assignment into ``out``.

    Returns ``True`` exactly when ``out`` holds ``limit`` embeddings and
    enumeration must stop — the "True when limited" contract the lazy
    expander and the Phase-1 stream sit on. The limit check runs *before*
    each append: ``len(out)`` can never exceed ``limit``, a pre-filled
    ``out`` at the limit adds nothing, and ``limit <= 0`` appends nothing
    (pinned by ``tests/isomorphism/test_compression_expand.py``).
    """
    class_ids = list(groups)

    def recurse(index: int, mapping: Dict[int, int]) -> bool:
        if limit is not None and len(out) >= limit:
            return True
        if index == len(class_ids):
            out.append(tuple(mapping[u] for u in range(len(assignment))))
            return limit is not None and len(out) >= limit
        cid = class_ids[index]
        nodes = groups[cid]
        for combo in permutations(compressed.classes[cid], len(nodes)):
            for u, v in zip(nodes, combo):
                mapping[u] = v
            if recurse(index + 1, mapping):
                return True
        return False

    return recurse(0, {})
