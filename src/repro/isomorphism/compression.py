"""Vertex-equivalence compression for subgraph querying (BoostIso-style).

The paper generates its exhaustive embedding streams with BoostIso [24],
which "rewrites vertices with the same neighborhood as a super node" —
structurally equivalent data vertices are interchangeable in any embedding,
so the search can run over equivalence *classes* and multiply out the
combinations. Two standard equivalence notions are used:

* **false twins** — same label and identical open neighborhoods
  ``N(v) == N(w)`` (no edge between the twins);
* **true twins** — same label and identical closed neighborhoods
  ``N(v) ∪ {v} == N(w) ∪ {w}`` (the twins form a clique).

:class:`CompressedGraph` partitions the data graph into twin classes;
:func:`count_embeddings_compressed` runs Algorithm-1-style backtracking
over classes and multiplies falling factorials ``m * (m-1) * ...`` for the
members drawn from each class; :func:`enumerate_embeddings_compressed`
expands class assignments back into concrete embeddings.

Exactness (same counts and same embedding sets as the plain engine) is
asserted in the test suite; the win is on graphs with interchangeable
vertices — precisely the fan-out regions that dominate exhaustive
enumeration cost (e.g. the paper's Example 6/7 scenarios, or affiliation
graphs where many leaf actors attach to the same movie).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.joinable import UNMATCHED
from repro.isomorphism.match import Mapping
from repro.isomorphism.qsearch import connected_search_order
from repro.queries.ordering import selectivity_order


class CompressedGraph:
    """A twin-class partition of a labeled graph.

    Attributes
    ----------
    classes:
        List of member tuples; ``classes[c]`` are the vertices of class ``c``.
    class_of:
        ``class_of[v]`` is the class id of vertex ``v``.
    clique:
        ``clique[c]`` is True for true-twin (clique) classes — query edges
        *within* the class are satisfiable.
    """

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        self.classes: List[Tuple[int, ...]] = []
        self.class_of: List[int] = [-1] * graph.num_vertices
        self.clique: List[bool] = []
        self._build()
        self._adjacency: List[Set[int]] = self._build_adjacency()

    def _build(self) -> None:
        graph = self.graph
        # Pass 1: false twins (identical open neighborhoods).
        open_groups: Dict[Tuple, List[int]] = {}
        for v in graph.vertices():
            key = (graph.label(v), frozenset(graph.neighbors(v)))
            open_groups.setdefault(key, []).append(v)

        assigned = [False] * graph.num_vertices
        for (label, _nbrs), members in open_groups.items():
            if len(members) > 1:
                self._add_class(members, clique=False, assigned=assigned)

        # Pass 2: true twins (identical closed neighborhoods) among the rest.
        closed_groups: Dict[Tuple, List[int]] = {}
        for v in graph.vertices():
            if assigned[v]:
                continue
            key = (graph.label(v), frozenset(graph.neighbors(v)) | {v})
            closed_groups.setdefault(key, []).append(v)
        for (_label, _nbrs), members in closed_groups.items():
            if len(members) > 1:
                self._add_class(members, clique=True, assigned=assigned)

        # Singletons for everything left.
        for v in graph.vertices():
            if not assigned[v]:
                self._add_class([v], clique=False, assigned=assigned)

    def _add_class(self, members: Sequence[int], clique: bool, assigned: List[bool]) -> None:
        cid = len(self.classes)
        self.classes.append(tuple(sorted(members)))
        self.clique.append(clique)
        for v in members:
            self.class_of[v] = cid
            assigned[v] = True

    def _build_adjacency(self) -> List[Set[int]]:
        adjacency: List[Set[int]] = [set() for _ in self.classes]
        for u, v in self.graph.edges():
            cu, cv = self.class_of[u], self.class_of[v]
            if cu != cv:
                adjacency[cu].add(cv)
                adjacency[cv].add(cu)
        return adjacency

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """Number of twin classes (== vertices of the compressed graph)."""
        return len(self.classes)

    def size(self, cid: int) -> int:
        """Multiplicity of class ``cid``."""
        return len(self.classes[cid])

    def label(self, cid: int) -> object:
        """The shared label of class ``cid``."""
        return self.graph.label(self.classes[cid][0])

    def neighbors(self, cid: int) -> Set[int]:
        """Classes adjacent to ``cid`` (excluding itself)."""
        return self._adjacency[cid]

    def compression_ratio(self) -> float:
        """``num_classes / |V|`` — lower is more compressible."""
        n = self.graph.num_vertices
        return self.num_classes / n if n else 1.0


class _ClassSearch:
    """Backtracking over classes with per-class usage counting."""

    def __init__(
        self,
        compressed: CompressedGraph,
        query: QueryGraph,
        candidates: CandidateIndex,
        node_budget: Optional[int] = None,
    ) -> None:
        self.compressed = compressed
        self.query = query
        self.node_budget = node_budget
        self.nodes_expanded = 0
        self.budget_exhausted = False
        qlist = selectivity_order(query, candidates)
        self.order = connected_search_order(query, qlist)
        position = {u: i for i, u in enumerate(self.order)}
        self._backward = [
            [w for w in query.neighbors(u) if position[w] < position[u]]
            for u in self.order
        ]
        # Class candidates per query node: classes whose representative is a
        # filter-passing candidate (twins share degree and signature).
        self.class_candidates: List[Set[int]] = []
        for u in range(query.size):
            cands = {compressed.class_of[v] for v in candidates.candidates(u)}
            self.class_candidates.append(cands)

    def assignments(self) -> Iterator[List[int]]:
        """Yield query-node -> class-id assignments satisfying all edges."""
        q = self.query.size
        assignment = [UNMATCHED] * q
        usage: Dict[int, int] = {}
        yield from self._recurse(0, assignment, usage)

    def _ok(self, u: int, cid: int, assignment: List[int]) -> bool:
        compressed = self.compressed
        for u2 in self.query.neighbors(u):
            c2 = assignment[u2]
            if c2 == UNMATCHED:
                continue
            if c2 == cid:
                if not compressed.clique[cid]:
                    return False
            elif c2 not in compressed.neighbors(cid):
                return False
        return True

    def _recurse(
        self, depth: int, assignment: List[int], usage: Dict[int, int]
    ) -> Iterator[List[int]]:
        if depth == self.query.size:
            yield list(assignment)
            return
        u = self.order[depth]
        backward = self._backward[depth]
        if backward:
            pool: Set[int] = set()
            first = assignment[backward[0]]
            pool |= self.compressed.neighbors(first) | {first}
            pool &= self.class_candidates[u]
        else:
            pool = self.class_candidates[u]
        for cid in sorted(pool):
            self.nodes_expanded += 1
            if self.node_budget is not None and self.nodes_expanded > self.node_budget:
                self.budget_exhausted = True
                return
            if usage.get(cid, 0) >= self.compressed.size(cid):
                continue
            if not self._ok(u, cid, assignment):
                continue
            assignment[u] = cid
            usage[cid] = usage.get(cid, 0) + 1
            yield from self._recurse(depth + 1, assignment, usage)
            usage[cid] -= 1
            assignment[u] = UNMATCHED


def count_embeddings_compressed(
    graph: LabeledGraph,
    query: QueryGraph,
    compressed: Optional[CompressedGraph] = None,
    node_budget: Optional[int] = None,
) -> Tuple[int, bool]:
    """``(count, complete)`` via class search + falling factorials.

    ``complete`` mirrors :func:`repro.isomorphism.qsearch.count_embeddings`:
    ``False`` when ``node_budget`` tripped and the count is a lower bound.
    """
    candidates = CandidateIndex(graph, query)
    if candidates.any_empty():
        return 0, True
    compressed = compressed or CompressedGraph(graph)
    search = _ClassSearch(compressed, query, candidates, node_budget=node_budget)
    total = 0
    for assignment in search.assignments():
        counts: Dict[int, int] = {}
        for cid in assignment:
            counts[cid] = counts.get(cid, 0) + 1
        ways = 1
        for cid, used in counts.items():
            m = compressed.size(cid)
            for i in range(used):
                ways *= m - i
        total += ways
    return total, not search.budget_exhausted


def enumerate_embeddings_compressed(
    graph: LabeledGraph,
    query: QueryGraph,
    limit: Optional[int] = None,
    compressed: Optional[CompressedGraph] = None,
) -> List[Mapping]:
    """Concrete embeddings by expanding each class assignment.

    Expansion draws, per class, an ordered selection of distinct members for
    the query nodes assigned to it; the cross product over classes
    enumerates exactly the plain engine's embedding set (order differs).
    """
    candidates = CandidateIndex(graph, query)
    if candidates.any_empty():
        return []
    compressed = compressed or CompressedGraph(graph)
    search = _ClassSearch(compressed, query, candidates)
    out: List[Mapping] = []
    for assignment in search.assignments():
        groups: Dict[int, List[int]] = {}
        for u, cid in enumerate(assignment):
            groups.setdefault(cid, []).append(u)
        if _expand(groups, compressed, assignment, out, limit):
            return out
    return out


def _expand(
    groups: Dict[int, List[int]],
    compressed: CompressedGraph,
    assignment: List[int],
    out: List[Mapping],
    limit: Optional[int],
) -> bool:
    """Cross-product expansion of one class assignment; True when limited."""
    class_ids = list(groups)

    def recurse(index: int, mapping: Dict[int, int]) -> bool:
        if index == len(class_ids):
            out.append(tuple(mapping[u] for u in range(len(assignment))))
            return limit is not None and len(out) >= limit
        cid = class_ids[index]
        nodes = groups[cid]
        for combo in permutations(compressed.classes[cid], len(nodes)):
            for u, v in zip(nodes, combo):
                mapping[u] = v
            if recurse(index + 1, mapping):
                return True
        return False

    return recurse(0, {})
