"""Embedding representations and helpers.

Throughout the library an **embedding** is a plain ``tuple`` ``m`` with
``m[u]`` = the data vertex matched to query node ``u``. Tuples keep the hot
search loops allocation-light and hashable; richer views (vertex sets, the
induced subgraph) are derived on demand here.

The paper overloads "embedding" to also mean the matched *vertex set*, since
diversity only depends on which vertices are covered; :func:`vertex_set` and
:func:`distinct_by_vertex_set` implement that view.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.graph.labeled_graph import Edge, LabeledGraph
from repro.graph.query_graph import QueryGraph

Mapping = Tuple[int, ...]
"""An embedding: ``mapping[u]`` is the data vertex matched to query node ``u``."""


def vertex_set(mapping: Sequence[int]) -> FrozenSet[int]:
    """The set of data vertices used by an embedding."""
    return frozenset(mapping)


def matched_edges(query: QueryGraph, mapping: Sequence[int]) -> List[Edge]:
    """The data edges witnessing each query edge, normalized ``(min, max)``."""
    edges = []
    for u1, u2 in query.edges():
        a, b = mapping[u1], mapping[u2]
        edges.append((a, b) if a < b else (b, a))
    return sorted(edges)


def induced_match_subgraph(
    graph: LabeledGraph,
    query: QueryGraph,
    mapping: Sequence[int],
) -> LabeledGraph:
    """The matched subgraph ``G'`` (Section 2): matched vertices + edges.

    Note this is the *match* subgraph — only edges that witness query edges —
    not the induced subgraph on the matched vertices.
    """
    vs = sorted(set(mapping))
    remap = {v: i for i, v in enumerate(vs)}
    labels = [graph.label(v) for v in vs]
    edges = {(remap[a], remap[b]) for a, b in matched_edges(query, mapping)}
    return LabeledGraph(labels, sorted(edges))


def distinct_by_vertex_set(mappings: Iterable[Mapping]) -> Iterator[Mapping]:
    """Drop embeddings whose vertex set was already seen.

    Two embeddings over the same vertex set contribute identically to
    coverage, so DSQ solutions only need one of them (Section 2).
    """
    seen: set[FrozenSet[int]] = set()
    for mapping in mappings:
        key = frozenset(mapping)
        if key not in seen:
            seen.add(key)
            yield mapping
