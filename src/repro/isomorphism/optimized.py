"""Conflict-directed subgraph querying — the §5.3/§5.4 strategies on plain SQ.

The paper notes that the node-skipping (conflict table) and bad-vertex
strategies "are also applicable for subgraph querying, SQ". This module
provides that application: :class:`OptimizedQSearchEngine` enumerates the
same embedding set as the plain engine but prunes the backtracking with

* **conflict-directed backjumping** — a completely failed subtree carries a
  conflict set upward; ancestors outside the set are skipped, since changing
  their assignment cannot repair the failure (exactly the Section 5.3
  argument, which only reasons about the failing node's candidate validity);
* **bad-vertex marking** — a vertex whose subtree failed while the preceding
  node is not in the conflict set is marked bad for its depth; marks are
  cleared when the prefix two levels up changes (Section 5.4 / Lemma 3).

Skipping is only applied to subtrees that yielded *no* embedding, so full
enumeration remains exact — verified against brute force in the test suite.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Set

from repro.exceptions import BudgetExceeded, DeadlineExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.indexes.plans import expand_pool
from repro.isomorphism.joinable import UNMATCHED
from repro.isomorphism.match import Mapping
from repro.isomorphism.qsearch import connected_search_order
from repro.kernels import KERNEL_KINDS
from repro.queries.ordering import selectivity_order


class OptimizedQSearchEngine:
    """Exhaustive SQ with conflict-directed backjumping and bad vertices.

    API mirrors :class:`~repro.isomorphism.qsearch.QSearchEngine`:
    construct, then iterate :meth:`embeddings`. Extra statistics record how
    much the strategies pruned.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        query: QueryGraph,
        candidates: Optional[CandidateIndex] = None,
        node_budget: Optional[int] = None,
        time_budget_ms: Optional[float] = None,
        conflict_backjumping: bool = True,
        bad_vertex_skipping: bool = True,
        instrumentation=None,
        query_id: Optional[int] = None,
        plan=None,
    ) -> None:
        self.graph = graph
        self.query = query
        self.candidates = candidates or CandidateIndex(graph, query, plan=plan)
        self.node_budget = node_budget
        self.time_budget_ms = time_budget_ms
        # Anchored at construction: the deadline caps the whole enumeration,
        # checked on the same shared stride as LevelSearchEngine.
        self._deadline: Optional[float] = (
            None if time_budget_ms is None else time.monotonic() + time_budget_ms / 1000.0
        )
        # Late import: repro.core.search pulls from repro.isomorphism, so a
        # module-level import here would cycle through the package __init__.
        # The stride is snapshotted per engine (tests override it directly).
        from repro.core.search import DEADLINE_CHECK_STRIDE

        self._deadline_stride = DEADLINE_CHECK_STRIDE
        self.instrumentation = instrumentation
        self.query_id = query_id
        self.conflict_backjumping = conflict_backjumping
        self.bad_vertex_skipping = bad_vertex_skipping
        self.nodes_expanded = 0
        self.conflict_skips = 0
        self.bad_vertex_skips = 0
        self.budget_exhausted = False
        self.deadline_exhausted = False
        self._plan = plan
        self.kernel_dispatch: Dict[str, int] = dict.fromkeys(KERNEL_KINDS, 0)
        if plan is not None:
            self.order = list(plan.order)
            self._backward: List[List[int]] = [list(b) for b in plan.backward]
        else:
            qlist = selectivity_order(query, self.candidates)
            self.order = connected_search_order(query, qlist)
            position = {u: i for i, u in enumerate(self.order)}
            self._backward = [
                [w for w in query.neighbors(u) if position[w] < position[u]]
                for u in self.order
            ]
        q = query.size
        self._assignment: List[int] = [UNMATCHED] * q
        self._used: Set[int] = set()
        # Bad marks carry the conflict set that justified them: a skipped
        # vertex is a failure whose reasons must still propagate upward,
        # otherwise ancestors compute understated conflict sets and prune
        # subtrees that a changed ancestor assignment would have revived.
        self._bad: List[Dict[int, Set[int]]] = [{} for _ in range(q + 1)]
        self._carry: Optional[Set[int]] = None

    def embeddings(self) -> Iterator[Mapping]:
        """Yield every embedding (same set as the plain engine)."""
        if self.candidates.any_empty():
            return
        instr = self.instrumentation
        emitted = 0
        start_ms = time.monotonic() * 1000.0
        try:
            for mapping in self._recurse(0):
                emitted += 1
                if instr is not None:
                    instr.embedding_emitted("sq", -1, mapping, self.query_id)
                yield mapping
        except BudgetExceeded:
            return
        finally:
            if instr is not None:
                self._flush_metrics(instr, emitted, start_ms)

    def _flush_metrics(self, instr, emitted: int, start_ms: float) -> None:
        """Record this enumeration's counters once, at generator close."""
        metrics = instr.metrics
        metrics.counter("sq.nodes_expanded").inc(self.nodes_expanded)
        metrics.counter("sq.embeddings_emitted").inc(emitted)
        if self.conflict_skips:
            metrics.counter("prune.conflict_skip").inc(self.conflict_skips)
        if self.bad_vertex_skips:
            metrics.counter("prune.bad_vertex_skip").inc(self.bad_vertex_skips)
        for kind, count in self.kernel_dispatch.items():
            if count:
                metrics.counter(f"kernel.dispatch.{kind}").inc(count)
        if instr.tracer is not None:
            instr.tracer.emit_span(
                "sq.enumerate",
                start_ms,
                query_id=self.query_id,
                expansions=self.nodes_expanded,
                emitted=emitted,
                budget_exhausted=self.budget_exhausted,
                deadline_exhausted=self.deadline_exhausted,
            )

    # ------------------------------------------------------------------
    def _charge(self) -> None:
        self.nodes_expanded += 1
        if self.node_budget is not None and self.nodes_expanded > self.node_budget:
            self.budget_exhausted = True
            raise BudgetExceeded(f"node budget {self.node_budget} exhausted")
        if self._deadline is not None:
            stride = self._deadline_stride
            if self.nodes_expanded % stride == 0:
                now = time.monotonic()
                if self.instrumentation is not None:
                    self.instrumentation.deadline_tick(
                        self.nodes_expanded,
                        (self._deadline - now) * 1000.0,
                        stride,
                        self.query_id,
                    )
                if now >= self._deadline:
                    self.deadline_exhausted = True
                    raise DeadlineExceeded(
                        f"time budget {self.time_budget_ms} ms exhausted"
                    )

    def _pool(self, depth: int) -> List[int]:
        if self._plan is not None:
            kind, pool = expand_pool(
                self._plan, depth, self._assignment, self.candidates.cache
            )
            self.kernel_dispatch[kind] += 1
            return pool
        u = self.order[depth]
        backward = self._backward[depth]
        if not backward:
            return list(self.candidates.candidates(u))
        neighbor_rows = sorted(
            (self.graph.neighbors(self._assignment[w]) for w in backward), key=len
        )
        pool: Set[int] = set(neighbor_rows[0])
        for row in neighbor_rows[1:]:
            pool.intersection_update(row)
            if not pool:
                return []
        is_candidate = self.candidates.is_candidate
        return [v for v in sorted(pool) if is_candidate(u, v)]

    def _joinable(self, u: int, v: int) -> bool:
        if v in self._used:
            return False
        assignment = self._assignment
        has_edge = self.graph.has_edge
        for u2 in self.query.neighbors(u):
            v2 = assignment[u2]
            if v2 != UNMATCHED and not has_edge(v, v2):
                return False
        return True

    def _conflict_set(self, u: int) -> Set[int]:
        conflicts: Set[int] = set(self.query.neighbors(u))
        full_check = self.candidates.full_check
        for u2, v2 in enumerate(self._assignment):
            if u2 != u and v2 != UNMATCHED and u2 not in conflicts:
                if full_check(u, v2):
                    conflicts.add(u2)
        return conflicts

    def _recurse(self, depth: int) -> Iterator[Mapping]:
        if depth == self.query.size:
            yield tuple(self._assignment)
            return
        u = self.order[depth]
        self._bad[depth + 1].clear()
        assignment, used = self._assignment, self._used
        bad = self._bad[depth]
        yielded_any = False
        inherited: Set[int] = set()

        for v in self._pool(depth):
            self._charge()
            mark = bad.get(v)
            if mark is not None:
                self.bad_vertex_skips += 1
                inherited |= mark
                continue
            if not self._joinable(u, v):
                continue
            assignment[u] = v
            used.add(v)
            produced = False
            for mapping in self._recurse(depth + 1):
                produced = True
                yield mapping
            conflict = None if produced else self._carry
            assignment[u] = UNMATCHED
            used.discard(v)
            if produced:
                yielded_any = True
                continue
            # The subtree under v failed entirely: apply the strategies.
            if conflict is None:
                conflict = set()
            inherited |= conflict
            if self.conflict_backjumping and conflict and u not in conflict:
                self.conflict_skips += 1
                self._carry = conflict
                return
            if self.bad_vertex_skipping:
                prev_ok = depth > 0 and self.order[depth - 1] not in conflict
                if prev_ok:
                    bad[v] = set(conflict)

        if yielded_any:
            self._carry = None
        else:
            failure = self._conflict_set(u) | inherited
            failure.discard(u)
            self._carry = failure


def enumerate_embeddings_optimized(
    graph: LabeledGraph,
    query: QueryGraph,
    limit: Optional[int] = None,
    node_budget: Optional[int] = None,
    time_budget_ms: Optional[float] = None,
) -> List[Mapping]:
    """Drop-in optimized counterpart of ``enumerate_embeddings``."""
    engine = OptimizedQSearchEngine(
        graph, query, node_budget=node_budget, time_budget_ms=time_budget_ms
    )
    out: List[Mapping] = []
    for mapping in engine.embeddings():
        out.append(mapping)
        if limit is not None and len(out) >= limit:
            break
    return out
