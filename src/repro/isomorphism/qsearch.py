"""Generic subgraph-querying engine (Algorithm 1, "QSearch").

This is the Ullmann-style recursive backtracking framework the paper builds
on: enumerate partial solutions one query node at a time, verifying labels,
filters, and edge joins incrementally. It powers

* the exhaustive enumeration of Table 2 (total embedding counts),
* the first-k baseline of Table 3,
* the embedding streams fed to the k-coverage algorithms of Table 4.

Design choices that matter for fidelity and speed:

* **Connectivity-aware order** — nodes are visited in an order where every
  node after the first has an already-matched query neighbor, so candidates
  come from a neighbor intersection instead of the whole label bucket. This
  matches how TurboISO-family engines localize search.
* **Candidate refinement** — label / degree / neighborhood-signature filters
  (Section 4.2) prune before the join test.
* **Budgets** — ``node_budget`` bounds backtracking-node expansions so
  pathological (graph, query) pairs degrade into truncated enumeration
  rather than hangs; Table 2's "> 5 hours" rows are reproduced as budget
  exhaustion.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set

from repro.exceptions import BudgetExceeded, InvalidQueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.indexes.plans import expand_pool
from repro.isomorphism.joinable import UNMATCHED
from repro.isomorphism.match import Mapping, distinct_by_vertex_set
from repro.kernels import KERNEL_KINDS
from repro.queries.ordering import selectivity_order


def connected_search_order(query: QueryGraph, qlist: Sequence[int]) -> List[int]:
    """Reorder ``qlist`` so each node (after the first) has an earlier neighbor.

    Greedy: start from the most selective node; repeatedly pick the
    not-yet-placed node with an already-placed neighbor that ranks earliest
    in ``qlist``. Connected queries always admit such an order.
    """
    ranks = {u: r for r, u in enumerate(qlist)}
    order = [qlist[0]]
    placed = {qlist[0]}
    frontier: Set[int] = set(query.neighbors(qlist[0]))
    while len(order) < query.size:
        reachable = frontier - placed
        if not reachable:
            # The query is disconnected: every remaining node is unreachable
            # from the search root, so no connectivity-aware order exists.
            component = sorted(set(range(query.size)) - placed)
            raise InvalidQueryError(
                "query graph is disconnected: nodes "
                f"{component} are unreachable from node {qlist[0]}",
                component=component,
            )
        best = min(reachable, key=lambda u: ranks[u])
        order.append(best)
        placed.add(best)
        frontier.update(query.neighbors(best))
    return order


class QSearchEngine:
    """Reusable enumeration engine for one (graph, query) pair.

    Parameters
    ----------
    graph, query:
        Data and query graphs.
    candidates:
        Optional pre-built :class:`CandidateIndex`; built on demand otherwise.
    node_budget:
        Maximum number of candidate expansions before enumeration stops. The
        engine raises :class:`BudgetExceeded` internally and converts it to a
        clean stop; :attr:`budget_exhausted` records whether it tripped.
    plan:
        Optional compiled :class:`~repro.indexes.plans.QueryPlan` (default
        filter toggles). Supplies the precomputed search order and drives
        candidate expansion through the :mod:`repro.kernels` fast paths;
        the enumerated embedding stream is bit-identical either way.
        Per-kind dispatch counts accumulate in :attr:`kernel_dispatch`.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        query: QueryGraph,
        candidates: Optional[CandidateIndex] = None,
        node_budget: Optional[int] = None,
        plan=None,
    ) -> None:
        self.graph = graph
        self.query = query
        self.candidates = candidates or CandidateIndex(graph, query, plan=plan)
        self.node_budget = node_budget
        self.nodes_expanded = 0
        self.budget_exhausted = False
        self._plan = plan
        self.kernel_dispatch: dict = dict.fromkeys(KERNEL_KINDS, 0)
        if plan is not None:
            self.order = list(plan.order)
            self._backward: List[List[int]] = [list(b) for b in plan.backward]
            return
        qlist = selectivity_order(query, self.candidates)
        self.order = connected_search_order(query, qlist)
        # Pre-split query adjacency into backward (already matched when the
        # node is reached) and forward neighbors, per search position.
        position = {u: i for i, u in enumerate(self.order)}
        self._backward = [
            [w for w in query.neighbors(u) if position[w] < position[u]]
            for u in self.order
        ]

    def _charge(self) -> None:
        self.nodes_expanded += 1
        if self.node_budget is not None and self.nodes_expanded > self.node_budget:
            self.budget_exhausted = True
            raise BudgetExceeded(f"node budget {self.node_budget} exhausted")

    def embeddings(self) -> Iterator[Mapping]:
        """Yield every embedding of the query; stops cleanly on budget."""
        if self.candidates.any_empty():
            return
        assignment = [UNMATCHED] * self.query.size
        used: Set[int] = set()
        try:
            yield from self._recurse(0, assignment, used)
        except BudgetExceeded:
            return

    def _candidate_pool(self, depth: int, assignment: List[int]) -> Iterator[int]:
        """Candidates for the node at ``depth`` under the current assignment."""
        if self._plan is not None:
            kind, pool = expand_pool(
                self._plan, depth, assignment, self.candidates.cache
            )
            self.kernel_dispatch[kind] += 1
            yield from pool
            return
        u = self.order[depth]
        backward = self._backward[depth]
        if not backward:
            yield from self.candidates.candidates(u)
            return
        # Intersect neighborhoods of matched backward neighbors, smallest
        # adjacency first to keep the working set minimal. Rows are sorted
        # tuples, so the surviving pool only needs one final sort.
        neighbor_rows = sorted(
            (self.graph.neighbors(assignment[w]) for w in backward), key=len
        )
        pool: Set[int] = set(neighbor_rows[0])
        for row in neighbor_rows[1:]:
            pool.intersection_update(row)
            if not pool:
                return
        is_candidate = self.candidates.is_candidate
        yield from (v for v in sorted(pool) if is_candidate(u, v))

    def _recurse(
        self,
        depth: int,
        assignment: List[int],
        used: Set[int],
    ) -> Iterator[Mapping]:
        if depth == self.query.size:
            yield tuple(assignment)
            return
        u = self.order[depth]
        for v in self._candidate_pool(depth, assignment):
            self._charge()
            if v in used:
                continue
            assignment[u] = v
            used.add(v)
            yield from self._recurse(depth + 1, assignment, used)
            used.discard(v)
            assignment[u] = UNMATCHED


def enumerate_embeddings(
    graph: LabeledGraph,
    query: QueryGraph,
    limit: Optional[int] = None,
    distinct_vertex_sets: bool = False,
    node_budget: Optional[int] = None,
    candidates: Optional[CandidateIndex] = None,
) -> List[Mapping]:
    """All (or the first ``limit``) embeddings of ``query`` in ``graph``.

    Set ``distinct_vertex_sets=True`` to collapse embeddings over the same
    vertex set (the view DSQ works with). ``node_budget`` truncates runaway
    enumerations; see :class:`QSearchEngine`.
    """
    engine = QSearchEngine(graph, query, candidates=candidates, node_budget=node_budget)
    stream: Iterator[Mapping] = engine.embeddings()
    if distinct_vertex_sets:
        stream = distinct_by_vertex_set(stream)
    if limit is None:
        return list(stream)
    out: List[Mapping] = []
    for mapping in stream:
        out.append(mapping)
        if len(out) >= limit:
            break
    return out


def count_embeddings(
    graph: LabeledGraph,
    query: QueryGraph,
    node_budget: Optional[int] = None,
) -> tuple[int, bool]:
    """``(count, complete)`` — total embeddings and whether enumeration finished.

    ``complete`` is ``False`` when the node budget tripped, mirroring the
    paper's Table 2 rows that could not finish within the time limit.
    """
    engine = QSearchEngine(graph, query, node_budget=node_budget)
    count = sum(1 for _ in engine.embeddings())
    return count, not engine.budget_exhausted


def first_k_embeddings(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    node_budget: Optional[int] = None,
) -> List[Mapping]:
    """The first ``k`` embeddings in engine order (the Table 3 baseline).

    Existing SQ systems stop after ~1000 matches; their results are "highly
    overlapping and not very representative" — this function exists to
    measure exactly that effect.
    """
    return enumerate_embeddings(graph, query, limit=k, node_budget=node_budget)


def has_embedding(graph: LabeledGraph, query: QueryGraph) -> bool:
    """Whether at least one embedding exists."""
    return bool(enumerate_embeddings(graph, query, limit=1))
