"""Subgraph-isomorphism substrate: Algorithm-1 engine and embedding helpers."""

from repro.isomorphism.joinable import UNMATCHED, is_joinable, joinable_ignoring_injectivity
from repro.isomorphism.match import (
    Mapping,
    distinct_by_vertex_set,
    induced_match_subgraph,
    matched_edges,
    vertex_set,
)
from repro.isomorphism.compression import (
    CompressedGraph,
    count_embeddings_compressed,
    enumerate_embeddings_compressed,
)
from repro.isomorphism.optimized import (
    OptimizedQSearchEngine,
    enumerate_embeddings_optimized,
)
from repro.isomorphism.qsearch import (
    QSearchEngine,
    connected_search_order,
    count_embeddings,
    enumerate_embeddings,
    first_k_embeddings,
    has_embedding,
)

__all__ = [
    "UNMATCHED",
    "is_joinable",
    "joinable_ignoring_injectivity",
    "Mapping",
    "vertex_set",
    "matched_edges",
    "induced_match_subgraph",
    "distinct_by_vertex_set",
    "QSearchEngine",
    "OptimizedQSearchEngine",
    "CompressedGraph",
    "count_embeddings_compressed",
    "enumerate_embeddings_compressed",
    "enumerate_embeddings_optimized",
    "connected_search_order",
    "enumerate_embeddings",
    "count_embeddings",
    "first_k_embeddings",
    "has_embedding",
]
