"""The ``IsJoinable`` predicate of Algorithm 1.

A candidate vertex ``v`` is joinable to query node ``u`` under a partial
embedding when

* ``v`` is not already used by the partial embedding (injectivity), and
* for every query neighbor ``u'`` of ``u`` already matched to ``v'``, the
  data edge ``(v, v')`` exists.

Partial embeddings in the search engines are arrays ``assignment`` with
``assignment[u] = -1`` for unmatched nodes; that representation makes the
join test a tight loop over the query adjacency.
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

UNMATCHED = -1
"""Sentinel for "query node not yet matched" in assignment arrays."""


def is_joinable(
    graph: LabeledGraph,
    query: QueryGraph,
    assignment: Sequence[int],
    used: Set[int],
    u: int,
    v: int,
) -> bool:
    """Whether matching ``u -> v`` is consistent with ``assignment``.

    ``used`` is the set of data vertices already appearing in ``assignment``;
    passing it explicitly keeps the injectivity test O(1) instead of scanning
    the assignment array.
    """
    if v in used:
        return False
    has_edge = graph.has_edge
    for u2 in query.neighbors(u):
        v2 = assignment[u2]
        if v2 != UNMATCHED and not has_edge(v, v2):
            return False
    return True


def joinable_ignoring_injectivity(
    graph: LabeledGraph,
    query: QueryGraph,
    assignment: Sequence[int],
    u: int,
    v: int,
) -> bool:
    """Edge-consistency part of the join test only.

    Used when building *dynamic conflict tables* (Section 5.3): a vertex held
    by another query node still counts as a "valid candidate" for conflict
    purposes even though injectivity currently forbids it.
    """
    has_edge = graph.has_edge
    for u2 in query.neighbors(u):
        v2 = assignment[u2]
        if v2 != UNMATCHED and not has_edge(v, v2):
            return False
    return True
