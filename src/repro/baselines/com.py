"""COM — the interleaving region-search competitor (Section 7.3).

COM adapts a subgraph-querying solution to diversification by *interleaving*:

1. sort the query into ``qList`` and take the first node as root;
2. open one **search region** per candidate of the root node, each an
   independent backtracking iterator over embeddings rooted there;
3. repeatedly pull one embedding from a randomly chosen live region (saving
   and restoring iterator state between jumps), until ``k`` embeddings are
   found or every region is exhausted.

Python generators give the save/restore-state semantics directly: each
region is a generator whose frame *is* the saved iterator list.

COM gets the paper's courtesy upgrades — localized (father-ordered) search
within a region — but has no mechanism to avoid overlap between regions,
which is exactly the deficiency Figure 6 quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set

from repro.coverage.core import coverage as coverage_of
from repro.exceptions import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.joinable import UNMATCHED
from repro.isomorphism.match import Mapping
from repro.queries.ordering import selectivity_order
from repro.queries.qflist import QFList, resort


@dataclass
class COMResult:
    """Outcome of a COM run."""

    embeddings: List[Mapping]
    coverage: int
    k: int
    q: int
    regions_opened: int = 0
    regions_exhausted: int = 0
    budget_exhausted: bool = False

    def approx_ratio_lower_bound(self) -> float:
        """``|C(A)| / (kq)``."""
        return self.coverage / (self.k * self.q) if self.k and self.q else 1.0


class _Budget:
    """Shared expansion counter across all regions of one COM run."""

    __slots__ = ("limit", "spent")

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self.spent = 0

    def charge(self) -> None:
        self.spent += 1
        if self.limit is not None and self.spent > self.limit:
            raise BudgetExceeded(f"COM node budget {self.limit} exhausted")


def com_search(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    seed: Optional[int] = 0,
    node_budget: Optional[int] = 5_000_000,
) -> COMResult:
    """Run COM and return up to ``k`` embeddings with their coverage."""
    candidates = CandidateIndex(graph, query)
    result = COMResult(embeddings=[], coverage=0, k=k, q=query.size)
    if candidates.any_empty():
        return result

    qlist = selectivity_order(query, candidates)
    qf = resort(query, qlist)
    root = qf.entries[0].node
    budget = _Budget(node_budget)

    regions: List[Iterator[Mapping]] = [
        _region(graph, query, candidates, qf, root, v, budget)
        for v in candidates.candidates(root)
    ]
    result.regions_opened = len(regions)

    rng = random.Random(seed)
    seen_vertex_sets: Set[frozenset] = set()
    live = list(range(len(regions)))
    try:
        while live and len(result.embeddings) < k:
            pick = rng.randrange(len(live))
            region_index = live[pick]
            try:
                mapping = next(regions[region_index])
            except StopIteration:
                live.pop(pick)
                result.regions_exhausted += 1
                continue
            key = frozenset(mapping)
            if key not in seen_vertex_sets:
                seen_vertex_sets.add(key)
                result.embeddings.append(mapping)
            # Jump away from this region regardless (the interleaving step):
            # the random pick on the next loop iteration realizes the jump.
    except BudgetExceeded:
        result.budget_exhausted = True

    result.coverage = coverage_of(result.embeddings)
    return result


def _region(
    graph: LabeledGraph,
    query: QueryGraph,
    candidates: CandidateIndex,
    qf: QFList,
    root: int,
    root_vertex: int,
    budget: _Budget,
) -> Iterator[Mapping]:
    """All embeddings whose root node matches ``root_vertex`` (lazy)."""
    assignment = [UNMATCHED] * query.size
    used: Set[int] = set()
    assignment[root] = root_vertex
    used.add(root_vertex)

    has_edge = graph.has_edge

    def joinable(u: int, v: int) -> bool:
        if v in used:
            return False
        for u2 in query.neighbors(u):
            v2 = assignment[u2]
            if v2 != UNMATCHED and not has_edge(v, v2):
                return False
        return True

    def recurse(depth: int) -> Iterator[Mapping]:
        if depth == query.size:
            yield tuple(assignment)
            return
        entry = qf.entries[depth]
        u, father = entry.node, entry.father
        if father != UNMATCHED and father >= 0 and assignment[father] != UNMATCHED:
            # Neighbor rows are sorted tuples, so the pool stays sorted.
            pool = [
                w
                for w in graph.neighbors(assignment[father])
                if candidates.is_candidate(u, w)
            ]
        else:
            pool = list(candidates.candidates(u))
        for v in pool:
            budget.charge()
            if not joinable(u, v):
                continue
            assignment[u] = v
            used.add(v)
            yield from recurse(depth + 1)
            used.discard(v)
            assignment[u] = UNMATCHED

    yield from recurse(1)
