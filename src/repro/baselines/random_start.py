"""The naive random-start adaptation of Algorithm 1 (Section 2.2).

"A simple adaptation of this framework for DSQ is to consider all the
candidate vertices for the first query node ... and to try to retrieve
embeddings in a random manner from these starting points." One embedding is
taken per (shuffled) root candidate, hoping dispersed roots imply dispersed
embeddings. The paper observes — and our benchmarks confirm — that the
remaining search paths converge onto common vertices, so coverage stays low.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.coverage.core import coverage as coverage_of
from repro.exceptions import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.joinable import UNMATCHED
from repro.isomorphism.match import Mapping
from repro.queries.ordering import selectivity_order
from repro.queries.qflist import NO_FATHER, resort


@dataclass
class RandomStartResult:
    """Outcome of the random-start baseline."""

    embeddings: List[Mapping]
    coverage: int
    k: int
    q: int

    def approx_ratio_lower_bound(self) -> float:
        """``|C(A)| / (kq)``."""
        return self.coverage / (self.k * self.q)


def random_start_search(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    seed: Optional[int] = 0,
    node_budget: Optional[int] = 2_000_000,
) -> RandomStartResult:
    """Collect up to ``k`` embeddings, one per shuffled root candidate."""
    candidates = CandidateIndex(graph, query)
    out = RandomStartResult(embeddings=[], coverage=0, k=k, q=query.size)
    if candidates.any_empty():
        return out
    qlist = selectivity_order(query, candidates)
    qf = resort(query, qlist)
    root = qf.entries[0].node

    rng = random.Random(seed)
    roots = list(candidates.candidates(root))
    rng.shuffle(roots)

    spent = 0
    seen: Set[frozenset] = set()
    for root_vertex in roots:
        if len(out.embeddings) >= k:
            break
        assignment = [UNMATCHED] * query.size
        used: Set[int] = {root_vertex}
        assignment[root] = root_vertex
        try:
            found = _one_embedding(
                graph, query, candidates, qf, assignment, used, 1, node_budget, [spent]
            )
        except BudgetExceeded:
            break
        if found is not None:
            key = frozenset(found)
            if key not in seen:
                seen.add(key)
                out.embeddings.append(found)
    out.coverage = coverage_of(out.embeddings)
    return out


def _one_embedding(
    graph: LabeledGraph,
    query: QueryGraph,
    candidates: CandidateIndex,
    qf,
    assignment: List[int],
    used: Set[int],
    depth: int,
    node_budget: Optional[int],
    spent_box: List[int],
) -> Optional[Mapping]:
    """First embedding completing the current prefix (depth-first)."""
    if depth == query.size:
        return tuple(assignment)
    entry = qf.entries[depth]
    u, father = entry.node, entry.father
    if father != NO_FATHER and assignment[father] != UNMATCHED:
        # Neighbor rows are sorted tuples, so the pool stays sorted.
        pool = [
            w for w in graph.neighbors(assignment[father]) if candidates.is_candidate(u, w)
        ]
    else:
        pool = list(candidates.candidates(u))
    has_edge = graph.has_edge
    for v in pool:
        spent_box[0] += 1
        if node_budget is not None and spent_box[0] > node_budget:
            raise BudgetExceeded(f"random-start budget {node_budget} exhausted")
        if v in used:
            continue
        if any(
            assignment[u2] != UNMATCHED and not has_edge(v, assignment[u2])
            for u2 in query.neighbors(u)
        ):
            continue
        assignment[u] = v
        used.add(v)
        found = _one_embedding(
            graph, query, candidates, qf, assignment, used, depth + 1, node_budget, spent_box
        )
        if found is not None:
            return found
        used.discard(v)
        assignment[u] = UNMATCHED
    return None
