"""The "first k embeddings" baseline (Table 3).

Existing subgraph-querying systems stop after a fixed number of matches
(1000/1024 in the systems the paper cites). Taking those first ``k`` matches
as a "diversified" answer is the strawman of Table 3: the matches are found
by depth-first backtracking, hence trapped in one local region and highly
overlapping, so their coverage — and thus approximation ratio — is poor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.coverage.core import coverage as coverage_of
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.match import Mapping
from repro.isomorphism.qsearch import enumerate_embeddings


@dataclass
class FirstKResult:
    """Outcome of the first-k baseline."""

    embeddings: List[Mapping]
    coverage: int
    k: int
    q: int

    def approx_ratio_lower_bound(self) -> float:
        """``|C(A)| / (kq)`` — the paper's Table 3 "approx ratio" metric."""
        return self.coverage / (self.k * self.q)


def first_k_baseline(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    node_budget: Optional[int] = None,
) -> FirstKResult:
    """Take the first ``k`` distinct-vertex-set embeddings in engine order."""
    embeddings = enumerate_embeddings(
        graph,
        query,
        limit=k,
        distinct_vertex_sets=True,
        node_budget=node_budget,
    )
    return FirstKResult(
        embeddings=embeddings,
        coverage=coverage_of(embeddings),
        k=k,
        q=query.size,
    )
