"""Baselines: first-k, COM interleaving, random-start, enumerate-then-cover."""

from repro.baselines.com import COMResult, com_search
from repro.baselines.enumerate_then_cover import (
    STRATEGIES,
    PipelineResult,
    generate_all,
    run_all_strategies,
    run_pipeline,
    select_top_k,
)
from repro.baselines.firstk import FirstKResult, first_k_baseline
from repro.baselines.random_start import RandomStartResult, random_start_search

__all__ = [
    "COMResult",
    "com_search",
    "FirstKResult",
    "first_k_baseline",
    "RandomStartResult",
    "random_start_search",
    "PipelineResult",
    "STRATEGIES",
    "generate_all",
    "select_top_k",
    "run_pipeline",
    "run_all_strategies",
]
