"""Enumerate-all → max-k-coverage pipelines (Table 4).

The paper's Table 4 compares DSQL against the two-stage approach: generate
*all* embeddings with a subgraph-querying engine, then run a maximum
k-coverage algorithm (GreedyDSQ or a streaming SWAP) over them. The
generation step dominates — that is the point of the table — so this module
reports the two stages' times separately, like the paper's ``X + t`` rows.

Every pipeline accepts an optional :class:`~repro.coverage.objectives.
Objective`; selection then optimizes that objective's weighted element
coverage instead of distinct vertices, and ``members`` holds the selected
embeddings' *element* sets (vertex sets under the default).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.coverage.core import EmbeddingSet, coverage as coverage_of
from repro.coverage.greedy import greedy_max_coverage
from repro.coverage.objectives import Objective
from repro.coverage.swap import Swap0, Swap1, Swap2, SwapA, SwapAlpha, swap_stream
from repro.exceptions import ConfigError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.match import Mapping
from repro.isomorphism.qsearch import enumerate_embeddings

STRATEGIES = ("SWAP0", "SWAP1", "SWAP2", "SWAP_A", "SWAPalpha", "Greedy")
"""Selection strategies accepted by :func:`select_top_k`."""


@dataclass
class PipelineResult:
    """Outcome of one enumerate-then-cover pipeline run."""

    strategy: str
    members: List[EmbeddingSet]
    coverage: int
    generation_seconds: float
    selection_seconds: float
    num_embeddings: int
    k: int
    q: int
    max_coverage: Optional[int] = None

    def approx_ratio_lower_bound(self) -> float:
        """``|C(A)| / MAX`` (``MAX = kq`` for the default vertex objective)."""
        max_cov = self.max_coverage if self.max_coverage is not None else self.k * self.q
        return self.coverage / max_cov if max_cov else 1.0


def generate_all(
    graph: LabeledGraph,
    query: QueryGraph,
    node_budget: Optional[int] = None,
) -> List[Mapping]:
    """Stage 1: every distinct-vertex-set embedding (the feeding stream)."""
    return enumerate_embeddings(
        graph, query, distinct_vertex_sets=True, node_budget=node_budget
    )


def select_top_k(
    embeddings: Sequence[Mapping],
    k: int,
    strategy: str,
    alpha: float = 1.0,
    objective: Optional[Objective] = None,
) -> List[EmbeddingSet]:
    """Stage 2: pick up to ``k`` embeddings with the named strategy.

    Returns the selected members as element sets of ``objective`` (vertex
    sets when ``objective`` is ``None``).
    """
    if strategy == "Greedy":
        chosen = greedy_max_coverage(embeddings, k, objective=objective)
        if objective is None:
            return chosen
        return [objective.elements(e) for e in chosen]
    conditions = {
        "SWAP0": Swap0(),
        "SWAP1": Swap1(),
        "SWAP2": Swap2(),
        "SWAP_A": SwapA(),
        "SWAPalpha": SwapAlpha(alpha=alpha),
    }
    try:
        condition = conditions[strategy]
    except KeyError:
        raise ConfigError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        ) from None
    return swap_stream(embeddings, k, condition, objective=objective).members


def run_pipeline(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    strategy: str,
    node_budget: Optional[int] = None,
    embeddings: Optional[Sequence[Mapping]] = None,
    generation_seconds: float = 0.0,
    objective: Optional[Objective] = None,
) -> PipelineResult:
    """Run both stages; pass pre-generated ``embeddings`` to share stage 1.

    Sharing stage 1 across strategies reproduces the Table 4 setting where
    one generation run (time ``t``) feeds every selection algorithm.
    """
    if embeddings is None:
        start = time.perf_counter()
        embeddings = generate_all(graph, query, node_budget=node_budget)
        generation_seconds = time.perf_counter() - start

    start = time.perf_counter()
    members = select_top_k(embeddings, k, strategy, objective=objective)
    selection_seconds = time.perf_counter() - start

    if objective is None:
        cov, max_cov = coverage_of(members), None
    else:
        # Members are already element sets, so the union measures directly.
        union: set = set()
        for elems in members:
            union.update(elems)
        cov, max_cov = objective.measure(union), objective.max_coverage(k)

    return PipelineResult(
        strategy=strategy,
        members=members,
        coverage=cov,
        generation_seconds=generation_seconds,
        selection_seconds=selection_seconds,
        num_embeddings=len(embeddings),
        k=k,
        q=query.size,
        max_coverage=max_cov,
    )


def run_all_strategies(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    node_budget: Optional[int] = None,
    objective: Optional[Objective] = None,
) -> Dict[str, PipelineResult]:
    """Table-4 helper: one shared generation, every selection strategy."""
    start = time.perf_counter()
    embeddings = generate_all(graph, query, node_budget=node_budget)
    generation_seconds = time.perf_counter() - start
    return {
        strategy: run_pipeline(
            graph,
            query,
            k,
            strategy,
            embeddings=embeddings,
            generation_seconds=generation_seconds,
            objective=objective,
        )
        for strategy in STRATEGIES
    }
