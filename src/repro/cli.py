"""Command-line interface: ``python -m repro`` / ``repro-dsql``.

Subcommands
-----------
``query``    — run DSQL (or a variant/baseline) on a dataset stand-in with a
               random query workload and print the summary table.
``datasets`` — list the registered dataset profiles and their statistics.
``schedule`` — print the SWAPα multi-scan α/γ schedule (Section 6.1.2).
``serve``    — run the long-running multi-graph query service (docs/service.md).
``mutate``   — apply live mutations to a graph on a running service
               (docs/mutation.md).
``estimate`` — print per-query cost estimates from the repro.cost model
               (docs/cost.md); ``--execute`` also runs the queries and
               reports estimated vs actual work units.

Examples::

    repro-dsql datasets
    repro-dsql query --dataset dblp --k 40 --edges 5 --queries 20
    repro-dsql query --dataset dblp --queries 20 --strategy process --jobs 4
    repro-dsql query --dataset youtube --solver COM --queries 10
    repro-dsql schedule --scans 8
    repro-dsql serve --dataset dblp --dataset yeast@1 --port 8707
    repro-dsql serve --dataset dblp --admission cost --work-unit-budget 50000
    repro-dsql estimate --dataset yeast --queries 10 --execute
    repro-dsql mutate --graph dblp --op add --edge 12 4711
    repro-dsql mutate --graph dblp --ops-file churn.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.core.config import VARIANTS, DSQLConfig, variant_config
from repro.coverage.bounds import alpha_gamma_schedule
from repro.coverage.objectives import OBJECTIVE_NAMES
from repro.datasets.registry import dataset_names, get_profile, make_dataset
from repro.graph.csr import BACKEND_NAMES, set_default_backend
from repro.experiments.report import SUMMARY_HEADERS, render_table, summary_row
from repro.experiments.runner import (
    com_solver,
    first_k_solver,
    random_start_solver,
    run_batch,
    run_executor_batch,
)
from repro.graph.statistics import compute_statistics
from repro.observability import (
    Instrumentation,
    JsonlSink,
    Tracer,
    configure_logging,
    counters_line,
    set_default_instrumentation,
)
from repro.queries.generator import query_set

_BASELINES = {"COM", "FIRSTK", "RANDOM"}

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dsql",
        description="Diversified top-k subgraph querying (DSQL, SIGMOD 2016)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the package version and exit",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="graph storage backend (default: csr, or $REPRO_GRAPH_BACKEND)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="run a query workload on a dataset stand-in")
    q.add_argument("--dataset", required=True, choices=dataset_names())
    q.add_argument("--scale", type=float, default=None, help="dataset scale (default: bench scale)")
    q.add_argument("--k", type=int, default=40)
    q.add_argument("--edges", type=int, default=5, help="query size |E_Q|")
    q.add_argument("--queries", type=int, default=20, help="batch size")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument(
        "--solver",
        default="DSQL",
        choices=sorted(VARIANTS) + sorted(_BASELINES),
        help="DSQL variant or baseline",
    )
    q.add_argument("--no-phase2", action="store_true", help="disable DSQL-P2")
    _add_objective_flag(q)
    _add_plan_flags(q)
    _add_executor_flags(q)
    _add_observability_flags(q)

    sub.add_parser("datasets", help="list dataset profiles")

    s = sub.add_parser("schedule", help="print the SWAP-alpha multi-scan schedule")
    s.add_argument("--scans", type=int, default=8)

    v = sub.add_parser("serve", help="run the multi-graph query service (docs/service.md)")
    v.add_argument(
        "--dataset",
        action="append",
        default=[],
        metavar="NAME[@SCALE]",
        help="load a registry dataset stand-in (repeatable); e.g. dblp or dblp@0.05",
    )
    v.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="load a graph file (.json or labeled edge list) under NAME (repeatable)",
    )
    v.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    v.add_argument("--port", type=int, default=8707, help="bind port (0 = ephemeral)")
    v.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pre-forked worker processes sharing the port via SO_REUSEPORT "
        "and the graphs via shared memory (1 = single-process server)",
    )
    v.add_argument("--k", type=int, default=10, help="default top-k when a request omits k")
    v.add_argument(
        "--time-budget-ms",
        type=float,
        default=None,
        help="default per-request wall-clock deadline (requests may override)",
    )
    v.add_argument(
        "--query-cache-size",
        type=int,
        default=None,
        metavar="N",
        help="per-session result-memo capacity (default 128; 0 disables caching)",
    )
    v.add_argument(
        "--max-in-flight", type=int, default=8, help="admission: concurrent request cap"
    )
    v.add_argument(
        "--max-queue", type=int, default=32, help="admission: waiting-request cap (0 = none)"
    )
    v.add_argument(
        "--retry-after-s",
        type=float,
        default=1.0,
        help="base Retry-After hint attached to 429 rejections "
        "(scaled by live occupancy)",
    )
    v.add_argument(
        "--admission",
        choices=["count", "cost", "off"],
        default="count",
        help="admission mode: 'count' gates concurrent requests, 'cost' gates "
        "estimated work units (docs/cost.md), 'off' disables shedding",
    )
    v.add_argument(
        "--work-unit-budget",
        type=float,
        default=None,
        metavar="N",
        help="cost admission: estimated work units allowed in flight "
        "(default 50000; only with --admission cost)",
    )
    v.add_argument(
        "--client-quota",
        default=None,
        metavar="RATE[:BURST]",
        help="per-client token bucket in work units/second keyed by the "
        "X-Client-Id header; BURST defaults to 10x RATE",
    )
    v.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="append one JSONL line per request (client, graph, estimated vs "
        "actual work units, latency, status) to PATH",
    )
    v.add_argument(
        "--plan-cache-file",
        default=None,
        metavar="PATH",
        help="recompile the previous run's compiled-plan set at startup and "
        "save the current set on drain, so restarts serve warm plans "
        "(single-process server only)",
    )
    v.add_argument(
        "--calibration-file",
        default=None,
        metavar="PATH",
        help="load per-graph cost-calibration state at startup and save it on "
        "drain (single-process server only)",
    )
    v.add_argument(
        "--auto-time-budget",
        action="store_true",
        help="derive a per-query deadline from the cost estimate when a "
        "request sets no time_budget_ms (docs/cost.md)",
    )
    v.add_argument(
        "--work-unit-rate",
        type=float,
        default=None,
        metavar="R",
        help="assumed engine throughput in work units per millisecond, used "
        "by auto budgets and Retry-After hints (default 200)",
    )
    v.add_argument("--seed", type=int, default=0, help="seed for dataset stand-in builds")
    _add_objective_flag(v, help_extra=" (requests may override per call)")
    _add_plan_flags(v)
    _add_observability_flags(v)

    m = sub.add_parser(
        "mutate", help="apply live mutations to a served graph (docs/mutation.md)"
    )
    m.add_argument(
        "--url",
        default="http://127.0.0.1:8707",
        help="base URL of a running repro service (default: the serve default port)",
    )
    m.add_argument("--graph", required=True, help="catalog name of the graph to mutate")
    m.add_argument(
        "--op",
        choices=["add", "remove"],
        default="add",
        help="edge operation for --edge (default: add)",
    )
    m.add_argument(
        "--edge",
        nargs=2,
        type=int,
        metavar=("U", "V"),
        help="apply one edge op via POST /v1/graphs/{g}/edges",
    )
    m.add_argument(
        "--ops-file",
        metavar="PATH",
        help="JSON file holding a list of ops "
        '(["add_vertex", label] / ["add_edge", u, v] / ["remove_edge", u, v]) '
        "sent as one batch via POST /v1/graphs/{g}/ingest",
    )
    m.add_argument(
        "--compaction-threshold",
        type=int,
        default=None,
        metavar="N",
        help="override the server's overlay-size compaction trigger for this batch",
    )

    c = sub.add_parser(
        "estimate", help="print per-query cost estimates (docs/cost.md)"
    )
    c.add_argument("--dataset", required=True, choices=dataset_names())
    c.add_argument("--scale", type=float, default=None, help="dataset scale (default: bench scale)")
    c.add_argument("--k", type=int, default=40)
    c.add_argument("--edges", type=int, default=5, help="query size |E_Q|")
    c.add_argument("--queries", type=int, default=10, help="workload size")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument(
        "--execute",
        action="store_true",
        help="also run each query and report actual work units, the signed "
        "log estimation error, and the measured work-unit rate",
    )

    e = sub.add_parser("experiment", help="run one paper experiment")
    e.add_argument(
        "name",
        choices=["table2", "table3", "table4", "fig6k", "fig9"],
        help="experiment id (see DESIGN.md)",
    )
    e.add_argument("--dataset", default="dblp", choices=dataset_names())
    e.add_argument("--scale", type=float, default=None)
    e.add_argument("--k", type=int, default=40)
    e.add_argument("--edges", type=int, default=5)
    e.add_argument("--queries", type=int, default=10)
    e.add_argument("--seed", type=int, default=0)
    _add_objective_flag(e)
    _add_plan_flags(e)
    _add_executor_flags(e)
    _add_observability_flags(e)
    return parser


def _add_objective_flag(parser: argparse.ArgumentParser, help_extra: str = "") -> None:
    parser.add_argument(
        "--objective",
        choices=sorted(OBJECTIVE_NAMES),
        default="vertex",
        help="diversity objective (docs/objectives.md); 'vertex' is the paper's"
        + help_extra,
    )


def _add_plan_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-plan-cache",
        action="store_true",
        help="recompile the query plan per query instead of memoizing it "
        "(escape hatch; see docs/performance.md)",
    )
    parser.add_argument(
        "--compression",
        action="store_true",
        help="search over twin-class representatives (BoostIso-style "
        "structural equivalence); bit-identical results, faster on "
        "structurally redundant graphs (docs/performance.md)",
    )


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    from repro.parallel.executor import STRATEGIES

    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="serial",
        help="batch execution strategy (DSQL solvers only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count for thread/process strategies (default: available CPUs)",
    )
    parser.add_argument(
        "--time-budget-ms",
        type=float,
        default=None,
        help="per-query wall-clock budget; exceeding it truncates the search",
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="append structured trace events (JSONL) to PATH; see docs/observability.md",
    )
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default=None,
        help="enable stderr logging for the 'repro' logger at this level",
    )


def _setup_observability(args: argparse.Namespace) -> Optional[Instrumentation]:
    """Build and install instrumentation from ``--trace-out``/``--log-level``.

    Either flag switches instrumentation on (the per-query debug log lines
    only exist on the instrumented path). Returns ``None`` — and installs
    nothing — when both are absent, keeping the default run on the
    zero-overhead path.
    """
    trace_out = getattr(args, "trace_out", None)
    log_level = getattr(args, "log_level", None)
    if log_level is not None:
        configure_logging(log_level.upper())
    if trace_out is None and log_level is None:
        return None
    tracer = Tracer(JsonlSink(trace_out)) if trace_out is not None else None
    instr = Instrumentation(tracer=tracer)
    set_default_instrumentation(instr)
    return instr


def _check_executor_flags(
    parser: argparse.ArgumentParser, args: argparse.Namespace, context: str
) -> None:
    """Reject parallel/deadline flags where they cannot be honored."""
    if args.strategy != "serial" or args.jobs is not None:
        parser.error(f"--strategy/--jobs are not supported with {context}")
    if args.time_budget_ms is not None:
        parser.error(f"--time-budget-ms is not supported with {context}")


def _cmd_query(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    graph = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    stats = compute_statistics(graph)
    print(
        f"{args.dataset}: |V|={stats.num_vertices} |E|={stats.num_edges} "
        f"|Sigma|={stats.num_labels} avg_deg={stats.average_degree:.2f}"
    )
    queries = list(query_set(graph, args.edges, args.queries, seed=args.seed))

    if args.solver in VARIANTS:
        config = variant_config(
            args.solver,
            args.k,
            run_phase2=not args.no_phase2,
            time_budget_ms=args.time_budget_ms,
            plan_cache=not args.no_plan_cache,
            use_compression=args.compression,
            objective=args.objective,
        )
        summary = run_executor_batch(
            graph,
            queries,
            config,
            strategy=args.strategy,
            jobs=args.jobs,
            label=args.solver,
        )
    else:
        _check_executor_flags(parser, args, f"baseline {args.solver}")
        if args.objective != "vertex":
            parser.error(
                f"--objective is not supported with baseline {args.solver} "
                "(baselines optimize the paper's vertex coverage)"
            )
        if args.solver == "COM":
            solver = com_solver(args.k, seed=args.seed)
        elif args.solver == "FIRSTK":
            solver = first_k_solver(args.k)
        else:
            solver = random_start_solver(args.k, seed=args.seed)
        summary = run_batch(graph, queries, solver, label=args.solver)

    print(render_table(SUMMARY_HEADERS, [summary_row(summary)]))
    if args.solver in VARIANTS:
        hits = summary.cache_hits
        print(f"query cache: {hits} hits, {len(summary) - hits} misses")
        if summary.any_deadline_exhausted:
            print(
                f"note: some queries were truncated by the "
                f"{args.time_budget_ms:g} ms time budget"
            )
    return 0


def _cmd_datasets() -> int:
    rows = []
    for name in dataset_names():
        p = get_profile(name)
        rows.append(
            [
                name,
                p.num_vertices,
                p.num_edges,
                p.num_labels,
                f"{p.avg_degree:.2f}",
                p.topology,
                p.label_scheme,
                f"{p.bench_scale:g}",
            ]
        )
    print(
        render_table(
            ["dataset", "|V|", "|E|", "|Sigma|", "avg_deg", "topology", "labels", "bench_scale"],
            rows,
        )
    )
    return 0


def _cmd_schedule(scans: int) -> int:
    rows = [
        [t + 1, f"{alpha:.4f}", f"{gamma:.4f}"]
        for t, (alpha, gamma) in enumerate(alpha_gamma_schedule(scans))
    ]
    print(render_table(["scan t", "alpha_t", "gamma_t (guarantee)"], rows))
    return 0


def _cmd_serve(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    instr: Optional[Instrumentation],
) -> int:
    """Load the catalog, bind the server, and serve until SIGTERM/SIGINT."""
    from repro.exceptions import ReproError
    from repro.service import (
        MultiWorkerServer,
        QueryService,
        ServiceServer,
        build_catalog,
    )

    if not args.dataset and not args.graph:
        parser.error("serve requires at least one --dataset or --graph")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.calibration_file is not None and args.workers > 1:
        # Calibration state lives in the answering process; the pre-forked
        # workers each hold their own, and the parent catalog never answers.
        parser.error("--calibration-file requires the single-process server (--workers 1)")
    if args.plan_cache_file is not None and args.workers > 1:
        # Same process-locality argument: plan caches live on each worker's
        # own index caches, not the parent's.
        parser.error("--plan-cache-file requires the single-process server (--workers 1)")
    quota_rate = quota_burst = None
    if args.client_quota is not None:
        rate_text, _, burst_text = args.client_quota.partition(":")
        try:
            quota_rate = float(rate_text)
            quota_burst = float(burst_text) if burst_text else None
        except ValueError:
            parser.error(f"--client-quota must be RATE or RATE:BURST, got {args.client_quota!r}")
    config_kwargs = {}
    if args.query_cache_size is not None:
        # Only override when asked: DSQLConfig's default (128) is the
        # documented serving default, while an explicit None would mean
        # "unbounded" — not a CLI-reachable state.
        config_kwargs["query_cache_size"] = args.query_cache_size
    if args.work_unit_rate is not None:
        config_kwargs["work_unit_rate"] = args.work_unit_rate
    config = DSQLConfig(
        k=args.k,
        time_budget_ms=args.time_budget_ms,
        plan_cache=not args.no_plan_cache,
        use_compression=args.compression,
        objective=args.objective,
        auto_time_budget=args.auto_time_budget,
        **config_kwargs,
    )
    # The admission-mode / quota / access-log knobs, as QueryService kwargs
    # (threaded verbatim to every pre-forked worker in multi-worker mode).
    service_options = {
        "admission_mode": args.admission,
        "client_quota_rate": quota_rate,
        "client_quota_burst": quota_burst,
        "access_log": args.access_log,
    }
    if args.work_unit_budget is not None:
        service_options["work_unit_budget"] = args.work_unit_budget
    if args.work_unit_rate is not None:
        # The drain rate behind cost-mode Retry-After hints, in units/s.
        service_options["drain_rate"] = args.work_unit_rate * 1000.0
    try:
        catalog, lines = build_catalog(
            datasets=args.dataset,
            graph_files=args.graph,
            default_config=config,
            instrumentation=instr,
            seed=args.seed,
        )
        if args.calibration_file is not None:
            restored = catalog.load_calibration(args.calibration_file)
            if restored:
                lines.append(f"restored cost calibration for: {', '.join(restored)}")
        if args.plan_cache_file is not None:
            warmed = catalog.load_plan_cache(args.plan_cache_file)
            lines.append(f"plan_cache.warmed={warmed}")
        if args.workers > 1:
            server = MultiWorkerServer(
                catalog,
                workers=args.workers,
                host=args.host,
                port=args.port,
                max_in_flight=args.max_in_flight,
                max_queue=args.max_queue,
                retry_after_s=args.retry_after_s,
                service_options=service_options,
            ).start()
        else:
            service = QueryService(
                catalog,
                max_in_flight=args.max_in_flight,
                max_queue=args.max_queue,
                retry_after_s=args.retry_after_s,
                **service_options,
            )
            server = ServiceServer(service, host=args.host, port=args.port)
    except ReproError as exc:
        parser.error(str(exc))
    for line in lines:
        print(line)
    server.install_signal_handlers()
    if args.workers > 1:
        print(
            f"repro service listening on {server.url} with {args.workers} workers "
            f"(merged views at {server.control_url}; SIGTERM drains gracefully)"
        )
    else:
        print(f"repro service listening on {server.url} (SIGTERM drains gracefully)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    server.close()
    if args.calibration_file is not None and args.workers == 1:
        saved = catalog.save_calibration(args.calibration_file)
        if saved:
            print(f"saved cost calibration for: {', '.join(saved)}")
    if args.plan_cache_file is not None and args.workers == 1:
        saved_plans = catalog.save_plan_cache(args.plan_cache_file)
        print(f"plan_cache.saved={saved_plans}")
    print("repro service drained")
    return 0


def _cmd_mutate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """POST one edge op or an ops-file batch to a running service."""
    import json
    from pathlib import Path

    from repro.service.client import ServiceClient, ServiceClientError

    if bool(args.edge) == bool(args.ops_file):
        parser.error("mutate requires exactly one of --edge U V or --ops-file PATH")
    client = ServiceClient(args.url)
    try:
        if args.edge:
            body = client.mutate_edge(args.graph, args.op, args.edge[0], args.edge[1])
        else:
            path = Path(args.ops_file)
            if not path.is_file():
                parser.error(f"ops file not found: {path}")
            try:
                ops = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                parser.error(f"{path} is not valid JSON: {exc}")
            if not isinstance(ops, list):
                parser.error(f"{path} must hold a JSON list of ops")
            body = client.ingest(
                args.graph, ops, compaction_threshold=args.compaction_threshold
            )
    except ServiceClientError as exc:
        hint = ""
        if exc.status == 409 and exc.retry_after_s is not None:
            hint = f" (retry after {exc.retry_after_s:g}s)"
        print(f"mutation failed: {exc}{hint}", file=sys.stderr)
        return 1
    version = body.get("version")
    print(
        f"{args.graph}: applied {body.get('applied')} op(s), "
        f"compacted={body.get('compacted')}, version={version}"
    )
    return 0


def _cmd_estimate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Print the repro.cost estimate for a generated workload (docs/cost.md).

    With ``--execute`` each query also runs, so the table pairs every
    estimate with the engine's actual ``nodes_expanded`` and the footer
    reports the mean absolute log error plus the *measured* work-unit rate
    — the number to feed back into ``--work-unit-rate`` for auto budgets.
    """
    import math
    import time as _time

    from repro.core.dsql import DSQL

    graph = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = DSQLConfig(k=args.k, plan_cache=True)
    session = DSQL(graph, config=config)
    queries = list(query_set(graph, args.edges, args.queries, seed=args.seed))

    headers = ["query", "est units", "lower", "upper"]
    if args.execute:
        headers += ["actual", "log err", "ms"]
    rows = []
    abs_log_errs = []
    total_actual = 0
    total_ms = 0.0
    for i, query in enumerate(queries):
        estimate = session.estimate(query)
        row = [
            query.name or f"q{i}",
            f"{estimate.work_units:.1f}",
            f"{estimate.lower:.1f}",
            f"{estimate.upper:.1f}",
        ]
        if args.execute:
            start = _time.perf_counter()
            result = session.query(query)
            elapsed_ms = (_time.perf_counter() - start) * 1000.0
            actual = result.stats.nodes_expanded
            session.index_cache.cost_estimator().observe(estimate, actual)
            log_err = math.log((actual + 1.0) / (estimate.work_units + 1.0))
            abs_log_errs.append(abs(log_err))
            total_actual += actual
            total_ms += elapsed_ms
            row += [actual, f"{log_err:+.2f}", f"{elapsed_ms:.1f}"]
        rows.append(row)
    print(render_table(headers, rows))
    info = session.index_cache.cost_estimator().describe()
    print(
        f"calibration: factor {info['calibration_factor']:.3f}, "
        f"band x{info['band']:.1f}, {info['observations']} observation(s)"
    )
    if args.execute and abs_log_errs:
        rate = total_actual / total_ms if total_ms > 0 else float("nan")
        print(
            f"mean abs log error: {sum(abs_log_errs) / len(abs_log_errs):.3f}; "
            f"measured rate: {rate:.1f} work units/ms "
            f"(pass as --work-unit-rate for auto budgets)"
        )
    return 0


def _cmd_experiment(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    from repro.experiments import paper
    from repro.experiments.report import render_series, render_summaries

    if args.name != "table3":
        # Only table3's DSQL batch goes through the executor; the other
        # experiments time their solvers per-query and would silently
        # ignore (or misreport under) these flags. Same for --objective:
        # the other experiments build their own configs internally.
        _check_executor_flags(parser, args, f"experiment {args.name}")
        if args.objective != "vertex":
            parser.error(f"--objective is not supported with experiment {args.name}")

    graph = make_dataset(args.dataset, scale=args.scale, seed=args.seed)
    queries = list(query_set(graph, args.edges, args.queries, seed=args.seed))

    if args.name == "table2":
        row = paper.table2_counts(graph, queries, dataset=args.dataset)
        print(
            f"{args.dataset}: avg {row.average:.1f} embeddings, worst {row.worst}, "
            f"{row.mean_seconds * 1000:.1f} ms/query "
            f"({row.completed}/{row.total} completed)"
        )
    elif args.name == "table3":
        firstk = paper.table3_firstk(graph, queries, args.k)
        config = DSQLConfig(
            k=args.k,
            time_budget_ms=args.time_budget_ms,
            plan_cache=not args.no_plan_cache,
            use_compression=args.compression,
            objective=args.objective,
        )
        dsql = run_executor_batch(
            graph,
            queries,
            config,
            strategy=args.strategy,
            jobs=args.jobs,
            label="DSQL",
        )
        print(render_summaries([firstk, dsql], title=f"Table 3 on {args.dataset}"))
        if dsql.any_deadline_exhausted:
            print(f"note: DSQL truncated by the {args.time_budget_ms:g} ms time budget")
    elif args.name == "table4":
        result = paper.table4_strategies(graph, queries, args.k)
        rows = [
            [o.strategy, f"{o.mean_millis:.2f}" + ("+t" if o.includes_generation else ""),
             f"{o.mean_coverage:.1f}"]
            for o in result.outcomes
        ]
        print(render_table(["strategy", "ms", "coverage"], rows))
        print(f"(t = {result.generation_millis:.1f} ms generation)")
    elif args.name == "fig6k":
        ks = [10, 20, 30, 40, 50]
        series = paper.sweep_k(graph, queries, ks)
        print(render_series("k", ks, series))
    else:  # fig9
        out = paper.ablation(graph, queries, args.k)
        print(render_summaries(out.values(), title=f"Figure 9 ablation on {args.dataset}"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.backend is not None:
        set_default_backend(args.backend)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "schedule":
        return _cmd_schedule(args.scans)
    if args.command == "mutate":
        return _cmd_mutate(parser, args)
    instr = _setup_observability(args)
    try:
        if args.command == "query":
            rc = _cmd_query(parser, args)
        elif args.command == "estimate":
            rc = _cmd_estimate(parser, args)
        elif args.command == "serve":
            return _cmd_serve(parser, args, instr)
        else:
            rc = _cmd_experiment(parser, args)
        if instr is not None:
            print(counters_line(instr.metrics))
        return rc
    finally:
        if instr is not None:
            set_default_instrumentation(None)
            instr.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
