"""Initial candidate sets ``candS(u)`` (Section 4).

"Before running DSQL, we first generate a candidate set candS(u) for each
u in V_Q based on these filters" — label, degree and neighborhood signature.
:class:`CandidateIndex` materializes the sets once per query and offers the
derived views the search phases need:

* ``candS[u]`` as an ordered list (iteration order is deterministic);
* membership tests (set form) for dynamic validity checks;
* ``TcandS[u] = candS[u] & V(T)`` restriction used at each DSQL level.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.signature import passes_all_filters


class CandidateIndex:
    """Per-query candidate sets with set and list views.

    Parameters
    ----------
    graph, query:
        The data and query graphs.
    use_degree_filter, use_signature_filter:
        Individual filters can be disabled to study their pruning power
        (the label filter is always on — without it nothing is a candidate
        model of the paper's ``cand(u)``).
    """

    def __init__(
        self,
        graph: LabeledGraph,
        query: QueryGraph,
        use_degree_filter: bool = True,
        use_signature_filter: bool = True,
    ) -> None:
        self.graph = graph
        self.query = query
        self.use_degree_filter = use_degree_filter
        self.use_signature_filter = use_signature_filter
        self._lists: List[Tuple[int, ...]] = []
        self._sets: List[Set[int]] = []
        for u in range(query.size):
            cands = [
                v
                for v in graph.vertices_with_label(query.label(u))
                if self._passes(u, v)
            ]
            self._lists.append(tuple(cands))
            self._sets.append(set(cands))

    def _passes(self, u: int, v: int) -> bool:
        if self.use_degree_filter and self.graph.degree(v) < self.query.degree(u):
            return False
        if self.use_signature_filter and not (
            self.query.neighborhood_signature(u)
            <= self.graph.neighborhood_signature(v)
        ):
            return False
        return True

    def candidates(self, u: int) -> Tuple[int, ...]:
        """``candS(u)`` in deterministic (label-index) order."""
        return self._lists[u]

    def candidate_set(self, u: int) -> Set[int]:
        """``candS(u)`` as a set for O(1) membership tests."""
        return self._sets[u]

    def size(self, u: int) -> int:
        """``|candS(u)|`` — used by the qList selectivity ranking."""
        return len(self._lists[u])

    def sizes(self) -> List[int]:
        """All candidate-set sizes, indexed by query node."""
        return [len(c) for c in self._lists]

    def is_candidate(self, u: int, v: int) -> bool:
        """Whether ``v`` is in ``candS(u)``.

        This is the *static* filter view; a vertex dropped by in-search
        refinement (Algorithm 4 line 10) is removed from the set too.
        """
        return v in self._sets[u]

    def discard(self, u: int, v: int) -> None:
        """Remove a vertex that failed a dynamic re-check (Algorithm 4 l.10).

        Only the set view is updated — the frozen list view preserves the
        original iteration order; the search consults :meth:`is_candidate`
        before using a listed vertex.
        """
        self._sets[u].discard(v)

    def restricted(self, u: int, allowed: Set[int]) -> List[int]:
        """``candS(u)`` intersected with ``allowed`` (builds ``TcandS[u]``)."""
        return [v for v in self._lists[u] if v in allowed]

    def any_empty(self) -> bool:
        """Whether some query node has no candidates (query is unsatisfiable)."""
        return any(not c for c in self._lists)

    def full_check(self, u: int, v: int) -> bool:
        """Complete filter predicate, independent of the materialized sets.

        Used to build *dynamic conflict tables* (Section 5.3), where we must
        ask "would ``v`` have been a valid candidate for ``u_i``?" even for
        vertices currently excluded by matching state.
        """
        return passes_all_filters(self.graph, self.query, u, v)


def build_candidate_index(
    graph: LabeledGraph,
    query: QueryGraph,
    use_degree_filter: bool = True,
    use_signature_filter: bool = True,
) -> CandidateIndex:
    """Convenience constructor mirroring the paper's pre-processing step."""
    return CandidateIndex(
        graph,
        query,
        use_degree_filter=use_degree_filter,
        use_signature_filter=use_signature_filter,
    )
