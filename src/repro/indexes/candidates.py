"""Initial candidate sets ``candS(u)`` (Section 4).

"Before running DSQL, we first generate a candidate set candS(u) for each
u in V_Q based on these filters" — label, degree and neighborhood signature.
:class:`CandidateIndex` is split into two layers:

* the **per-graph part** lives in the shared
  :class:`~repro.indexes.graph_cache.GraphIndexCache` — label inverted
  index, degree array, signature bitmasks, and a memo of candidate pools
  keyed by filter profile ``(label, min_degree, signature_mask)``;
* the **per-query part** (this class) is a cheap restriction: each query
  node's filter profile is computed from the query graph alone and resolved
  against the cached pools — or taken straight from a compiled
  :class:`~repro.indexes.plans.QueryPlan`, which has already resolved both.

The search phases get the same derived views as before:

* ``candS[u]`` as an ordered list (iteration order is deterministic);
* membership tests (set form) for dynamic validity checks — materialized
  **lazily**, since plan-driven engines intersect sorted pools directly and
  never need a set;
* ``TcandS[u] = candS[u] & V(T)`` restriction used at each DSQL level.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.graph_cache import GraphIndexCache
from repro.kernels import intersect_sorted


class CandidateIndex:
    """Per-query candidate sets with list and (lazy) set views.

    Parameters
    ----------
    graph, query:
        The data and query graphs.
    use_degree_filter, use_signature_filter:
        Individual filters can be disabled to study their pruning power
        (the label filter is always on — without it nothing is a candidate
        model of the paper's ``cand(u)``).
    cache:
        The per-graph :class:`GraphIndexCache` to resolve pools against;
        defaults to the graph's pinned cache.
    plan:
        Optional compiled :class:`~repro.indexes.plans.QueryPlan` for this
        (graph, query, filters) triple; when given, its resolved profiles
        and pools are adopted directly instead of being recomputed. The
        caller is responsible for key consistency (the plan must have been
        compiled with the same filter toggles).
    """

    def __init__(
        self,
        graph: LabeledGraph,
        query: QueryGraph,
        use_degree_filter: bool = True,
        use_signature_filter: bool = True,
        cache: Optional[GraphIndexCache] = None,
        plan=None,
    ) -> None:
        self.graph = graph
        self.query = query
        self.use_degree_filter = use_degree_filter
        self.use_signature_filter = use_signature_filter
        self.cache = cache if cache is not None else graph.index_cache()
        self.set_views_built = 0
        if plan is not None:
            self._profiles = list(plan.profiles)
            self._lists = list(plan.pools)
            self._sets: List[Optional[Set[int]]] = [None] * query.size
            return
        # Per-node full filter profile (label, query degree, signature mask);
        # mask is None when the query requires a label absent from the graph.
        self._profiles: List[Tuple[object, int, Optional[int]]] = []
        self._lists: List[Tuple[int, ...]] = []
        self._sets = [None] * query.size
        c = self.cache
        for u in range(query.size):
            label = query.label(u)
            qdeg = query.degree(u)
            mask = c.mask_for(query.neighborhood_signature(u))
            self._profiles.append((label, qdeg, mask))
            if use_signature_filter and mask is None:
                pool: Tuple[int, ...] = ()
            else:
                pool = c.candidate_pool(
                    label,
                    min_degree=qdeg if use_degree_filter else 0,
                    signature_mask=mask if use_signature_filter else 0,
                )
            self._lists.append(pool)

    def candidates(self, u: int) -> Tuple[int, ...]:
        """``candS(u)`` in deterministic (label-index) order."""
        return self._lists[u]

    def _set_view(self, u: int) -> Set[int]:
        """The set form of ``candS(u)``, materialized on first use.

        Plan-driven engines intersect the sorted list views instead, so a
        whole query can run without building a single set;
        :attr:`set_views_built` counts materializations for the regression
        test that pins this.
        """
        s = self._sets[u]
        if s is None:
            s = self._sets[u] = set(self._lists[u])
            self.set_views_built += 1
        return s

    def candidate_set(self, u: int) -> Set[int]:
        """``candS(u)`` as a set for O(1) membership tests."""
        return self._set_view(u)

    def size(self, u: int) -> int:
        """``|candS(u)|`` — used by the qList selectivity ranking."""
        return len(self._lists[u])

    def sizes(self) -> List[int]:
        """All candidate-set sizes, indexed by query node."""
        return [len(c) for c in self._lists]

    def is_candidate(self, u: int, v: int) -> bool:
        """Whether ``v`` is in ``candS(u)``.

        This is the *static* filter view; a vertex dropped by in-search
        refinement (Algorithm 4 line 10) is removed from the set too.
        """
        return v in self._set_view(u)

    def discard(self, u: int, v: int) -> None:
        """Remove a vertex that failed a dynamic re-check (Algorithm 4 l.10).

        Only the set view is updated — the frozen list view preserves the
        original iteration order; the search consults :meth:`is_candidate`
        before using a listed vertex.
        """
        self._set_view(u).discard(v)

    def restricted(self, u: int, allowed) -> List[int]:
        """``candS(u)`` intersected with ``allowed`` (builds ``TcandS[u]``).

        ``allowed`` may be an ascending sequence (the kernel path: one
        :func:`~repro.kernels.intersect_sorted` call) or any unordered
        collection, which is sorted first. Either way the result preserves
        the pool's ascending order, exactly like the seed's
        filter-by-membership list.
        """
        if not isinstance(allowed, (list, tuple)):
            allowed = sorted(allowed)
        return intersect_sorted(self._lists[u], allowed)

    def any_empty(self) -> bool:
        """Whether some query node has no candidates (query is unsatisfiable)."""
        return any(not c for c in self._lists)

    def full_check(self, u: int, v: int) -> bool:
        """Complete filter predicate, independent of the materialized sets.

        Used to build *dynamic conflict tables* (Section 5.3), where we must
        ask "would ``v`` have been a valid candidate for ``u_i``?" even for
        vertices currently excluded by matching state. Always applies the
        full label + degree + signature stack regardless of the per-instance
        filter toggles, matching the seed semantics.
        """
        label, qdeg, mask = self._profiles[u]
        if mask is None:
            return False
        c = self.cache
        return (
            c.graph.label(v) == label
            and c.degrees[v] >= qdeg
            and c.signature_masks[v] & mask == mask
        )


def build_candidate_index(
    graph: LabeledGraph,
    query: QueryGraph,
    use_degree_filter: bool = True,
    use_signature_filter: bool = True,
) -> CandidateIndex:
    """Convenience constructor mirroring the paper's pre-processing step."""
    return CandidateIndex(
        graph,
        query,
        use_degree_filter=use_degree_filter,
        use_signature_filter=use_signature_filter,
    )
