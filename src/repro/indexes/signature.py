"""Degree and neighborhood-signature filters (Section 4.2).

A data vertex ``v`` is a *plausible* match for query node ``u`` only if

* ``L(v) == L_Q(u)``                    (label filter),
* ``degree(v) >= degree_Q(u)``          (degree filter),
* ``NS_Q(u) <= NS(v)``                  (neighborhood-signature filter),

where ``NS(v)`` is the set of labels among ``v``'s neighbors. The paper
adopts exactly this filter stack ("we adopt the best indexing strategy as
noted in [21], which is that of the neighborhood signatures"), with
O(|V| + |E|) storage — here the signatures are cached on the graph itself.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.query_graph import QueryGraph


def query_signature(query: QueryGraph, u: int) -> FrozenSet[Label]:
    """``NS_Q(u)``: labels adjacent to node ``u`` in the query graph."""
    return query.neighborhood_signature(u)


def passes_label_filter(graph: LabeledGraph, query: QueryGraph, u: int, v: int) -> bool:
    """Label equality check ``L(v) == L_Q(u)``."""
    return graph.label(v) == query.label(u)


def passes_degree_filter(graph: LabeledGraph, query: QueryGraph, u: int, v: int) -> bool:
    """Degree dominance check ``degree(v) >= degree_Q(u)``."""
    return graph.degree(v) >= query.degree(u)


def passes_signature_filter(graph: LabeledGraph, query: QueryGraph, u: int, v: int) -> bool:
    """Neighborhood-signature containment ``NS_Q(u) <= NS(v)``."""
    return query.neighborhood_signature(u) <= graph.neighborhood_signature(v)


def passes_all_filters(graph: LabeledGraph, query: QueryGraph, u: int, v: int) -> bool:
    """Conjunction of the label, degree, and signature filters.

    This is the ``refineCandidates`` predicate of Algorithm 1 and the
    "degree and neighborhood filters" re-check at line 9 of Algorithm 4.
    Ordered cheapest-first so the common rejection exits early.
    """
    return (
        graph.label(v) == query.label(u)
        and graph.degree(v) >= query.degree(u)
        and query.neighborhood_signature(u) <= graph.neighborhood_signature(v)
    )
