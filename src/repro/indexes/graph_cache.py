"""Per-graph index cache shared across queries and sessions.

The DSQL filters of Section 3 (label, degree, neighborhood signature) all
depend only on the *data graph*, yet the seed implementation recomputed them
lazily per :class:`~repro.graph.labeled_graph.LabeledGraph` accessor and
rebuilt candidate pools from zero on every ``DSQL.query`` call.
:class:`GraphIndexCache` hoists every per-graph artifact into one object
computed once and pinned by the graph (``graph.index_cache()``), so a DSQL
session answering many queries against the same graph shares:

* the **label inverted index** (label -> sorted vertex tuple);
* the **neighborhood-signature table** — per-vertex label-id *bitmasks*
  (Python ints, so an arbitrary number of labels works) plus interned
  frozenset views for the public API;
* the **degree and label arrays** reused from the storage backend;
* a bounded LRU **candidate-pool memo** keyed by
  ``(label_id, min_degree, signature_mask)`` — distinct query nodes with the
  same filter profile (and repeated queries) share one pool computation.

:class:`~repro.indexes.candidates.CandidateIndex` becomes a cheap per-query
restriction over these pools instead of a per-query full scan.

Live mutation support is *delta-based* rather than epoch-nuke:
:meth:`GraphIndexCache.apply_delta` repairs only the state derived from the
touched edges' 1-hop neighborhoods (the endpoints' degrees, signature masks,
adjacency bitsets, and the candidate pools of their labels) and evicts only
the compiled plans whose pools intersect the dirty label set — everything
else survives at the same logical :attr:`epoch` with a bumped
:attr:`delta_seq`. The pair ``(epoch, delta_seq)`` is the cache
:attr:`version` that keys session memos and stamps shared-memory
publications; a compaction (:meth:`on_compaction`) starts a fresh epoch and
clears the mutation log, which is what finally invalidates attached
shared-memory descriptors. See ``docs/mutation.md`` for the full contract.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

import numpy as np

Label = Hashable

DEFAULT_CANDIDATE_MEMO_SIZE = 2048

DEFAULT_ADJACENCY_MEMO_SIZE = 4096
"""Cap on memoized per-vertex neighbor bitsets (LRU eviction).

A mask costs O(num_vertices / 8) bytes, so materializing one per vertex
would be quadratic in graph size; in practice only the vertices matched to
query nodes near the search root ever need a mask, and they repeat heavily
across frames and queries.
"""

_EPOCHS = itertools.count()
"""Process-wide monotonic epoch source for :attr:`GraphIndexCache.epoch`."""


class GraphIndexCache:
    """All per-graph filter state, computed once and shared.

    Parameters
    ----------
    graph:
        The :class:`~repro.graph.labeled_graph.LabeledGraph` to index.
    candidate_memo_size:
        Cap on the memoized candidate pools (LRU eviction). ``None`` means
        unbounded; ``0`` disables memoization.
    """

    __slots__ = (
        "graph",
        "label_table",
        "label_to_id",
        "label_ids",
        "degrees",
        "degree_array",
        "label_index",
        "signature_masks",
        "candidate_memo_hits",
        "candidate_memo_misses",
        "epoch",
        "delta_seq",
        "plan_cache",
        "_mutation_log",
        "_signatures",
        "_mask_signatures",
        "_pool_memo",
        "_pool_memo_size",
        "_pool_lock",
        "_adj_masks",
        "_adj_memo_size",
        "_adj_lock",
        "_metrics",
        "_cost_estimator",
        "_compressed",
    )

    def __init__(
        self,
        graph,
        candidate_memo_size: Optional[int] = DEFAULT_CANDIDATE_MEMO_SIZE,
        *,
        signature_masks: Optional[List[int]] = None,
        adjacency_masks: Optional[Dict[int, int]] = None,
        epoch: Optional[int] = None,
        delta_seq: int = 0,
    ):
        """``signature_masks``/``adjacency_masks``/``epoch`` restore published
        state on the shared-memory attach path (:mod:`repro.graph.shared`):
        the signature table is adopted instead of recomputed (skipping the
        O(|E|) neighbor sweep), the publisher's warm adjacency bitsets seed
        the memo, and the publisher's epoch is kept so plan-cache keys agree
        across the publishing and attaching processes."""
        self.graph = graph
        backend = graph.backend
        self.label_table: List[Label] = backend.label_table
        self.label_to_id: Dict[Label, int] = backend.label_to_id
        label_ids = [int(i) for i in backend.label_ids]
        self.label_ids: List[int] = label_ids
        self.degrees: List[int] = backend.degree_sequence()
        self.degree_array: np.ndarray = backend.degree_array

        # Label inverted index: label -> sorted tuple of vertices.
        buckets: List[List[int]] = [[] for _ in self.label_table]
        for v, lid in enumerate(label_ids):
            buckets[lid].append(v)
        self.label_index: Dict[Label, Tuple[int, ...]] = {
            self.label_table[lid]: tuple(vs) for lid, vs in enumerate(buckets)
        }

        # Signature table: per-vertex bitmask over label ids, with interned
        # frozenset views (equal masks share one frozenset object).
        bit = [1 << lid for lid in range(len(self.label_table))]
        if signature_masks is not None:
            masks = list(signature_masks)
        else:
            masks = []
            neighbors = graph.neighbors
            for v in range(graph.num_vertices):
                m = 0
                for w in neighbors(v):
                    m |= bit[label_ids[w]]
                masks.append(m)
        self.signature_masks: List[int] = masks
        interned: Dict[int, FrozenSet[Label]] = {}
        sigs: List[FrozenSet[Label]] = []
        for m in masks:
            s = interned.get(m)
            if s is None:
                s = interned[m] = frozenset(
                    self.label_table[lid] for lid in range(len(bit)) if m >> lid & 1
                )
            sigs.append(s)
        self._signatures: List[FrozenSet[Label]] = sigs
        self._mask_signatures = interned

        self._pool_memo: "OrderedDict[Tuple[int, int, int], Tuple[int, ...]]" = OrderedDict()
        self._pool_memo_size = candidate_memo_size
        # Everything above is immutable after construction and safely shared
        # across threads; the pool memo is the one mutable structure, so its
        # get/move_to_end/evict sequences are serialized for the thread
        # strategy of the parallel BatchExecutor. Uncontended acquisition is
        # tens of nanoseconds against a pool scan's micro/milliseconds.
        self._pool_lock = threading.Lock()
        self.candidate_memo_hits = 0
        self.candidate_memo_misses = 0
        self._metrics = None

        # Lazy per-vertex neighbor bitsets (big ints) for the join kernels.
        self._adj_masks: "OrderedDict[int, int]" = OrderedDict(adjacency_masks or ())
        self._adj_memo_size = DEFAULT_ADJACENCY_MEMO_SIZE
        self._adj_lock = threading.Lock()

        # Compiled query plans are keyed by (epoch, canonical query key,
        # filter toggles); the epoch makes keys from different cache
        # generations of the "same" graph distinguishable even if a plan
        # cache instance were ever shared.
        self.epoch = next(_EPOCHS) if epoch is None else epoch
        # Delta sequence within the epoch: bumped once per applied mutation,
        # reset to 0 by compaction. (epoch, delta_seq) is the cache version.
        self.delta_seq = delta_seq
        self._mutation_log: List[Tuple[int, Tuple]] = []
        # Late import: repro.indexes.plans reaches back through the
        # isomorphism package (for the search-order construction), which
        # imports this module — a top-level import here would cycle.
        from repro.indexes.plans import PlanCache

        self.plan_cache = PlanCache()
        # The per-graph cost estimator is built lazily (see
        # :meth:`cost_estimator`) so graphs that never estimate pay nothing.
        self._cost_estimator = None
        # Twin-class partition for compression-enabled plans, built lazily
        # (see :meth:`compressed`) and repaired in-place by apply_delta.
        self._compressed = None

    # ------------------------------------------------------------------
    # Pickling: locks cannot cross process boundaries; a fresh lock is
    # equivalent because a just-unpickled cache has no concurrent users yet.
    # An attached metrics registry (which also holds locks) is session
    # state, not graph state, so it is dropped the same way.
    def __getstate__(self) -> dict:
        # The adjacency-mask memo is also dropped: it is a pure cache of big
        # ints that rebuilds lazily, and shipping megabytes of masks to a
        # worker is worse than recomputing the few it touches.
        # The cost estimator is dropped too (it holds a lock): calibration
        # is session state that each process re-learns from its own traffic.
        # The compressed twin partition is likewise dropped — it is a pure
        # function of the graph and rebuilds lazily on first compressed plan.
        skip = (
            "_pool_lock",
            "_adj_lock",
            "_adj_masks",
            "_metrics",
            "_cost_estimator",
            "_compressed",
        )
        return {s: getattr(self, s) for s in self.__slots__ if s not in skip}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._pool_lock = threading.Lock()
        self._adj_lock = threading.Lock()
        self._adj_masks = OrderedDict()
        self._metrics = None
        self._cost_estimator = None
        self._compressed = None

    # ------------------------------------------------------------------
    def attach_metrics(self, registry) -> None:
        """Mirror pool-memo hits/misses into ``registry`` from now on.

        Called by instrumented :class:`~repro.core.dsql.DSQL` sessions so
        the shared per-graph cache reports into the session's
        :class:`~repro.observability.MetricsRegistry` (``cache.pool.hit`` /
        ``cache.pool.miss``). Passing ``None`` detaches. The plain integer
        counters (:attr:`candidate_memo_hits`/``misses``) keep counting
        either way. The hosted :attr:`plan_cache` is attached alongside
        (``plan.cache.hits`` / ``plan.cache.misses``).
        """
        self._metrics = registry
        self.plan_cache.attach_metrics(registry)
        if self._cost_estimator is not None:
            self._cost_estimator.attach_metrics(registry)

    def _record_lazy_expansion(self) -> None:
        """Mirror one lazy class-frame expansion into the attached registry."""
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("compression.lazy_expansions").inc()

    # ------------------------------------------------------------------
    def cost_estimator(self):
        """The graph's shared :class:`~repro.cost.CostEstimator`.

        Built on first use so that sessions which never estimate pay
        nothing; shared by every session/executor/service handler on this
        cache so they also share one calibration state (the point of
        per-graph calibration). Guarded by ``_pool_lock`` — creation is
        rare and the lock is never held while estimating.
        """
        estimator = self._cost_estimator
        if estimator is None:
            # Late import mirrors the PlanCache one above: repro.cost is a
            # leaf package, but keeping it off the module import path means
            # plain index users never load numpy-adjacent estimator code.
            from repro.cost.estimator import CostEstimator

            with self._pool_lock:
                estimator = self._cost_estimator
                if estimator is None:
                    estimator = CostEstimator(self)
                    if self._metrics is not None:
                        estimator.attach_metrics(self._metrics)
                    self._cost_estimator = estimator
        return estimator

    # ------------------------------------------------------------------
    def compressed(self):
        """The graph's twin-class partition (:class:`~repro.isomorphism.
        compression.CompressedGraph`), built on first use and pinned to this
        cache version.

        Compression-enabled plans and engines share one partition per graph:
        :meth:`apply_delta` repairs it in place (splitting only the dirtied
        endpoints' classes), and compaction keeps it — topology is unchanged
        — so the partition stays valid across the cache's whole life.
        Guarded by ``_pool_lock``; creation is rare and the lock is never
        held while searching.
        """
        compressed = self._compressed
        if compressed is None:
            # Late import mirrors PlanCache/CostEstimator above: the
            # compression module imports the isomorphism package, which
            # reaches back here.
            from repro.isomorphism.compression import CompressedGraph

            with self._pool_lock:
                compressed = self._compressed
                if compressed is None:
                    compressed = CompressedGraph(self.graph)
                    if self._metrics is not None:
                        self._metrics.counter("compression.classes_built").inc(
                            compressed.num_classes
                        )
                    # Resolves self._metrics per call so the partition
                    # follows attach_metrics/detach like every other
                    # cache-hosted counter.
                    compressed.on_lazy_expansion = self._record_lazy_expansion
                    self._compressed = compressed
        return compressed

    # ------------------------------------------------------------------
    @classmethod
    def for_graph(cls, graph) -> "GraphIndexCache":
        """The graph's pinned cache (building it on first use)."""
        return graph.index_cache()

    def label_id(self, label: Label) -> Optional[int]:
        """Interned id for ``label``, or ``None`` if absent from the graph."""
        return self.label_to_id.get(label)

    def signature(self, v: int) -> FrozenSet[Label]:
        """Interned neighborhood-signature frozenset of data vertex ``v``."""
        return self._signatures[v]

    def signature_mask(self, v: int) -> int:
        """Label-id bitmask form of ``v``'s neighborhood signature."""
        return self.signature_masks[v]

    def mask_for(self, labels: Iterable[Label]) -> Optional[int]:
        """Bitmask over this graph's label ids, or ``None`` if any label is
        absent from the graph (no data vertex can then satisfy a superset
        requirement)."""
        mask = 0
        to_id = self.label_to_id
        for lab in labels:
            lid = to_id.get(lab)
            if lid is None:
                return None
            mask |= 1 << lid
        return mask

    def vertices_with_label(self, label: Label) -> Tuple[int, ...]:
        """Sorted vertices carrying ``label`` (empty tuple if unknown)."""
        return self.label_index.get(label, ())

    # ------------------------------------------------------------------
    def candidate_pool(
        self, label: Label, min_degree: int = 0, signature_mask: int = 0
    ) -> Tuple[int, ...]:
        """Sorted data vertices passing the per-graph filters.

        A vertex qualifies when it carries ``label``, has degree at least
        ``min_degree``, and its neighborhood-signature mask contains
        ``signature_mask``. Results are memoized per filter profile with LRU
        eviction, so query nodes sharing a profile — across queries in a
        session — share the scan.
        """
        lid = self.label_to_id.get(label)
        if lid is None:
            return ()
        key = (lid, min_degree, signature_mask)
        memo = self._pool_memo
        cap = self._pool_memo_size
        metrics = self._metrics
        with self._pool_lock:
            if cap != 0:
                pool = memo.get(key)
                if pool is not None:
                    self.candidate_memo_hits += 1
                    if metrics is not None:
                        metrics.counter("cache.pool.hit").inc()
                    memo.move_to_end(key)
                    return pool
            self.candidate_memo_misses += 1
            if metrics is not None:
                metrics.counter("cache.pool.miss").inc()
            pool = self._scan(lid, min_degree, signature_mask)
            if cap != 0:
                memo[key] = pool
                if cap is not None and len(memo) > cap:
                    memo.popitem(last=False)
            return pool

    def _scan(self, lid: int, min_degree: int, signature_mask: int) -> Tuple[int, ...]:
        base = self.label_index[self.label_table[lid]]
        degrees = self.degrees
        masks = self.signature_masks
        if signature_mask:
            return tuple(
                v
                for v in base
                if degrees[v] >= min_degree and masks[v] & signature_mask == signature_mask
            )
        if min_degree:
            return tuple(v for v in base if degrees[v] >= min_degree)
        return base

    # ------------------------------------------------------------------
    # Adjacency views for the join kernels
    # ------------------------------------------------------------------
    def adjacency_slice(self, v: int) -> Tuple[int, ...]:
        """The sorted adjacency row of ``v`` (ascending vertex ids).

        This is the backend's own sorted tuple — CSR rows and set-backend
        rows alike — surfaced here so kernel call sites depend on one
        accessor with a documented ordering guarantee.
        """
        return self.graph.neighbors(v)

    def adjacency_mask(self, v: int) -> int:
        """The neighbor bitset of ``v``: bit ``w`` set iff ``(v, w)`` is an edge.

        Built lazily per vertex and memoized behind a bounded LRU
        (:data:`DEFAULT_ADJACENCY_MEMO_SIZE`): a mask is O(|V|/8) bytes, so
        the full table would be quadratic, while the search only ever masks
        the vertices currently matched near the root of a frame.
        """
        memo = self._adj_masks
        with self._adj_lock:
            mask = memo.get(v)
            if mask is not None:
                memo.move_to_end(v)
                return mask
        mask = 0
        for w in self.graph.neighbors(v):
            mask |= 1 << w
        with self._adj_lock:
            memo[v] = mask
            if len(memo) > self._adj_memo_size:
                memo.popitem(last=False)
        return mask

    # ------------------------------------------------------------------
    # Live mutation: delta-based repair
    # ------------------------------------------------------------------
    @property
    def version(self) -> Tuple[int, int]:
        """The cache version ``(epoch, delta_seq)``.

        ``delta_seq`` advances by one per applied mutation within an epoch;
        a compaction starts a fresh epoch at ``delta_seq == 0``. Session
        memos, plan keys, and shared-memory publications are stamped with
        this pair, so post-mutation queries never replay pre-mutation
        answers.
        """
        return (self.epoch, self.delta_seq)

    def apply_delta(self, ops: Iterable[Tuple]) -> Tuple[int, int]:
        """Repair the cache after the backend applied ``ops``; returns the
        new :attr:`version`.

        ``ops`` are normalized applied mutations, in application order:
        ``("add_vertex", v, label)``, ``("add_edge", u, v)``, or
        ``("remove_edge", u, v)``. Repair is strictly local — an edge op
        dirties only its two endpoints (adding or removing ``(u, v)``
        changes the neighbor multisets of ``u`` and ``v`` and nobody
        else's, so only ``NS(u)``/``NS(v)``, their degrees, their adjacency
        bitsets, and the candidate pools of their labels can change) and a
        vertex op dirties only the new vertex. Candidate-pool memo entries
        and compiled plans are evicted only when their label ids intersect
        the dirty set; every other entry survives at the same epoch.
        """
        backend = self.graph.backend
        # Materialized once: the op stream is also replayed into the twin
        # partition's split repair below, and callers may pass a generator.
        ops = [tuple(op) for op in ops]
        dirty_vertices: set = set()
        dirty_lids: set = set()
        new_labels: set = set()
        grew = False
        for op in ops:
            kind = op[0]
            if kind == "add_vertex":
                v, label = op[1], op[2]
                lid = self.label_to_id[label]
                if v != len(self.label_ids):
                    raise ValueError(
                        f"out-of-order vertex delta: got id {v}, expected {len(self.label_ids)}"
                    )
                self.label_ids.append(lid)
                self.degrees.append(0)
                self.signature_masks.append(0)
                empty = self._mask_signatures.get(0)
                if empty is None:
                    empty = self._mask_signatures[0] = frozenset()
                self._signatures.append(empty)
                bucket = self.label_index.get(label)
                if bucket is None:
                    new_labels.add(label)
                    self.label_index[label] = (v,)
                else:
                    # v is the largest id, so appending keeps the bucket sorted.
                    self.label_index[label] = bucket + (v,)
                dirty_lids.add(lid)
                grew = True
            elif kind in ("add_edge", "remove_edge"):
                dirty_vertices.add(op[1])
                dirty_vertices.add(op[2])
            else:
                raise ValueError(f"unknown mutation op {kind!r}")
            self.delta_seq += 1
            self._mutation_log.append((self.delta_seq, tuple(op)))

        # Local bindings keep the per-dirty-vertex loop tight: this path is
        # the whole point of delta repair and is benchmarked against a full
        # rebuild (benchmarks/bench_mutation.py).
        label_ids = self.label_ids
        neighbors = self.graph.neighbors
        degree = backend.degree
        degrees = self.degrees
        signature_masks = self.signature_masks
        signatures = self._signatures
        mask_signatures = self._mask_signatures
        for v in dirty_vertices:
            degrees[v] = degree(v)
            m = 0
            for w in neighbors(v):
                m |= 1 << label_ids[w]
            signature_masks[v] = m
            s = mask_signatures.get(m)
            if s is None:
                s = mask_signatures[m] = frozenset(
                    self.label_table[lid] for lid in range(len(self.label_table)) if m >> lid & 1
                )
            signatures[v] = s
            dirty_lids.add(label_ids[v])
        if grew:
            # Growth needs the array re-materialized at the new length (a
            # trailing add_vertex must extend it by its zero entry even when
            # no edge op follows).
            self.degree_array = np.asarray(self.degrees, dtype=np.int64)
        elif dirty_vertices:
            # Copy-and-scatter instead of re-converting the whole Python
            # list: O(V) memcpy + O(dirty) writes, and the fresh array keeps
            # previously handed-out references immutable in practice.
            repaired = self.degree_array.copy()
            idx = list(dirty_vertices)
            repaired[idx] = [self.degrees[v] for v in idx]
            self.degree_array = repaired

        if dirty_lids:
            with self._pool_lock:
                stale = [k for k in self._pool_memo if k[0] in dirty_lids]
                for k in stale:
                    del self._pool_memo[k]
        if dirty_vertices:
            with self._adj_lock:
                for v in dirty_vertices:
                    self._adj_masks.pop(v, None)
        self.plan_cache.evict_stale(dirty_lids, new_labels)
        if self._compressed is not None:
            # Split repair: the dirtied endpoints leave their twin classes
            # as fresh singletons; everything else (and all class ids)
            # survives. See CompressedGraph.apply_delta for the argument.
            splits = self._compressed.apply_delta(ops)
            if splits and self._metrics is not None:
                self._metrics.counter("compression.split_repairs").inc(splits)
        return self.version

    def ops_since(self, seq: int) -> Tuple[Tuple[int, Tuple], ...]:
        """The ``(seq, op)`` mutation-log tail with sequence numbers > ``seq``.

        This is the catch-up payload shipped to shared-memory workers whose
        attached view lags the publisher within the same epoch. Sequence
        numbers are contiguous, so the tail for a reader at ``seq`` always
        starts at ``seq + 1`` — a gap means the reader crossed a compaction
        and must treat its segment as stale.
        """
        log = self._mutation_log
        if not log or seq >= log[-1][0]:
            return ()
        # Log seqs are contiguous ending at delta_seq: index arithmetic.
        first = log[0][0]
        start = max(0, seq + 1 - first)
        return tuple(log[start:])

    def on_compaction(self) -> Tuple[int, int]:
        """Start a fresh epoch after the backend compacted its overlay.

        Topology is unchanged by compaction, so pools, signatures, and the
        label index all remain correct and are kept; what changes is the
        *array identity* that shared-memory publications and plan keys are
        pinned to. The epoch is re-stamped, ``delta_seq`` resets to 0, the
        mutation log is cleared (making catch-up impossible — attached
        readers at the old epoch see :class:`~repro.exceptions.
        StaleSegmentError`), and compiled plans are dropped since their keys
        embed the old epoch.
        """
        self.epoch = next(_EPOCHS)
        self.delta_seq = 0
        self._mutation_log.clear()
        self.degree_array = self.graph.backend.degree_array
        self.plan_cache.clear()
        return self.version

    # ------------------------------------------------------------------
    def shared_state(self) -> Dict[str, object]:
        """The publishable derived state (see :mod:`repro.graph.shared`).

        Everything here is a plain pickleable value: the signature-mask
        table (the O(|E|) sweep attachers get to skip), a snapshot of the
        currently warm adjacency bitsets (so workers inherit the publisher's
        hot masks instead of re-deriving them), and the epoch that stamps
        the publication generation.
        """
        with self._adj_lock:
            adj = dict(self._adj_masks)
        return {
            "signature_masks": list(self.signature_masks),
            "adjacency_masks": adj,
            "epoch": self.epoch,
            "delta_seq": self.delta_seq,
        }

    # ------------------------------------------------------------------
    def memo_info(self) -> Dict[str, int]:
        """Hit/miss/size counters for the candidate-pool memo."""
        return {
            "hits": self.candidate_memo_hits,
            "misses": self.candidate_memo_misses,
            "size": len(self._pool_memo),
        }
