"""Filtering indexes: label index, degree/NS filters, candidate sets."""

from repro.indexes.candidates import CandidateIndex, build_candidate_index
from repro.indexes.graph_cache import GraphIndexCache
from repro.indexes.plans import PlanCache, QueryPlan, compile_plan, expand_pool
from repro.indexes.signature import (
    passes_all_filters,
    passes_degree_filter,
    passes_label_filter,
    passes_signature_filter,
    query_signature,
)

__all__ = [
    "CandidateIndex",
    "GraphIndexCache",
    "PlanCache",
    "QueryPlan",
    "build_candidate_index",
    "compile_plan",
    "expand_pool",
    "passes_all_filters",
    "passes_degree_filter",
    "passes_label_filter",
    "passes_signature_filter",
    "query_signature",
]
