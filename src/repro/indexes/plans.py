"""Compiled query plans and the per-graph plan cache.

TurboISO-family search orders are stable per ``(graph, query, filters)``:
the selectivity ranking, the connectivity-aware search order, the per-depth
matched-neighbor lists, and the filter profiles all depend only on inputs
that do not change between repeated queries — yet the seed engines recompute
every one of them per ``query()`` call. :class:`QueryPlan` captures that
work once; :class:`PlanCache` memoizes plans behind a bounded LRU keyed by
``(graph epoch, query canonical key, filter toggles)`` and lives on the
shared :class:`~repro.indexes.graph_cache.GraphIndexCache`, so DSQL
sessions, the :class:`~repro.parallel.executor.BatchExecutor`, and the
service catalog all share compiled plans exactly the way they already share
candidate pools.

The plan also records a **kernel choice per search depth** (see
:mod:`repro.kernels` and ``docs/performance.md``): depths with no matched
backward neighbor scan their pool; depths with one use the sorted-slice
merge kernel; depths with two or more matched neighbors and a pool large
enough to amortize the mask work use the bitset kernel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from heapq import merge as heapq_merge
from typing import Dict, List, Optional, Tuple

from repro.kernels import (
    BITSET,
    BITSET_MIN_POOL,
    CBITSET,
    CBITSET_MAX_RATIO,
    MERGE,
    SCAN,
    bitset_members,
    bitset_of,
    intersect_sorted,
    joinable_kernel,
)

DEFAULT_PLAN_CACHE_SIZE = 128
"""LRU cap on memoized plans per graph (each plan is a few tuples)."""


class QueryPlan:
    """Everything per-(graph, query) the engines would otherwise recompute.

    Attributes
    ----------
    key:
        The cache key this plan was compiled under.
    qlist:
        The selectivity ranking (Section 4's ``qList``), ascending score.
    order:
        The connectivity-aware search order derived from ``qlist``.
    backward:
        Per search depth, the query neighbors of ``order[depth]`` already
        matched when that depth is reached.
    profiles:
        Per query node, the full filter profile ``(label, query_degree,
        signature_mask)`` — ``mask is None`` when the query needs a label
        absent from the graph.
    pools:
        Per query node, the resolved candidate pool (ascending tuple).
    kernels:
        Per search depth, the chosen expansion kernel kind
        (:data:`~repro.kernels.SCAN` / :data:`~repro.kernels.MERGE` /
        :data:`~repro.kernels.BITSET` / :data:`~repro.kernels.CBITSET`).
    class_pools:
        Compression-enabled plans only (else ``None``): per query node, the
        ascending twin-class ids covering ``pools[u]``. Twin classes are
        filter-uniform (members share label, degree, and signature), so a
        class is in the pool iff all its members are — the class pool is a
        lossless re-encoding of the vertex pool at the compression ratio.
    """

    __slots__ = (
        "key",
        "qlist",
        "order",
        "backward",
        "profiles",
        "pools",
        "kernels",
        "class_pools",
        "referenced_lids",
        "absent_labels",
        "_cand_masks",
        "_pool_sets",
        "_class_masks",
        "_cost_profile",
    )

    def __init__(
        self,
        key,
        qlist,
        order,
        backward,
        profiles,
        pools,
        kernels,
        referenced_lids=frozenset(),
        absent_labels=frozenset(),
        class_pools=None,
    ):
        self.key = key
        self.qlist: Tuple[int, ...] = tuple(qlist)
        self.order: Tuple[int, ...] = tuple(order)
        self.backward: Tuple[Tuple[int, ...], ...] = tuple(tuple(b) for b in backward)
        self.profiles = tuple(profiles)
        self.pools: Tuple[Tuple[int, ...], ...] = tuple(pools)
        self.kernels: Tuple[str, ...] = tuple(kernels)
        # Staleness footprint for delta-based eviction: the graph label ids
        # this plan's pools were scanned from, and the query labels that had
        # no graph id at compile time (their pools are pinned empty until
        # such a label first appears).
        self.referenced_lids: frozenset = frozenset(referenced_lids)
        self.absent_labels: frozenset = frozenset(absent_labels)
        self.class_pools: Optional[Tuple[Tuple[int, ...], ...]] = (
            None if class_pools is None else tuple(tuple(cp) for cp in class_pools)
        )
        self._cand_masks: List[Optional[int]] = [None] * len(self.pools)
        self._pool_sets: List[Optional[frozenset]] = [None] * len(self.pools)
        self._class_masks: List[Optional[int]] = [None] * len(self.pools)
        self._cost_profile = None

    def pool(self, u: int) -> Tuple[int, ...]:
        """``candS(u)`` under this plan's filter toggles (ascending)."""
        return self.pools[u]

    def pool_set(self, u: int) -> frozenset:
        """Frozenset view of ``pool(u)``, built lazily and memoized.

        Unlike the per-query set views :class:`CandidateIndex` used to
        materialize, these live on the plan — one build amortized across
        every session and repeated query sharing the cached plan. Benign
        under races (equal values; last store wins).
        """
        view = self._pool_sets[u]
        if view is None:
            view = frozenset(self.pools[u])
            self._pool_sets[u] = view
        return view

    def cand_mask(self, u: int) -> int:
        """Bitset form of ``pool(u)``, built lazily and memoized.

        Benign under races: two threads may both build the same mask; the
        last store wins and both values are equal.
        """
        mask = self._cand_masks[u]
        if mask is None:
            mask = bitset_of(self.pools[u])
            self._cand_masks[u] = mask
        return mask

    def class_mask(self, u: int) -> int:
        """Bitset over twin-class ids of ``class_pools[u]``, lazy + memoized.

        The compressed analogue of :meth:`cand_mask` — ``num_classes`` bits
        instead of ``num_vertices``. Only valid on compression-enabled plans.
        Benign under races (equal values; last store wins).
        """
        mask = self._class_masks[u]
        if mask is None:
            mask = bitset_of(self.class_pools[u])
            self._class_masks[u] = mask
        return mask

    def cost_profile(self, builder):
        """Memoized cost profile for this plan (see :mod:`repro.cost`).

        ``builder(plan)`` computes the profile on first call; the result
        is cached on the plan so repeated estimates of a cached plan are
        free. The profile depends only on immutable plan state, so the
        benign-race pattern of the other lazies applies (equal values;
        last store wins).
        """
        profile = self._cost_profile
        if profile is None:
            profile = builder(self)
            self._cost_profile = profile
        return profile

    def __getstate__(self):
        lazies = ("_cand_masks", "_pool_sets", "_class_masks", "_cost_profile")
        return {s: getattr(self, s) for s in self.__slots__ if s not in lazies}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._cand_masks = [None] * len(self.pools)
        self._pool_sets = [None] * len(self.pools)
        self._class_masks = [None] * len(self.pools)
        self._cost_profile = None


def plan_key(
    cache,
    query,
    use_degree_filter: bool,
    use_signature_filter: bool,
    use_compression: bool = False,
):
    """The memo key: graph epoch + canonical query structure + toggles.

    ``use_compression`` is part of the key because compressed and plain
    plans differ structurally (class pools, ``cbitset`` kernel choices) —
    one graph can serve both kinds of traffic without thrashing the cache.
    """
    return (
        cache.epoch,
        query.canonical_key(),
        use_degree_filter,
        use_signature_filter,
        use_compression,
    )


def compile_plan(
    query,
    cache,
    use_degree_filter: bool = True,
    use_signature_filter: bool = True,
    use_compression: bool = False,
) -> QueryPlan:
    """Compile a :class:`QueryPlan` against a graph's index cache.

    Reproduces the seed's per-query preprocessing exactly — same pools,
    same selectivity scores and tie-breaks, same connectivity-aware order —
    so plan-driven engines are bit-identical to plan-free ones. Raises
    :class:`~repro.exceptions.InvalidQueryError` on disconnected queries
    (via the search-order construction).

    With ``use_compression`` the plan additionally carries the twin-class
    re-encoding of every pool (:attr:`QueryPlan.class_pools`) and upgrades
    :data:`~repro.kernels.BITSET` depths whose pool compresses below
    :data:`~repro.kernels.CBITSET_MAX_RATIO` to the class-level
    :data:`~repro.kernels.CBITSET` kernel. Vertex pools, order, and
    tie-breaks are untouched — the compressed plan emits byte-equal
    candidate lists, which is the equivalence contract
    (``tests/property/test_compression_equivalence.py``).
    """
    # Late import: the isomorphism package imports repro.indexes.candidates,
    # which imports graph_cache, which lazily imports this module.
    from repro.isomorphism.qsearch import connected_search_order

    q = query.size
    profiles = []
    pools: List[Tuple[int, ...]] = []
    for u in range(q):
        label = query.label(u)
        qdeg = query.degree(u)
        mask = cache.mask_for(query.neighborhood_signature(u))
        profiles.append((label, qdeg, mask))
        if use_signature_filter and mask is None:
            pool: Tuple[int, ...] = ()
        else:
            pool = cache.candidate_pool(
                label,
                min_degree=qdeg if use_degree_filter else 0,
                signature_mask=mask if use_signature_filter else 0,
            )
        pools.append(pool)

    # Selectivity ranking: |candS(u)| / degree(u), ties by node id
    # (matches repro.queries.ordering.selectivity_order).
    def score(u: int) -> float:
        deg = query.degree(u)
        return len(pools[u]) / deg if deg else float(len(pools[u]))

    qlist = sorted(range(q), key=lambda u: (score(u), u))
    order = connected_search_order(query, qlist)
    position = {u: i for i, u in enumerate(order)}
    backward = [
        tuple(w for w in query.neighbors(u) if position[w] < position[u]) for u in order
    ]
    class_pools: Optional[List[Tuple[int, ...]]] = None
    if use_compression:
        class_of = cache.compressed().class_of
        class_pools = [
            tuple(sorted({class_of[v] for v in pool})) for pool in pools
        ]
    kernels = []
    for depth, u in enumerate(order):
        if not backward[depth]:
            kernels.append(SCAN)
        elif len(backward[depth]) >= 2 and len(pools[u]) >= BITSET_MIN_POOL:
            # Upgrade to the class-level kernel only where the pool actually
            # compresses — near ratio 1.0 the class fold plus member merge
            # costs more than the plain vertex AND (the A/A overhead gate).
            if (
                class_pools is not None
                and len(class_pools[u]) <= CBITSET_MAX_RATIO * len(pools[u])
            ):
                kernels.append(CBITSET)
            else:
                kernels.append(BITSET)
        else:
            kernels.append(MERGE)
    key = plan_key(
        cache, query, use_degree_filter, use_signature_filter, use_compression
    )
    referenced: set = set()
    absent: set = set()
    for u in range(q):
        label = query.label(u)
        lid = cache.label_id(label)
        if lid is None:
            absent.add(label)
        else:
            referenced.add(lid)
    return QueryPlan(
        key,
        qlist,
        order,
        backward,
        profiles,
        pools,
        kernels,
        referenced_lids=referenced,
        absent_labels=absent,
        class_pools=class_pools,
    )


def expand_pool(plan: QueryPlan, depth: int, assignment, cache):
    """Candidate pool at ``depth`` via the plan's chosen kernel.

    Returns ``(kind, pool)`` where ``pool`` is the ascending candidate list —
    the same vertices in the same order as the seed engines' set-intersection
    path (``sorted(∩ neighbor rows)`` filtered by candidate membership), so
    plan-driven enumeration is bit-identical. ``assignment`` maps query nodes
    to matched data vertices; every backward neighbor at ``depth`` must
    already be assigned.
    """
    u = plan.order[depth]
    kind = plan.kernels[depth]
    if kind == SCAN:
        return kind, list(plan.pool(u))
    backward = plan.backward[depth]
    if kind == BITSET:
        mask = joinable_kernel(cache.adjacency_mask(assignment[w]) for w in backward)
        return kind, bitset_members(mask & plan.cand_mask(u))
    if kind == CBITSET:
        # Class-level join: fold the anchors' class join masks at
        # num_classes bits, AND the class pool, then expand admitted
        # classes to their ascending members. Twin symmetry makes the
        # result byte-equal to the BITSET path — with one correction:
        # a vertex adjacency mask never carries its own bit, but a
        # multi-member clique class's join mask does, so a backward
        # anchor can be re-admitted via its own class and must be
        # filtered back out.
        comp = cache.compressed()
        class_of = comp.class_of
        mask = -1
        anchors = []
        for w in backward:
            a = assignment[w]
            anchors.append(a)
            mask &= comp.class_join_mask(class_of[a])
            if not mask:
                return kind, []
        mask &= plan.class_mask(u)
        cids = bitset_members(mask)
        classes = comp.classes
        if len(cids) == 1:
            members: List[int] = list(classes[cids[0]])
        else:
            members = list(heapq_merge(*(classes[cid] for cid in cids)))
        if any((mask >> class_of[a]) & 1 for a in anchors):
            drop = set(anchors)
            members = [v for v in members if v not in drop]
        return kind, members
    rows = sorted((cache.adjacency_slice(assignment[w]) for w in backward), key=len)
    out = rows[0]
    for row in rows[1:]:
        out = intersect_sorted(out, row)
        if not out:
            return kind, []
    return kind, intersect_sorted(out, plan.pool(u))


class PlanCache:
    """Bounded LRU of compiled plans, shared per graph.

    Mirrors the candidate-pool memo's concurrency pattern: lookups and
    stores are serialized under one lock, compilation happens outside it
    (two racing threads may both compile; the second store wins with an
    equal plan). Plain :attr:`hits`/:attr:`misses` counters always count;
    :meth:`attach_metrics` additionally mirrors them into a session
    metrics registry as ``plan.cache.hits`` / ``plan.cache.misses``.
    """

    __slots__ = ("_memo", "_specs", "_size", "_lock", "hits", "misses", "_metrics")

    def __init__(self, size: Optional[int] = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self._memo: "OrderedDict[tuple, QueryPlan]" = OrderedDict()
        # JSON-safe recompile specs per memoized key, pruned with evictions;
        # dump_specs()/warm_from_specs() are the disk-backed warm-start
        # surface (serve --plan-cache-file).
        self._specs: Dict[tuple, dict] = {}
        self._size = size
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._metrics = None

    def attach_metrics(self, registry) -> None:
        """Mirror hits/misses into ``registry`` from now on (None detaches)."""
        self._metrics = registry

    def get_or_compile(
        self,
        query,
        cache,
        use_degree_filter: bool = True,
        use_signature_filter: bool = True,
        use_compression: bool = False,
    ) -> QueryPlan:
        """The memoized plan for ``(cache, query, toggles)``, compiling on miss."""
        key = plan_key(
            cache, query, use_degree_filter, use_signature_filter, use_compression
        )
        memo = self._memo
        metrics = self._metrics
        with self._lock:
            plan = memo.get(key)
            if plan is not None:
                self.hits += 1
                if metrics is not None:
                    metrics.counter("plan.cache.hits").inc()
                memo.move_to_end(key)
                return plan
            self.misses += 1
            if metrics is not None:
                metrics.counter("plan.cache.misses").inc()
        plan = compile_plan(
            query,
            cache,
            use_degree_filter=use_degree_filter,
            use_signature_filter=use_signature_filter,
            use_compression=use_compression,
        )
        labels, edges = query.canonical_key()
        spec = {
            "labels": list(labels),
            "edges": [list(e) for e in edges],
            "use_degree_filter": use_degree_filter,
            "use_signature_filter": use_signature_filter,
            "use_compression": use_compression,
        }
        with self._lock:
            memo[key] = plan
            self._specs[key] = spec
            if self._size is not None and len(memo) > self._size:
                evicted, _ = memo.popitem(last=False)
                self._specs.pop(evicted, None)
        return plan

    def clear(self) -> None:
        """Drop every memoized plan (used by the cold-path benchmarks)."""
        with self._lock:
            self._memo.clear()
            self._specs.clear()

    def evict_stale(self, dirty_lids, new_labels=()) -> int:
        """Delta eviction: drop only plans whose footprint intersects a delta.

        A plan is stale iff its :attr:`QueryPlan.referenced_lids` intersect
        ``dirty_lids`` (a pool it resolved may have gained/lost vertices) or
        one of its :attr:`QueryPlan.absent_labels` appears in ``new_labels``
        (a pool pinned empty at compile time is empty no longer). Every
        other plan survives at the same epoch — this is what makes
        invalidation delta-based instead of epoch-nuke. Returns the number
        of evicted plans.
        """
        dirty = frozenset(dirty_lids)
        added = frozenset(new_labels)
        if not dirty and not added:
            return 0
        with self._lock:
            stale = [
                key
                for key, plan in self._memo.items()
                if (plan.referenced_lids & dirty) or (plan.absent_labels & added)
            ]
            for key in stale:
                del self._memo[key]
                self._specs.pop(key, None)
        return len(stale)

    # ------------------------------------------------------------------
    # Disk-backed warm start (serve --plan-cache-file)
    # ------------------------------------------------------------------
    def dump_specs(self) -> List[dict]:
        """JSON-safe recompile specs for every currently memoized plan.

        Each spec carries the canonical query structure (labels + edges)
        and the compile toggles — everything needed to rebuild the plan
        against a fresh cache at startup. Specs follow LRU order (coldest
        first), so a truncated warm pass still recompiles the hottest
        plans last-in. Labels must round-trip through JSON; service graphs
        use string labels, which do.
        """
        with self._lock:
            return [dict(self._specs[k]) for k in self._memo if k in self._specs]

    def warm_from_specs(self, specs, cache) -> int:
        """Recompile plans from :meth:`dump_specs` output against ``cache``.

        Returns the number of plans warmed. Specs that no longer compile
        (malformed after hand-editing, disconnected queries, labels gone
        from the graph) are skipped rather than failing startup — a warm
        file is an optimization, never a correctness input.
        """
        from repro.graph.query_graph import QueryGraph

        warmed = 0
        for spec in specs:
            try:
                query = QueryGraph(
                    list(spec["labels"]),
                    [tuple(e) for e in spec["edges"]],
                )
                self.get_or_compile(
                    query,
                    cache,
                    use_degree_filter=bool(spec.get("use_degree_filter", True)),
                    use_signature_filter=bool(spec.get("use_signature_filter", True)),
                    use_compression=bool(spec.get("use_compression", False)),
                )
                warmed += 1
            except Exception:
                continue
        return warmed

    def info(self) -> Dict[str, int]:
        """Hit/miss/size counters for the plan memo."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._memo)}

    # Locks cannot cross process boundaries; an attached registry is
    # session state. Same rules as GraphIndexCache.
    def __getstate__(self) -> dict:
        skip = ("_lock", "_metrics")
        return {s: getattr(self, s) for s in self.__slots__ if s not in skip}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._lock = threading.Lock()
        self._metrics = None
