"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: referencing a vertex id outside ``[0, n)``, adding a self-loop
    to a simple graph, or constructing a graph whose label table does not
    cover every vertex.
    """


class QueryError(ReproError):
    """Raised when a query graph is unusable for subgraph search.

    A query must be non-empty and connected; DSQL's level-wise search and the
    ``qfList`` father-node construction both rely on connectivity.
    """


class InvalidQueryError(QueryError):
    """Raised when a query graph is disconnected (or otherwise unsearchable).

    Subclasses :class:`QueryError` so every existing handler — including the
    service layer's 400 ``invalid_query`` mapping — already catches it; the
    typed form additionally carries the offending :attr:`component` so
    callers can report *which* nodes are unreachable from the search root.
    """

    def __init__(self, message: str, component=()):
        super().__init__(message)
        self.component = tuple(component)


class ConfigError(ReproError):
    """Raised for invalid algorithm configuration values.

    Examples: ``k < 1``, a negative swap parameter ``alpha``, or enabling the
    bad-vertex strategy without the conflict-table strategy it builds on.
    """


class DatasetError(ReproError):
    """Raised when a dataset profile or generator receives bad parameters."""


class BudgetExceeded(ReproError):
    """Raised internally when a search exceeds its node-visit budget.

    The public API converts this into a truncated-but-valid result; it only
    escapes to callers that explicitly request ``raise_on_budget=True``.
    """


class DeadlineExceeded(BudgetExceeded):
    """Raised internally when a search exceeds its wall-clock deadline.

    Subclasses :class:`BudgetExceeded` so every truncation path that already
    handles a tripped node budget (both DSQL phases, the SQ engines) handles
    the time budget identically; the two cases stay distinguishable through
    ``stats.deadline_exhausted`` vs ``stats.budget_exhausted``.
    """


class SharedMemoryError(ReproError):
    """Raised when publishing or attaching shared graph segments fails.

    Covers the whole segment lifecycle: a publish that cannot allocate its
    blocks, an attach naming segments that were never published (or already
    unlinked), and an attach after the local handle was closed.
    """


class StaleSegmentError(SharedMemoryError):
    """Raised when a descriptor's epoch does not match the published segments.

    Segment names are reused only through re-publication, which bumps the
    epoch stamped inside the meta block; a descriptor from the previous
    generation therefore fails loudly here instead of silently attaching a
    different graph.
    """
