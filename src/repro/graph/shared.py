"""Shared-memory publication of graph state for zero-copy multiprocess use.

The process strategy of :class:`~repro.parallel.executor.BatchExecutor` and
the pre-forked service front (:mod:`repro.service.multiworker`) both need
many worker processes to search the *same* graph. Re-pickling the graph per
batch is what made the old process strategy 3.3x slower than serial; this
module replaces that with a publish/attach round-trip over
:mod:`multiprocessing.shared_memory`:

* :func:`publish_graph` copies the CSR backend's numpy arrays
  (``indptr`` / ``indices`` / ``label_ids`` / ``degree_array``) into named
  shared-memory segments — once, by the publisher — and serializes the
  per-graph :class:`~repro.indexes.graph_cache.GraphIndexCache` derivations
  (signature-mask table, warm adjacency bitsets, epoch) plus the label
  table into a meta segment. It returns a :class:`PublishedGraph` owning
  the segments and a picklable :class:`SharedGraphDescriptor` that travels
  to workers through pool initargs.
* :func:`attach_graph` maps those segments back into a worker and rebuilds
  a :class:`~repro.graph.labeled_graph.LabeledGraph` whose CSR arrays are
  zero-copy views of the shared buffers, with a pre-seeded index cache —
  no edge renormalization, no signature sweep, no candidate scan needed to
  start searching. Only the Python-level iteration views (neighbor tuples
  and membership sets) are rebuilt, one O(|V| + |E|) pass per process.

Lifecycle is explicit and the failure modes are typed:

``create`` (:func:`publish_graph`) → ``attach`` (:func:`attach_graph`, any
number of processes) → ``close`` (each attacher / the publisher drops its
mapping) → ``unlink`` (the publisher frees the segments).

Attaching segments that were never published — or published and already
unlinked — raises :class:`~repro.exceptions.SharedMemoryError`; attaching
with a descriptor whose epoch does not match the meta block (a descriptor
from a previous publication generation) raises
:class:`~repro.exceptions.StaleSegmentError`. Closing an attachment whose
arrays are still referenced raises :class:`~repro.exceptions.
SharedMemoryError` instead of silently leaking the mapping.
"""

from __future__ import annotations

import gc
import logging
import os
import pickle
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import SharedMemoryError, StaleSegmentError
from repro.graph.csr import CSRBackend
from repro.graph.labeled_graph import LabeledGraph

SHARED_FORMAT_VERSION = 2
"""Bumped whenever the segment layout changes; attach refuses a mismatch.

Version 2 added ``delta_seq`` to the meta block and descriptor: a
publication is stamped with the full cache version ``(epoch, delta_seq)``,
and attached readers catch up to later deltas of the *same* epoch by
replaying the publisher's mutation-log tail (see
:meth:`~repro.indexes.graph_cache.GraphIndexCache.ops_since`). Only a
compaction — which starts a fresh epoch — makes a publication
unrecoverably stale."""

ARRAY_FIELDS: Tuple[str, ...] = ("indptr", "indices", "label_ids", "degree_array")
"""CSR backend arrays published as raw shared-memory segments, in order."""

logger = logging.getLogger("repro.graph.shared")


_LOCAL_TOKENS: set = set()
"""Tokens published by this process (inherited by children forked later).

Python (through 3.12) registers *every* ``SharedMemory`` handle with a
resource tracker, attachments included. Processes sharing the publisher's
tracker (the publisher itself, and children forked after the publish) must
NOT undo that registration — the tracker keeps one entry per name, so an
attach-side unregister would cancel the create-side one and leak the
segment on crash. A process running its *own* tracker — an independently
launched attacher, or a worker whose start method did not hand it the
publisher's tracker — must undo the registration, or its tracker would
unlink the publisher's segments the moment the process exits. Membership
in this set is the "published here" test: publishers add their token here,
fork children inherit the set, other attachers start empty.
"""


def _unregister_attachment(shm: shared_memory.SharedMemory, token: str) -> None:
    """Undo the attach-side tracker registration in foreign-tracker processes.

    A failure here is not silent: it means this process's resource tracker
    still owns the attachment and will unlink the publisher's segments at
    exit (the regression
    :class:`tests.graph.test_shared.TestForeignTrackerSurvival` guards).
    """
    if token in _LOCAL_TOKENS:
        return
    if os.name != "posix":
        # SharedMemory registers with the resource tracker only on POSIX;
        # elsewhere there is nothing to undo.
        return
    # register() recorded the platform-internal spelling of the name, which
    # on POSIX carries a leading slash that the public ``name`` property
    # strips — rebuild it rather than reading the private ``_name``.
    registered = shm.name if shm.name.startswith("/") else "/" + shm.name
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(registered, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        logger.warning(
            "failed to unregister shared-memory attachment %s from the "
            "resource tracker; this process's tracker may unlink the "
            "segment when it exits",
            shm.name,
            exc_info=True,
        )


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """Picklable recipe for attaching one published graph.

    ``arrays`` maps each :data:`ARRAY_FIELDS` entry to its segment name,
    shape, and dtype string; ``epoch`` is the publication generation the
    meta block must still carry for an attach to succeed.
    """

    token: str
    epoch: int
    graph_name: str
    arrays: Tuple[Tuple[str, str, Tuple[int, ...], str], ...]
    meta_segment: str
    meta_size: int
    delta_seq: int = 0


class PublishedGraph:
    """Owner of one graph's shared segments (the create side).

    Usable as a context manager; leaving the ``with`` block (or calling
    :meth:`unlink`) frees the segments. :meth:`close` alone only drops this
    process's mapping — live attachments in other processes keep working
    until :meth:`unlink`, per POSIX shared-memory semantics.
    """

    def __init__(
        self,
        descriptor: SharedGraphDescriptor,
        segments: List[shared_memory.SharedMemory],
    ) -> None:
        self.descriptor = descriptor
        self._segments = segments
        self._closed = False
        self._unlinked = False

    @property
    def nbytes(self) -> int:
        """Total bytes of shared memory held by the published segments."""
        return sum(s.size for s in self._segments)

    def close(self) -> None:
        """Drop this process's mapping (idempotent; attachers unaffected)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - publisher holds no views
                pass

    def unlink(self) -> None:
        """Free the segments (idempotent). New attaches fail from here on;
        processes already attached keep their mappings until they close."""
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "PublishedGraph":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
            self.unlink()
        except Exception:
            pass


class AttachedGraph:
    """A worker-side view of a published graph (the attach side).

    ``graph`` is a fully usable :class:`~repro.graph.labeled_graph.
    LabeledGraph` whose CSR arrays alias the shared segments and whose
    index cache is pre-seeded from the publisher's. Call :meth:`close`
    after dropping every reference to ``graph`` (and arrays derived from
    it); closing while views are live raises :class:`SharedMemoryError`.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        descriptor: SharedGraphDescriptor,
        segments: List[shared_memory.SharedMemory],
    ) -> None:
        self.graph = graph
        self.descriptor = descriptor
        self._segments = segments
        self._closed = False

    def close(self) -> None:
        """Drop the mapping (idempotent). The attached ``graph`` must no
        longer be referenced; its arrays point into the mapped buffers."""
        if self._closed:
            return
        self.graph = None
        remaining = list(self._segments)
        for attempt in range(2):
            failed = []
            for segment in remaining:
                try:
                    segment.close()
                except BufferError:
                    failed.append(segment)
            if not failed:
                self._closed = True
                return
            remaining = failed
            if attempt == 0:
                # The attached graph sits in a reference cycle (graph <->
                # index cache), so dropping self.graph alone does not free
                # the array views; collect the cycle, then retry the close.
                gc.collect()
        raise SharedMemoryError(
            "cannot close shared attachment: numpy views over segments "
            f"{sorted(segment.name for segment in remaining)} are still "
            "alive; drop the attached graph first"
        )

    def __enter__(self) -> "AttachedGraph":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _segment_name(token: str, field: str) -> str:
    return f"{token}-{field}"


def publish_graph(graph: LabeledGraph) -> PublishedGraph:
    """Publish ``graph`` (CSR arrays + warm index derivations) to shared memory.

    The graph's index cache is built first if it is still cold, so every
    attacher inherits a warm one. Graphs on the ``set`` backend are
    published through an equivalent CSR copy (the two backends are
    equivalence-tested; results are identical either way).
    """
    backend = graph.backend
    if not isinstance(backend, CSRBackend):
        graph = graph.with_backend("csr")
        backend = graph.backend
    if backend.num_vertices != backend.indptr.shape[0] - 1 or backend.touched_vertices:
        # A dirty overlay means the numpy base no longer equals the live
        # topology; publication snapshots the arrays, so merge first.
        # (This starts a fresh cache epoch — a publication is always a
        # compaction point.)
        graph.compact()
    cache = graph.index_cache()

    token = f"repro-{os.getpid()}-{uuid.uuid4().hex[:12]}"
    segments: List[shared_memory.SharedMemory] = []
    array_specs: List[Tuple[str, str, Tuple[int, ...], str]] = []
    try:
        for field in ARRAY_FIELDS:
            array = np.ascontiguousarray(getattr(backend, field))
            name = _segment_name(token, field)
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, array.nbytes)
            )
            segments.append(segment)
            if array.size:
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[:] = array
                del view
            array_specs.append((field, name, tuple(array.shape), array.dtype.str))

        meta = {
            "format": SHARED_FORMAT_VERSION,
            "graph_name": graph.name,
            "num_edges": backend.num_edges,
            "label_table": list(backend.label_table),
            **cache.shared_state(),
        }
        blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        meta_name = _segment_name(token, "meta")
        meta_segment = shared_memory.SharedMemory(
            name=meta_name, create=True, size=len(blob)
        )
        segments.append(meta_segment)
        meta_segment.buf[: len(blob)] = blob
    except Exception as exc:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - best-effort rollback
                pass
        if isinstance(exc, SharedMemoryError):
            raise
        raise SharedMemoryError(f"publishing graph {graph.name!r} failed: {exc}") from exc

    _LOCAL_TOKENS.add(token)
    descriptor = SharedGraphDescriptor(
        token=token,
        epoch=cache.epoch,
        graph_name=graph.name,
        arrays=tuple(array_specs),
        meta_segment=meta_name,
        meta_size=len(blob),
        delta_seq=cache.delta_seq,
    )
    return PublishedGraph(descriptor, segments)


def attach_graph(descriptor: SharedGraphDescriptor) -> AttachedGraph:
    """Attach a published graph in this process (zero-copy for the arrays).

    Raises :class:`SharedMemoryError` when a segment is missing (never
    published, or already unlinked) and :class:`StaleSegmentError` when the
    descriptor's epoch does not match the published meta block.
    """
    segments: List[shared_memory.SharedMemory] = []

    def fail(message: str, exc_type=SharedMemoryError) -> Exception:
        for segment in segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - best-effort rollback
                pass
        return exc_type(message)

    def open_segment(name: str) -> shared_memory.SharedMemory:
        try:
            segment = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            raise fail(
                f"shared segment {name!r} does not exist "
                "(never published, or already unlinked)"
            ) from None
        _unregister_attachment(segment, descriptor.token)
        segments.append(segment)
        return segment

    meta_segment = open_segment(descriptor.meta_segment)
    try:
        meta = pickle.loads(bytes(meta_segment.buf[: descriptor.meta_size]))
    except Exception as exc:
        raise fail(f"shared meta block {descriptor.meta_segment!r} is corrupt: {exc}") from exc
    if meta.get("format") != SHARED_FORMAT_VERSION:
        raise fail(
            f"shared segment format {meta.get('format')!r} does not match "
            f"this library's version {SHARED_FORMAT_VERSION}"
        )
    if meta.get("epoch") != descriptor.epoch:
        raise fail(
            f"descriptor epoch {descriptor.epoch} does not match published "
            f"epoch {meta.get('epoch')}: the graph was re-published; "
            "re-fetch the descriptor",
            StaleSegmentError,
        )
    if meta.get("delta_seq", 0) != descriptor.delta_seq:
        raise fail(
            f"descriptor delta_seq {descriptor.delta_seq} does not match "
            f"published delta_seq {meta.get('delta_seq')}: the publication "
            "was refreshed mid-epoch; re-fetch the descriptor",
            StaleSegmentError,
        )

    arrays: Dict[str, np.ndarray] = {}
    for field, name, shape, dtype in descriptor.arrays:
        segment = open_segment(name)
        dt = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= dim
        # np.frombuffer keeps a buffer export on the segment's memoryview,
        # so SharedMemory.close() fails loudly (BufferError) while a view
        # is alive. np.ndarray(buffer=...) would NOT register the export —
        # close() would silently unmap under the array and later reads
        # would fault.
        array = np.frombuffer(segment.buf, dtype=dt, count=count).reshape(shape)
        array.flags.writeable = False
        arrays[field] = array

    backend = CSRBackend.from_arrays(
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        label_ids=arrays["label_ids"],
        label_table=meta["label_table"],
        degree_array=arrays["degree_array"],
    )
    graph = LabeledGraph.from_backend(backend, name=meta["graph_name"])
    # Pre-seed the pinned index cache from the published derivations: the
    # signature sweep and the publisher's warm adjacency bitsets are
    # inherited, and the shared epoch keeps plan-cache keys consistent
    # across the publishing and attaching processes.
    from repro.indexes.graph_cache import GraphIndexCache

    graph._cache = GraphIndexCache(
        graph,
        signature_masks=meta["signature_masks"],
        adjacency_masks=meta["adjacency_masks"],
        epoch=meta["epoch"],
        delta_seq=meta.get("delta_seq", 0),
    )
    return AttachedGraph(graph, descriptor, segments)


def republish_graph(published: PublishedGraph, graph: LabeledGraph) -> PublishedGraph:
    """Replace a publication: unlink the old segments, publish fresh ones.

    The new publication gets the graph's current cache epoch, so descriptors
    from the old generation fail with :class:`StaleSegmentError` (when the
    meta block is re-read) or :class:`SharedMemoryError` (segment names are
    fresh, so stale names no longer resolve).
    """
    published.close()
    published.unlink()
    return publish_graph(graph)


__all__ = [
    "ARRAY_FIELDS",
    "SHARED_FORMAT_VERSION",
    "AttachedGraph",
    "PublishedGraph",
    "SharedGraphDescriptor",
    "attach_graph",
    "publish_graph",
    "republish_graph",
]
