"""Undirected, vertex-labeled data graphs.

This module provides :class:`LabeledGraph`, the data-graph substrate of the
paper (Section 2): ``G = (V, E, Sigma, L)`` with

* ``V`` — vertices identified by dense integer ids ``0 .. n-1``;
* ``E`` — undirected simple edges (no self-loops, no multi-edges);
* ``Sigma`` — a set of hashable vertex labels;
* ``L`` — a total labeling function ``V -> Sigma``.

The representation is adjacency sets, which gives O(1) expected
``has_edge`` — the hot operation inside the backtracking join test — and
O(deg) neighbor iteration. Degrees and per-vertex neighborhood signatures
(the set of labels adjacent to a vertex, Section 4.2) are computed lazily and
cached because DSQL's candidate filters consult them for every candidate.

Instances are logically immutable after construction: mutate via
:class:`repro.graph.builder.GraphBuilder` and build a fresh graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.exceptions import GraphError

Label = Hashable
Edge = Tuple[int, int]


class LabeledGraph:
    """An undirected, vertex-labeled simple graph.

    Parameters
    ----------
    labels:
        Sequence assigning a label to every vertex; ``labels[v]`` is ``L(v)``.
        The vertex count is ``len(labels)``.
    edges:
        Iterable of ``(u, v)`` pairs. Order within a pair and duplicate pairs
        are normalized away; self-loops are rejected.

    Examples
    --------
    >>> g = LabeledGraph(["a", "b", "b"], [(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.label(0)
    'a'
    """

    __slots__ = (
        "_labels",
        "_adjacency",
        "_num_edges",
        "_label_index",
        "_signatures",
        "name",
    )

    def __init__(
        self,
        labels: Sequence[Label],
        edges: Iterable[Edge] = (),
        name: str = "",
    ) -> None:
        self._labels: List[Label] = list(labels)
        n = len(self._labels)
        self._adjacency: List[Set[int]] = [set() for _ in range(n)]
        self._num_edges = 0
        self.name = name
        for u, v in edges:
            self._add_edge_unchecked(u, v)
        self._label_index: Dict[Label, Tuple[int, ...]] | None = None
        self._signatures: List[FrozenSet[Label]] | None = None

    def _add_edge_unchecked(self, u: int, v: int) -> None:
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references a vertex outside [0, {n})")
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) not allowed in a simple graph")
        if v not in self._adjacency[u]:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._num_edges += 1

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids, as a ``range`` (cheap, re-iterable)."""
        return range(len(self._labels))

    def edges(self) -> Iterator[Edge]:
        """Yield every undirected edge exactly once, as ``(u, v)`` with u < v."""
        for u, nbrs in enumerate(self._adjacency):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def label(self, v: int) -> Label:
        """The label ``L(v)`` of vertex ``v``."""
        return self._labels[v]

    @property
    def labels(self) -> Sequence[Label]:
        """The full label table (read-only view by convention)."""
        return self._labels

    def neighbors(self, v: int) -> Set[int]:
        """The adjacency set of ``v``. Treat the returned set as read-only."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """The degree of ``v``."""
        return len(self._adjacency[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists (O(1) expected)."""
        return v in self._adjacency[u]

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and 0 <= v < len(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{tag} |V|={self.num_vertices} |E|={self.num_edges}"
            f" |Sigma|={len(self.label_set())}>"
        )

    # ------------------------------------------------------------------
    # Label machinery
    # ------------------------------------------------------------------
    def label_set(self) -> Set[Label]:
        """The set of distinct labels ``Sigma`` actually used."""
        return set(self._labels)

    def label_index(self) -> Dict[Label, Tuple[int, ...]]:
        """Inverted index ``label -> sorted tuple of vertices with that label``.

        Built once on first use and cached; this is the pre-computed index the
        paper requires "for looking up the set of vertices with a given
        label" (Section 4).
        """
        if self._label_index is None:
            buckets: Dict[Label, List[int]] = {}
            for v, lab in enumerate(self._labels):
                buckets.setdefault(lab, []).append(v)
            self._label_index = {lab: tuple(vs) for lab, vs in buckets.items()}
        return self._label_index

    def vertices_with_label(self, label: Label) -> Tuple[int, ...]:
        """All vertices carrying ``label`` (empty tuple if unused)."""
        return self.label_index().get(label, ())

    # ------------------------------------------------------------------
    # Neighborhood signatures (Section 4.2)
    # ------------------------------------------------------------------
    def neighborhood_signature(self, v: int) -> FrozenSet[Label]:
        """``NS(v)``: the set of labels appearing among the neighbors of ``v``.

        Used by the neighborhood-signature filter: a data vertex ``v`` can
        match query node ``u`` only if ``NS_Q(u) <= NS(v)``. Signatures for
        the whole graph are materialized on first call (O(|V| + |E|) storage,
        matching the paper's stated index budget).
        """
        if self._signatures is None:
            self._signatures = [
                frozenset(self._labels[w] for w in nbrs) for nbrs in self._adjacency
            ]
        return self._signatures[v]

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Average vertex degree ``2|E| / |V|`` (0.0 for the empty graph)."""
        if not self._labels:
            return 0.0
        return 2.0 * self._num_edges / len(self._labels)

    def degree_sequence(self) -> List[int]:
        """Degrees of all vertices, indexed by vertex id."""
        return [len(nbrs) for nbrs in self._adjacency]

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        n = len(self._labels)
        if n == 0:
            return True
        seen = bytearray(n)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            u = stack.pop()
            for w in self._adjacency[u]:
                if not seen[w]:
                    seen[w] = 1
                    count += 1
                    stack.append(w)
        return count == n

    def connected_components(self) -> List[List[int]]:
        """All connected components as sorted vertex lists."""
        n = len(self._labels)
        seen = bytearray(n)
        components: List[List[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            comp = [start]
            seen[start] = 1
            stack = [start]
            while stack:
                u = stack.pop()
                for w in self._adjacency[u]:
                    if not seen[w]:
                        seen[w] = 1
                        comp.append(w)
                        stack.append(w)
            comp.sort()
            components.append(comp)
        return components

    def induced_subgraph(self, vertices: Iterable[int]) -> "LabeledGraph":
        """The subgraph induced by ``vertices``, with ids re-densified.

        The mapping from old to new ids follows the sorted order of the given
        vertex set; useful for extracting query graphs from a data graph.
        """
        vs = sorted(set(vertices))
        remap = {old: new for new, old in enumerate(vs)}
        labels = [self._labels[v] for v in vs]
        edges = [
            (remap[u], remap[v])
            for u in vs
            for v in self._adjacency[u]
            if u < v and v in remap
        ]
        return LabeledGraph(labels, edges)
