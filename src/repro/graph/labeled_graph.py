"""Undirected, vertex-labeled data graphs.

This module provides :class:`LabeledGraph`, the data-graph substrate of the
paper (Section 2): ``G = (V, E, Sigma, L)`` with

* ``V`` — vertices identified by dense integer ids ``0 .. n-1``;
* ``E`` — undirected simple edges (no self-loops, no multi-edges);
* ``Sigma`` — a set of hashable vertex labels;
* ``L`` — a total labeling function ``V -> Sigma``.

Storage is delegated to a pluggable backend (see :mod:`repro.graph.csr`):
the default is an immutable CSR layout (``indptr``/``indices`` numpy arrays
with sorted neighbor rows, flat label-id array, precomputed degrees), with
the original adjacency-set representation retained as the ``"set"`` backend
for equivalence testing. Either way ``has_edge`` is an O(1) expected probe —
the hot operation inside the backtracking join test — and ``neighbors(v)``
returns the *sorted* neighbor tuple, so every iteration order in the library
is deterministic by construction.

Per-graph derived state (label inverted index, neighborhood signatures,
candidate pools) lives in a :class:`~repro.indexes.graph_cache.
GraphIndexCache` pinned to the graph via :meth:`LabeledGraph.index_cache`
and shared by all queries against it.

Graphs support **live mutation**: :meth:`LabeledGraph.add_vertex`,
:meth:`~LabeledGraph.add_edge`, :meth:`~LabeledGraph.remove_edge`, and the
batched :meth:`~LabeledGraph.mutate` apply deltas to the backend and repair
the pinned index cache incrementally (only state derived from the touched
1-hop neighborhoods is recomputed; see ``docs/mutation.md`` for the full
contract). Bulk construction still goes through
:class:`repro.graph.builder.GraphBuilder`; the CSR backend's numpy base is
re-merged by :meth:`~LabeledGraph.compact` once the overlay crosses
:data:`DEFAULT_COMPACTION_THRESHOLD`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import GraphError
from repro.graph.csr import GraphBackend, make_backend

Label = Hashable
Edge = Tuple[int, int]

DEFAULT_COMPACTION_THRESHOLD = 4096
"""Edge deltas tolerated in the CSR overlay before :meth:`LabeledGraph.mutate`
auto-compacts. Compaction restores the pure sorted-array invariants (an
O(|V| + |E|) merge) and starts a fresh cache epoch, so it is deliberately
infrequent; explicit :meth:`LabeledGraph.compact` is always available."""


class MutationSummary(NamedTuple):
    """Outcome of a batched :meth:`LabeledGraph.mutate` call."""

    applied: int
    """Mutations that changed the graph (duplicate adds/absent removes skip)."""

    compacted: bool
    """Whether the batch tripped the compaction threshold."""

    version: Optional[Tuple[int, int]]
    """The index cache's ``(epoch, delta_seq)`` after the batch (``None``
    when no cache has been built yet)."""


class LabeledGraph:
    """An undirected, vertex-labeled simple graph.

    Parameters
    ----------
    labels:
        Sequence assigning a label to every vertex; ``labels[v]`` is ``L(v)``.
        The vertex count is ``len(labels)``.
    edges:
        Iterable of ``(u, v)`` pairs. Order within a pair and duplicate pairs
        are normalized away; self-loops are rejected.
    name:
        Optional display name, propagated through derived graphs.
    backend:
        Storage backend name (``"csr"`` or ``"set"``); ``None`` uses the
        process default (see :func:`repro.graph.csr.default_backend`).

    Examples
    --------
    >>> g = LabeledGraph(["a", "b", "b"], [(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.neighbors(1)
    (0, 2)
    >>> g.label(0)
    'a'
    """

    __slots__ = (
        "_backend",
        "_cache",
        "name",
        "has_edge",
        "neighbors",
        "degree",
        "label",
    )

    def __init__(
        self,
        labels: Sequence[Label],
        edges: Iterable[Edge] = (),
        name: str = "",
        backend: Optional[str] = None,
    ) -> None:
        b = make_backend(backend, labels, edges)
        self._backend: GraphBackend = b
        self._cache = None
        self.name = name
        # Hot accessors are bound straight to the backend — one attribute
        # lookup instead of a delegating method call on the join path.
        self.has_edge = b.has_edge
        self.neighbors = b.neighbors
        self.degree = b.degree
        self.label = b.label

    # ------------------------------------------------------------------
    # Backend & cache access
    # ------------------------------------------------------------------
    @classmethod
    def from_backend(cls, backend: GraphBackend, name: str = "") -> "LabeledGraph":
        """Wrap an already-constructed backend without renormalizing edges.

        Used by the shared-memory attach path (:mod:`repro.graph.shared`),
        where the backend was rebuilt around published CSR arrays and a
        second normalization pass would defeat the zero-copy point. The
        backend is adopted as-is; callers are responsible for its invariants.
        """
        graph = cls.__new__(cls)
        graph._backend = backend
        graph._cache = None
        graph.name = name
        graph.has_edge = backend.has_edge
        graph.neighbors = backend.neighbors
        graph.degree = backend.degree
        graph.label = backend.label
        return graph

    @property
    def backend(self) -> GraphBackend:
        """The storage backend instance owning this graph's topology."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the active storage backend (``"csr"`` or ``"set"``)."""
        return self._backend.name

    def with_backend(self, backend: str) -> "LabeledGraph":
        """A copy of this graph stored under a different backend."""
        return LabeledGraph(
            self._backend.labels, self._backend.edges(), name=self.name, backend=backend
        )

    def index_cache(self):
        """The per-graph :class:`~repro.indexes.graph_cache.GraphIndexCache`.

        Built on first use and pinned, so every query, session, and baseline
        touching this graph shares one label index, signature table and
        candidate-pool memo.
        """
        if self._cache is None:
            from repro.indexes.graph_cache import GraphIndexCache

            self._cache = GraphIndexCache(self)
        return self._cache

    # ------------------------------------------------------------------
    # Live mutation
    # ------------------------------------------------------------------
    @property
    def version(self) -> Optional[Tuple[int, int]]:
        """The pinned cache's ``(epoch, delta_seq)``, or ``None`` pre-build.

        This is the logical version stamped onto session memo entries, plan
        keys, and shared-memory publications; delta mutations bump
        ``delta_seq`` in place, compaction starts a fresh epoch.
        """
        if self._cache is None:
            return None
        return self._cache.version

    def add_vertex(self, label: Label) -> int:
        """Append an isolated vertex with ``label``; returns its new id.

        The pinned index cache (if built) is repaired in place: the label
        index gains the vertex, its (empty) signature is registered, and
        pools/plans over its label are evicted.
        """
        v = self._backend.add_vertex(label)
        if self._cache is not None:
            self._cache.apply_delta((("add_vertex", v, label),))
        return v

    def add_edge(self, u: int, v: int) -> bool:
        """Add undirected edge ``(u, v)``; returns ``False`` if present.

        Self-loops and out-of-range endpoints raise
        :class:`~repro.exceptions.GraphError`. On success the pinned index
        cache is delta-repaired for the two endpoints only.
        """
        applied = self._backend.add_edge(u, v)
        if applied and self._cache is not None:
            self._cache.apply_delta((("add_edge", u, v),))
        return applied

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove undirected edge ``(u, v)``; returns ``False`` if absent."""
        applied = self._backend.remove_edge(u, v)
        if applied and self._cache is not None:
            self._cache.apply_delta((("remove_edge", u, v),))
        return applied

    def mutate(
        self,
        ops: Iterable[Tuple],
        compaction_threshold: Optional[int] = DEFAULT_COMPACTION_THRESHOLD,
    ) -> MutationSummary:
        """Apply a batch of mutation ops with one cache-repair pass.

        ``ops`` are tuples: ``("add_vertex", label)``, ``("add_edge", u, v)``
        or ``("remove_edge", u, v)``. The whole batch is validated before
        any op is applied, so a :class:`~repro.exceptions.GraphError`
        (malformed op, out-of-range endpoint, self-loop) leaves the graph
        untouched. Valid ops apply in order; no-ops (duplicate adds, absent
        removes) are skipped without consuming a delta. After the batch, if
        the backend overlay holds at least ``compaction_threshold`` edge
        deltas (``None`` disables), the graph :meth:`compact`\\ s — the one
        point where shared-memory descriptors and compiled plans of the old
        epoch become stale.
        """
        backend = self._backend
        batch = [tuple(op) for op in ops]
        # Validation pass: nothing below may raise once ops start applying,
        # or the pinned cache would diverge from a half-mutated backend.
        # Endpoint bounds account for vertices added earlier in this batch.
        n = backend.num_vertices
        for op in batch:
            kind = op[0] if op else None
            if kind == "add_vertex":
                if len(op) != 2:
                    raise GraphError(f"malformed add_vertex op {op!r}")
                n += 1
            elif kind in ("add_edge", "remove_edge"):
                if len(op) != 3:
                    raise GraphError(f"malformed {kind} op {op!r}")
                u, v = op[1], op[2]
                for e in (u, v):
                    if isinstance(e, bool) or not isinstance(e, int):
                        raise GraphError(f"{kind} endpoints must be integers, got {op!r}")
                    if not 0 <= e < n:
                        raise GraphError(f"vertex {e} out of range for graph with {n} vertices")
                if u == v:
                    raise GraphError(f"self-loop ({u}, {v}) is not allowed")
            else:
                raise GraphError(f"unknown mutation op kind {kind!r}")
        applied: List[Tuple] = []
        for op in batch:
            kind = op[0]
            if kind == "add_vertex":
                v = backend.add_vertex(op[1])
                applied.append(("add_vertex", v, op[1]))
            elif kind == "add_edge":
                if backend.add_edge(op[1], op[2]):
                    applied.append(("add_edge", op[1], op[2]))
            else:
                if backend.remove_edge(op[1], op[2]):
                    applied.append(("remove_edge", op[1], op[2]))
        if applied and self._cache is not None:
            self._cache.apply_delta(applied)
        compacted = False
        if compaction_threshold is not None and backend.delta_size >= compaction_threshold:
            self.compact()
            compacted = True
        return MutationSummary(len(applied), compacted, self.version)

    def compact(self) -> None:
        """Merge the backend's mutation overlay and start a fresh cache epoch.

        Topology and every answer are unchanged; what changes is array
        identity — shared-memory publications and compiled plans pinned to
        the old epoch become stale (attached workers raise
        :class:`~repro.exceptions.StaleSegmentError` rather than serve the
        old base).
        """
        self._backend.compact()
        if self._cache is not None:
            self._cache.on_compaction()

    def replay(self, entries: Iterable[Tuple[int, Tuple]]) -> None:
        """Re-apply a mutation-log tail (``(seq, op)`` pairs) to this graph.

        The shared-memory catch-up path: an attached worker graph replays
        the publisher's ops so its views and cache version converge on the
        publisher's. Ops must be contiguous, start right after this graph's
        current ``delta_seq``, and re-apply cleanly; any skew raises
        :class:`~repro.exceptions.GraphError`.
        """
        cache = self.index_cache()
        for seq, op in entries:
            if seq != cache.delta_seq + 1:
                raise GraphError(
                    f"mutation replay gap: have delta_seq {cache.delta_seq}, next op is {seq}"
                )
            kind = op[0]
            if kind == "add_vertex":
                v = self._backend.add_vertex(op[2])
                if v != op[1]:
                    raise GraphError(f"replay skew: add_vertex produced id {v}, log says {op[1]}")
            elif kind == "add_edge":
                if not self._backend.add_edge(op[1], op[2]):
                    raise GraphError(f"replay skew: edge {op[1:]} already present")
            elif kind == "remove_edge":
                if not self._backend.remove_edge(op[1], op[2]):
                    raise GraphError(f"replay skew: edge {op[1:]} already absent")
            else:
                raise GraphError(f"unknown mutation op kind {kind!r}")
            cache.apply_delta((op,))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._backend.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._backend.num_edges

    def vertices(self) -> range:
        """All vertex ids, as a ``range`` (cheap, re-iterable)."""
        return range(self._backend.num_vertices)

    def edges(self) -> Iterator[Edge]:
        """Yield every undirected edge exactly once, as ``(u, v)`` with u < v.

        Deterministic: edges come out sorted lexicographically.
        """
        return self._backend.edges()

    @property
    def labels(self) -> Sequence[Label]:
        """The full label table (read-only view by convention)."""
        return self._backend.labels

    # ``label``, ``neighbors``, ``degree``, ``has_edge`` are bound in
    # ``__init__`` directly to the backend; ``neighbors(v)`` returns the
    # sorted tuple of neighbors (plain Python ints).

    def degree_array(self):
        """Per-vertex degrees as a numpy array (precomputed by the backend)."""
        return self._backend.degree_array

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and 0 <= v < self._backend.num_vertices

    def __len__(self) -> int:
        return self._backend.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{tag} |V|={self.num_vertices} |E|={self.num_edges}"
            f" |Sigma|={len(self.label_set())}>"
        )

    # ------------------------------------------------------------------
    # Label machinery
    # ------------------------------------------------------------------
    def label_set(self) -> Set[Label]:
        """The set of distinct labels ``Sigma`` actually used."""
        return set(self._backend.label_table)

    def label_index(self) -> Dict[Label, Tuple[int, ...]]:
        """Inverted index ``label -> sorted tuple of vertices with that label``.

        Served from the shared :meth:`index_cache`; this is the pre-computed
        index the paper requires "for looking up the set of vertices with a
        given label" (Section 4).
        """
        return self.index_cache().label_index

    def vertices_with_label(self, label: Label) -> Tuple[int, ...]:
        """All vertices carrying ``label`` (empty tuple if unused)."""
        return self.index_cache().vertices_with_label(label)

    # ------------------------------------------------------------------
    # Neighborhood signatures (Section 4.2)
    # ------------------------------------------------------------------
    def neighborhood_signature(self, v: int) -> FrozenSet[Label]:
        """``NS(v)``: the set of labels appearing among the neighbors of ``v``.

        Used by the neighborhood-signature filter: a data vertex ``v`` can
        match query node ``u`` only if ``NS_Q(u) <= NS(v)``. Signatures for
        the whole graph live in the shared :meth:`index_cache` as interned
        frozensets keyed by label-id bitmask (O(|V| + |E|) storage, matching
        the paper's stated index budget).
        """
        return self.index_cache().signature(v)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def average_degree(self) -> float:
        """Average vertex degree ``2|E| / |V|`` (0.0 for the empty graph)."""
        n = self._backend.num_vertices
        if not n:
            return 0.0
        return 2.0 * self._backend.num_edges / n

    def degree_sequence(self) -> List[int]:
        """Degrees of all vertices, indexed by vertex id."""
        return self._backend.degree_sequence()

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        n = self._backend.num_vertices
        if n == 0:
            return True
        neighbors = self._backend.neighbors
        seen = bytearray(n)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            u = stack.pop()
            for w in neighbors(u):
                if not seen[w]:
                    seen[w] = 1
                    count += 1
                    stack.append(w)
        return count == n

    def connected_components(self) -> List[List[int]]:
        """All connected components as sorted vertex lists."""
        n = self._backend.num_vertices
        neighbors = self._backend.neighbors
        seen = bytearray(n)
        components: List[List[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            comp = [start]
            seen[start] = 1
            stack = [start]
            while stack:
                u = stack.pop()
                for w in neighbors(u):
                    if not seen[w]:
                        seen[w] = 1
                        comp.append(w)
                        stack.append(w)
            comp.sort()
            components.append(comp)
        return components

    def induced_subgraph(self, vertices: Iterable[int]) -> "LabeledGraph":
        """The subgraph induced by ``vertices``, with ids re-densified.

        The mapping from old to new ids follows the sorted order of the given
        vertex set; useful for extracting query graphs from a data graph.
        The result keeps this graph's backend and carries its name with an
        ``/induced`` suffix.
        """
        vs = sorted(set(vertices))
        remap = {old: new for new, old in enumerate(vs)}
        labels = [self._backend.label(v) for v in vs]
        edges = [
            (remap[u], remap[v])
            for u in vs
            for v in self._backend.neighbors(u)
            if u < v and v in remap
        ]
        return LabeledGraph(
            labels,
            edges,
            name=f"{self.name}/induced" if self.name else "",
            backend=self._backend.name,
        )
