"""Query graphs for (diversified) subgraph querying.

A query graph (Section 2) is a small, connected, undirected, vertex-labeled
graph ``Q``. :class:`QueryGraph` reuses the :class:`LabeledGraph`
representation and adds the validation DSQL depends on:

* non-empty — an empty query has no embeddings and no well-defined level loop;
* connected — the ``qfList`` father-node construction (Section 5.1) assigns
  every node a father reachable through earlier nodes, which requires a
  connected query.

Following the paper's terminology, vertices of ``Q`` are called **nodes** and
vertices of the data graph are called **vertices**.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.exceptions import InvalidQueryError, QueryError
from repro.graph.labeled_graph import Edge, Label, LabeledGraph


class QueryGraph(LabeledGraph):
    """A connected, non-empty, vertex-labeled query graph.

    Parameters mirror :class:`LabeledGraph`. ``q = |Q|`` is exposed as
    :attr:`size` since the paper's bounds are stated in terms of ``q``.

    Examples
    --------
    The motivating team query of Figure 1(a): a project manager linked to a
    programmer and a database developer, who are linked to each other and
    both to a software tester.

    >>> q = QueryGraph(
    ...     ["a", "b", "c", "d"],
    ...     [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)],
    ... )
    >>> q.size
    4
    """

    def __init__(
        self,
        labels: Sequence[Label],
        edges: Iterable[Edge] = (),
        name: str = "",
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(labels, edges, name=name, backend=backend)
        if self.num_vertices == 0:
            raise QueryError("query graph must have at least one node")
        if not self.is_connected():
            components = self.connected_components()
            component = sorted(components[-1])
            raise InvalidQueryError(
                "query graph must be connected "
                f"(found {len(components)} components; nodes {component} "
                "are separated from node 0)",
                component=component,
            )

    @property
    def size(self) -> int:
        """``q = |V_Q|``, the number of query nodes."""
        return self.num_vertices

    @classmethod
    def from_graph(cls, graph: LabeledGraph, name: str = "") -> "QueryGraph":
        """Promote a plain :class:`LabeledGraph` to a validated query graph."""
        return cls(
            list(graph.labels),
            list(graph.edges()),
            name=name or graph.name,
            backend=graph.backend_name,
        )

    def edge_tuples(self) -> Tuple[Edge, ...]:
        """All edges as a deterministic sorted tuple (useful as a cache key)."""
        return tuple(sorted(self.edges()))

    def canonical_key(self) -> Tuple:
        """A hashable key identifying this query's labeled structure.

        Two queries with the same node count, label table, and edge set get
        equal keys. This is *not* a canonical form under isomorphism; it is a
        cheap identity for caching candidate sets per query object. Memoized
        (graphs are immutable): warm cache lookups — result memo and plan
        cache — cost one dict probe, not an edge sort.
        """
        key = getattr(self, "_canonical_key", None)
        if key is None:
            key = self._canonical_key = (tuple(self.labels), self.edge_tuples())
        return key
