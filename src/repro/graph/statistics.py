"""Structural statistics of labeled graphs.

Used in two places:

* dataset generators assert that a synthetic stand-in actually matches the
  published statistics of the real graph it replaces (Table 1 of the paper);
* the experiment reports print the dataset header rows the paper tabulates
  (|V|, |E|, |Sigma|, average degree).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable

from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics mirroring Table 1 of the paper.

    Attributes
    ----------
    num_vertices, num_edges:
        ``|V|`` and ``|E|``.
    num_labels:
        ``|Sigma|`` — number of *distinct labels in use*.
    average_degree:
        ``2|E| / |V|``.
    max_degree:
        Largest vertex degree.
    label_density:
        ``|Sigma| / |V|`` — the x-axis of the Figure 7 experiment.
    """

    num_vertices: int
    num_edges: int
    num_labels: int
    average_degree: float
    max_degree: int
    label_density: float

    def row(self) -> str:
        """One formatted table row (name columns are added by the caller)."""
        return (
            f"{self.num_vertices:>9d} {self.num_edges:>10d} {self.num_labels:>6d} "
            f"{self.average_degree:>8.2f}"
        )


def compute_statistics(graph: LabeledGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    n = graph.num_vertices
    num_labels = len(graph.label_set())
    return GraphStatistics(
        num_vertices=n,
        num_edges=graph.num_edges,
        num_labels=num_labels,
        average_degree=graph.average_degree(),
        max_degree=int(graph.degree_array().max()) if n else 0,
        label_density=(num_labels / n) if n else 0.0,
    )


def label_histogram(graph: LabeledGraph) -> Dict[Hashable, int]:
    """Count of vertices per label, most frequent first."""
    counts = Counter(graph.labels)
    return dict(counts.most_common())


def label_skew(graph: LabeledGraph, top: int = 3) -> float:
    """Fraction of vertices carried by the ``top`` most frequent labels.

    The paper notes IMDB has ~90% of its vertices under 3 labels
    (actor/actress/director); this metric verifies our IMDB stand-in
    reproduces that skew.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    counts = Counter(graph.labels).most_common(top)
    return sum(c for _, c in counts) / n


def degree_histogram(graph: LabeledGraph) -> Dict[int, int]:
    """Count of vertices per degree value, ascending by degree."""
    counts = Counter(graph.degree_sequence())
    return dict(sorted(counts.items()))
