"""NetworkX interoperability.

Most Python graph users hold their data in :mod:`networkx`; these
converters bridge it to the library's :class:`LabeledGraph`/:class:`QueryGraph`
representation and back.

Conventions:

* vertex labels live in a node attribute (default ``"label"``); nodes
  missing the attribute get ``default_label`` (or raise if none given);
* arbitrary (hashable) node identifiers are densified to ``0..n-1`` in
  sorted-by-insertion order; the mapping is returned so embeddings can be
  translated back to original identifiers;
* multi-edges collapse and self-loops are dropped (the data model is a
  simple graph), with an optional strict mode that raises instead.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import networkx as nx

from repro.exceptions import GraphError
from repro.graph.labeled_graph import Label, LabeledGraph
from repro.graph.query_graph import QueryGraph


def from_networkx(
    graph: "nx.Graph",
    label_attribute: str = "label",
    default_label: Optional[Label] = None,
    strict: bool = False,
    name: str = "",
    backend: Optional[str] = None,
) -> Tuple[LabeledGraph, Dict[Hashable, int]]:
    """Convert an undirected networkx graph to a :class:`LabeledGraph`.

    Returns ``(labeled_graph, node_to_id)`` where ``node_to_id`` maps the
    original networkx node identifiers to the dense vertex ids.

    Raises :class:`~repro.exceptions.GraphError` for directed graphs, for
    unlabeled nodes without a ``default_label``, and — in strict mode — for
    self-loops.
    """
    if graph.is_directed():
        raise GraphError("data graphs are undirected; convert with .to_undirected() first")
    node_to_id: Dict[Hashable, int] = {}
    labels = []
    for node, data in graph.nodes(data=True):
        label = data.get(label_attribute, default_label)
        if label is None:
            raise GraphError(
                f"node {node!r} has no {label_attribute!r} attribute and no "
                "default_label was given"
            )
        node_to_id[node] = len(labels)
        labels.append(label)
    edges = []
    for u, v in graph.edges():
        if u == v:
            if strict:
                raise GraphError(f"self-loop at {u!r} not representable")
            continue
        edges.append((node_to_id[u], node_to_id[v]))
    return (
        LabeledGraph(labels, edges, name=name or str(graph.name or ""), backend=backend),
        node_to_id,
    )


def query_from_networkx(
    graph: "nx.Graph",
    label_attribute: str = "label",
    name: str = "",
) -> Tuple[QueryGraph, Dict[Hashable, int]]:
    """Convert a networkx graph to a validated :class:`QueryGraph`."""
    labeled, node_to_id = from_networkx(
        graph, label_attribute=label_attribute, strict=True, name=name
    )
    return QueryGraph.from_graph(labeled, name=name), node_to_id


def to_networkx(
    graph: LabeledGraph,
    label_attribute: str = "label",
) -> "nx.Graph":
    """Convert a :class:`LabeledGraph` to a networkx graph.

    Vertex ids become node identifiers; labels land in ``label_attribute``.
    """
    out = nx.Graph(name=graph.name)
    for v in graph.vertices():
        out.add_node(v, **{label_attribute: graph.label(v)})
    out.add_edges_from(graph.edges())
    return out


def translate_embedding(
    mapping: Tuple[int, ...],
    node_to_id: Dict[Hashable, int],
) -> Tuple[Hashable, ...]:
    """Translate an embedding back to original networkx node identifiers."""
    id_to_node = {i: node for node, i in node_to_id.items()}
    return tuple(id_to_node[v] for v in mapping)
