"""Serialization of labeled graphs.

Two formats are supported:

* **Labeled edge list** (``.lg``-style text) — the de-facto interchange format
  of the subgraph-matching literature (used by the datasets of [24] the paper
  evaluates on)::

      t <num_vertices> <num_edges>
      v <vertex_id> <label>
      ...
      e <u> <v>
      ...

* **JSON** — a self-describing object with ``labels`` and ``edges`` arrays,
  convenient for checked-in fixtures.

Both loaders validate vertex-id density and edge endpoints through
:class:`~repro.graph.builder.GraphBuilder`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

PathLike = Union[str, Path]


def dump_edge_list(graph: LabeledGraph, path: PathLike) -> None:
    """Write ``graph`` in labeled-edge-list text format."""
    lines: List[str] = [f"t {graph.num_vertices} {graph.num_edges}"]
    for v in graph.vertices():
        lines.append(f"v {v} {graph.label(v)}")
    for u, v in sorted(graph.edges()):
        lines.append(f"e {u} {v}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_edge_list(
    path: PathLike, name: str = "", backend: Optional[str] = None
) -> LabeledGraph:
    """Parse a labeled-edge-list file into a :class:`LabeledGraph`.

    Labels are kept as strings; convert downstream if integer labels are
    needed. Lines that are blank or start with ``#`` are ignored.
    ``backend`` selects the storage backend (default: process default).
    """
    labels: dict[int, str] = {}
    edges: List[Tuple[int, int]] = []
    declared_vertices = declared_edges = None
    for lineno, raw in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            if len(parts) != 3:
                raise GraphError(f"{path}:{lineno}: malformed header {line!r}")
            declared_vertices, declared_edges = int(parts[1]), int(parts[2])
        elif kind == "v":
            if len(parts) != 3:
                raise GraphError(f"{path}:{lineno}: malformed vertex line {line!r}")
            labels[int(parts[1])] = parts[2]
        elif kind == "e":
            if len(parts) != 3:
                raise GraphError(f"{path}:{lineno}: malformed edge line {line!r}")
            edges.append((int(parts[1]), int(parts[2])))
        else:
            raise GraphError(f"{path}:{lineno}: unknown record kind {kind!r}")
    n = len(labels)
    if sorted(labels) != list(range(n)):
        raise GraphError(f"{path}: vertex ids must be dense 0..{n - 1}")
    if declared_vertices is not None and declared_vertices != n:
        raise GraphError(f"{path}: header declares {declared_vertices} vertices, found {n}")
    graph = LabeledGraph(
        [labels[v] for v in range(n)], edges, name=name or Path(path).stem, backend=backend
    )
    if declared_edges is not None and declared_edges != graph.num_edges:
        raise GraphError(
            f"{path}: header declares {declared_edges} edges, found {graph.num_edges}"
        )
    return graph


def dump_json(graph: LabeledGraph, path: PathLike) -> None:
    """Write ``graph`` as a JSON object with ``labels`` and ``edges``."""
    payload = {
        "name": graph.name,
        "labels": list(graph.labels),
        "edges": sorted(graph.edges()),
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_json(path: PathLike, backend: Optional[str] = None) -> LabeledGraph:
    """Load a graph previously written by :func:`dump_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        labels = payload["labels"]
        edges = [tuple(e) for e in payload["edges"]]
    except (KeyError, TypeError) as exc:
        raise GraphError(f"{path}: not a graph JSON object: {exc}") from exc
    return LabeledGraph(
        labels, edges, name=payload.get("name", Path(path).stem), backend=backend
    )


def load_query(path: PathLike, backend: Optional[str] = None) -> QueryGraph:
    """Load a file in either format as a validated :class:`QueryGraph`."""
    path = Path(path)
    graph = (
        load_json(path, backend=backend)
        if path.suffix == ".json"
        else load_edge_list(path, backend=backend)
    )
    return QueryGraph.from_graph(graph)
