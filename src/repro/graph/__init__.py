"""Graph substrate: labeled graphs, query graphs, builders, I/O, statistics."""

from repro.graph.builder import GraphBuilder, relabel
from repro.graph.csr import (
    BACKEND_NAMES,
    CSRBackend,
    SetBackend,
    default_backend,
    make_backend,
    set_default_backend,
)
from repro.graph.interop import (
    from_networkx,
    query_from_networkx,
    to_networkx,
    translate_embedding,
)
from repro.graph.labeled_graph import (
    DEFAULT_COMPACTION_THRESHOLD,
    Edge,
    Label,
    LabeledGraph,
    MutationSummary,
)
from repro.graph.query_graph import QueryGraph
from repro.graph.statistics import (
    GraphStatistics,
    compute_statistics,
    degree_histogram,
    label_histogram,
    label_skew,
)
from repro.graph.validation import (
    embeddings_distinct,
    embeddings_pairwise_disjoint,
    is_valid_embedding,
    validate_embedding,
)

__all__ = [
    "BACKEND_NAMES",
    "CSRBackend",
    "SetBackend",
    "default_backend",
    "make_backend",
    "set_default_backend",
    "Edge",
    "Label",
    "LabeledGraph",
    "MutationSummary",
    "DEFAULT_COMPACTION_THRESHOLD",
    "QueryGraph",
    "GraphBuilder",
    "relabel",
    "from_networkx",
    "query_from_networkx",
    "to_networkx",
    "translate_embedding",
    "GraphStatistics",
    "compute_statistics",
    "degree_histogram",
    "label_histogram",
    "label_skew",
    "validate_embedding",
    "is_valid_embedding",
    "embeddings_distinct",
    "embeddings_pairwise_disjoint",
]
