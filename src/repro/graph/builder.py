"""Incremental construction of :class:`~repro.graph.labeled_graph.LabeledGraph`.

:class:`GraphBuilder` is the single mutation surface of the graph substrate:
generators and loaders accumulate vertices and edges here, then call
:meth:`GraphBuilder.build` to obtain an immutable graph. Keeping mutation out
of :class:`LabeledGraph` lets the search algorithms rely on stable adjacency,
cached signatures, and a frozen label index.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.labeled_graph import Label, LabeledGraph


class GraphBuilder:
    """Mutable accumulator that produces a :class:`LabeledGraph`.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> a = b.add_vertex("person")
    >>> c = b.add_vertex("movie")
    >>> b.add_edge(a, c)
    >>> g = b.build(name="tiny")
    >>> g.num_vertices, g.num_edges
    (2, 1)
    """

    def __init__(self) -> None:
        self._labels: List[Label] = []
        self._edges: Set[Tuple[int, int]] = set()

    @property
    def num_vertices(self) -> int:
        """Vertices added so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Distinct edges added so far."""
        return len(self._edges)

    def add_vertex(self, label: Label) -> int:
        """Append a vertex with ``label`` and return its new id."""
        self._labels.append(label)
        return len(self._labels) - 1

    def add_vertices(self, labels: Iterable[Label]) -> List[int]:
        """Append several vertices; returns their ids in order."""
        return [self.add_vertex(lab) for lab in labels]

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``.

        Adding an existing edge is a no-op; self-loops and references to
        unknown vertices raise :class:`~repro.exceptions.GraphError`.
        """
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references a vertex outside [0, {n})")
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) not allowed")
        self._edges.add((u, v) if u < v else (v, u))

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Add many undirected edges."""
        for u, v in edges:
            self.add_edge(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` has been added."""
        key = (u, v) if u < v else (v, u)
        return key in self._edges

    def set_label(self, v: int, label: Label) -> None:
        """Re-label an existing vertex (used by label-density experiments)."""
        if not (0 <= v < len(self._labels)):
            raise GraphError(f"vertex {v} outside [0, {len(self._labels)})")
        self._labels[v] = label

    def build(self, name: str = "", backend: Optional[str] = None) -> LabeledGraph:
        """Freeze the accumulated structure into a :class:`LabeledGraph`.

        ``backend`` selects the storage backend (default: process default).
        """
        return LabeledGraph(list(self._labels), sorted(self._edges), name=name, backend=backend)


def relabel(graph: LabeledGraph, labels: Iterable[Label], name: str = "") -> LabeledGraph:
    """A copy of ``graph`` with a new label table but identical topology.

    Used by the label-density experiment (Figure 7): the same synthetic
    topology is re-labelled at several label-set sizes.
    """
    label_list = list(labels)
    if len(label_list) != graph.num_vertices:
        raise GraphError(
            f"label table has {len(label_list)} entries for {graph.num_vertices} vertices"
        )
    return LabeledGraph(
        label_list, graph.edges(), name=name or graph.name, backend=graph.backend_name
    )


def merge_vertex_maps(maps: Iterable[Dict[int, int]]) -> Dict[int, int]:
    """Union several disjoint vertex-id maps (helper for dataset composition)."""
    merged: Dict[int, int] = {}
    for m in maps:
        overlap = merged.keys() & m.keys()
        if overlap:
            raise GraphError(f"vertex maps overlap on ids {sorted(overlap)[:5]}")
        merged.update(m)
    return merged
