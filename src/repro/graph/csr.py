"""Storage backends for labeled graphs: CSR arrays and adjacency sets.

This module is the *backend seam* of the graph substrate. A backend owns the
topology and label storage of one labeled graph; :class:`~repro.graph.
labeled_graph.LabeledGraph` keeps its public API and delegates every storage
question here. Two backends exist:

* :class:`CSRBackend` (default) — compressed sparse row. The bulk adjacency
  structure lives in two numpy arrays (``indptr``/``indices``) with **sorted**
  neighbor rows, next to a flat label-id array and a precomputed degree
  array. This is the standard substrate for subgraph enumeration at scale:
  neighbor iteration is a contiguous slice, iteration order is deterministic
  by construction, and batch edge probes vectorize with ``searchsorted``.
* :class:`SetBackend` — the reference adjacency-set representation the
  library started from. Retained so equivalence tests can prove the CSR path
  returns byte-identical results, and as a fallback for workloads that never
  touch the array views.

Both backends are mutable through a small, explicit delta surface
(:meth:`~CSRBackend.add_vertex`, :meth:`~CSRBackend.add_edge`,
:meth:`~CSRBackend.remove_edge`). The CSR backend keeps the numpy arrays as
a *frozen base snapshot* and applies mutations to its Python-level views
(sorted neighbor tuples + membership sets — the accessors the join kernels
actually iterate); vertices whose rows diverge from the base are tracked in
an overlay set so the array accessors (``neighbors_array``/``has_edges``)
transparently serve the overlay row instead of the stale slice. Calling
:meth:`~CSRBackend.compact` merges the overlay back into fresh sorted CSR
arrays, restoring the invariants the vectorized kernels and the
shared-memory publisher rely on.

Both backends expose identical semantics:

* ``neighbors(v)`` returns the sorted tuple of neighbors (plain Python ints,
  so downstream embeddings never carry numpy scalar types);
* ``has_edge(u, v)`` is an O(1) expected probe. For the CSR backend the
  scalar probe goes through per-vertex hash sets because a per-call
  ``searchsorted`` pays ~20x Python/numpy call overhead for a single lookup;
  the pure-CSR probes remain available as
  :meth:`CSRBackend.has_edge_searchsorted` (scalar, for verification) and
  :meth:`CSRBackend.has_edges` (vectorized batch, the form that actually
  amortizes the numpy call);
* both intern labels into ``label_table`` / ``label_to_id`` / ``label_ids``
  in first-appearance order, the id space the per-graph index cache keys its
  signature bitmasks by.

The module-level default backend is ``"csr"``; override per process with
:func:`set_default_backend` or the ``REPRO_GRAPH_BACKEND`` environment
variable, or per graph with the ``backend=`` constructor argument.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import GraphError

Label = Hashable
Edge = Tuple[int, int]

BACKEND_NAMES: Tuple[str, ...] = ("csr", "set")
"""Registered backend names, in preference order."""

_ENV_VAR = "REPRO_GRAPH_BACKEND"
_default_backend: Optional[str] = None


def default_backend() -> str:
    """The process-wide default backend name.

    Resolution order: :func:`set_default_backend` override, then the
    ``REPRO_GRAPH_BACKEND`` environment variable, then ``"csr"``.
    """
    if _default_backend is not None:
        return _default_backend
    env = os.environ.get(_ENV_VAR)
    if env:
        if env not in BACKEND_NAMES:
            raise GraphError(
                f"{_ENV_VAR}={env!r} is not a graph backend; choose from {BACKEND_NAMES}"
            )
        return env
    return "csr"


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` reset) the process-wide default backend."""
    global _default_backend
    if name is not None and name not in BACKEND_NAMES:
        raise GraphError(f"unknown graph backend {name!r}; choose from {BACKEND_NAMES}")
    _default_backend = name


def resolve_backend_name(name: Optional[str]) -> str:
    """Validate an explicit backend name, or fall back to the default."""
    if name is None:
        return default_backend()
    if name not in BACKEND_NAMES:
        raise GraphError(f"unknown graph backend {name!r}; choose from {BACKEND_NAMES}")
    return name


def normalize_edges(num_vertices: int, edges: Iterable[Edge]) -> List[Edge]:
    """Validate and normalize an edge iterable to sorted unique ``(u, v)``, u < v.

    Rejects self-loops and endpoints outside ``[0, num_vertices)`` with the
    same diagnostics regardless of backend; duplicate pairs (in either
    orientation) collapse.
    """
    n = num_vertices
    seen: Set[Edge] = set()
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references a vertex outside [0, {n})")
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) not allowed in a simple graph")
        seen.add((u, v) if u < v else (v, u))
    return sorted(seen)


def intern_labels(labels: Sequence[Label]) -> Tuple[List[Label], Dict[Label, int], List[int]]:
    """Intern a label table in first-appearance order.

    Returns ``(label_table, label_to_id, label_ids)`` with
    ``label_table[label_ids[v]] == labels[v]``.
    """
    table: List[Label] = []
    to_id: Dict[Label, int] = {}
    ids: List[int] = []
    for lab in labels:
        i = to_id.get(lab)
        if i is None:
            i = to_id[lab] = len(table)
            table.append(lab)
        ids.append(i)
    return table, to_id, ids


def _sorted_rows(n: int, pairs: Sequence[Edge]) -> List[Tuple[int, ...]]:
    """Per-vertex sorted neighbor tuples from normalized edge pairs."""
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in pairs:
        adj[u].append(v)
        adj[v].append(u)
    return [tuple(sorted(r)) for r in adj]


def _check_edge_endpoints(n: int, u: int, v: int) -> None:
    """Validate one edge-mutation pair with the same diagnostics as builds."""
    if not (0 <= u < n and 0 <= v < n):
        raise GraphError(f"edge ({u}, {v}) references a vertex outside [0, {n})")
    if u == v:
        raise GraphError(f"self-loop ({u}, {u}) not allowed in a simple graph")


def _tuple_insert(row: Tuple[int, ...], v: int) -> Tuple[int, ...]:
    """Sorted-insert ``v`` into a sorted tuple."""
    i = bisect_left(row, v)
    return row[:i] + (v,) + row[i:]


def _tuple_remove(row: Tuple[int, ...], v: int) -> Tuple[int, ...]:
    """Remove ``v`` from a sorted tuple (caller guarantees membership)."""
    i = bisect_left(row, v)
    return row[:i] + row[i + 1 :]


class CSRBackend:
    """Compressed-sparse-row storage for one labeled graph.

    Attributes
    ----------
    indptr, indices:
        The CSR *base snapshot*: for any vertex ``v`` not in the mutation
        overlay, the neighbors of ``v`` are
        ``indices[indptr[v]:indptr[v+1]]``, sorted ascending.
    label_ids, label_table, label_to_id:
        Flat per-vertex label-id array plus the interning tables
        (first-appearance order). Interning is append-only: a label id never
        changes once assigned, even across mutations and compactions.
    degree_array:
        Per-vertex degrees as a numpy array (rebuilt lazily after mutation).
    labels:
        The raw label list, indexed by vertex id.

    Mutations (:meth:`add_vertex` / :meth:`add_edge` / :meth:`remove_edge`)
    update the Python-level views in place and record the touched vertices in
    an overlay (:attr:`delta_size` counts pending edge ops); the numpy base
    stays frozen until :meth:`compact` merges the overlay back into fresh
    sorted arrays.
    """

    name = "csr"

    __slots__ = (
        "labels",
        "num_edges",
        "indptr",
        "indices",
        "label_table",
        "label_to_id",
        "_n",
        "_rows",
        "_degrees",
        "_sets",
        "_label_id_list",
        "_label_ids_np",
        "_degree_np",
        "_base_n",
        "_touched",
        "_delta_edges",
    )

    def __init__(self, labels: Sequence[Label], edges: Iterable[Edge] = ()) -> None:
        self.labels: List[Label] = list(labels)
        n = self._n = len(self.labels)
        pairs = normalize_edges(n, edges)
        self.num_edges = len(pairs)
        rows = self._rows = _sorted_rows(n, pairs)
        self._degrees = [len(r) for r in rows]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=indptr[1:])
        self.indptr = indptr
        index_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        self.indices = np.fromiter(
            (v for row in rows for v in row), dtype=index_dtype, count=2 * len(pairs)
        )
        self._degree_np: Optional[np.ndarray] = np.asarray(self._degrees, dtype=np.int64)
        table, to_id, ids = intern_labels(self.labels)
        self.label_table = table
        self.label_to_id = to_id
        self._label_id_list: List[int] = ids
        self._label_ids_np: Optional[np.ndarray] = np.asarray(ids, dtype=np.int32)
        # Per-vertex membership sets for the scalar probe: searchsorted pays
        # ~20x Python/numpy call overhead per single lookup, and any packed
        # edge-key scheme pays the packing arithmetic per call; a plain set
        # probe matches the reference backend exactly.
        self._sets: List[Set[int]] = [set(r) for r in rows]
        self._base_n = n
        self._touched: Set[int] = set()
        self._delta_edges = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        label_ids: np.ndarray,
        label_table: Sequence[Label],
        degree_array: np.ndarray,
    ) -> "CSRBackend":
        """Rebuild a backend around existing CSR arrays without renormalizing.

        The attach half of the shared-memory round-trip (see
        :mod:`repro.graph.shared`): the arrays are adopted as-is — typically
        views over ``multiprocessing.shared_memory`` buffers, so the bulk
        topology is zero-copy — and only the Python-level iteration views
        (per-vertex neighbor tuples and membership sets) are rebuilt, one
        O(|V| + |E|) pass paid once per attaching process. The arrays must
        satisfy the constructor's invariants (sorted rows, u < v pairs each
        stored in both directions), which :func:`~repro.graph.shared.
        publish_graph` guarantees by construction.
        """
        backend = cls.__new__(cls)
        n = len(label_ids)
        backend._n = n
        backend.indptr = indptr
        backend.indices = indices
        backend._label_ids_np = label_ids
        backend._label_id_list = [int(i) for i in label_ids]
        backend.label_table = list(label_table)
        backend.label_to_id = {lab: i for i, lab in enumerate(backend.label_table)}
        backend.labels = [backend.label_table[i] for i in backend._label_id_list]
        backend._degree_np = degree_array
        backend.num_edges = len(indices) // 2
        bounds = [int(b) for b in indptr]
        flat = [int(v) for v in indices]
        rows = backend._rows = [
            tuple(flat[bounds[v] : bounds[v + 1]]) for v in range(n)
        ]
        backend._degrees = [len(r) for r in rows]
        backend._sets = [set(r) for r in rows]
        backend._base_n = n
        backend._touched = set()
        backend._delta_edges = 0
        return backend

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def label_ids(self) -> np.ndarray:
        """Flat per-vertex label-id array (rebuilt lazily after add_vertex)."""
        if self._label_ids_np is None:
            self._label_ids_np = np.asarray(self._label_id_list, dtype=np.int32)
        return self._label_ids_np

    @property
    def degree_array(self) -> np.ndarray:
        """Per-vertex degrees as numpy (rebuilt lazily after mutation)."""
        if self._degree_np is None:
            self._degree_np = np.asarray(self._degrees, dtype=np.int64)
        return self._degree_np

    @property
    def delta_size(self) -> int:
        """Edge mutations applied since the last compaction (or build)."""
        return self._delta_edges

    @property
    def touched_vertices(self) -> Set[int]:
        """Vertices whose rows diverge from the CSR base snapshot."""
        return self._touched

    def label(self, v: int) -> Label:
        return self.labels[v]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbor tuple of ``v`` (plain Python ints)."""
        return self._rows[v]

    def neighbors_array(self, v: int) -> np.ndarray:
        """CSR row slice for vectorized consumers (zero-copy off the base).

        For vertices in the mutation overlay — rows that diverged from the
        base snapshot, or vertices added after it — the sorted overlay row is
        materialized instead, so vectorized consumers always see the live
        adjacency.
        """
        if v >= self._base_n or v in self._touched:
            return np.asarray(self._rows[v], dtype=self.indices.dtype)
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return self._degrees[v]

    def degree_sequence(self) -> List[int]:
        return list(self._degrees)

    def has_edge(self, u: int, v: int) -> bool:
        """O(1) expected scalar probe (per-vertex hash set)."""
        return v in self._sets[u]

    def has_edge_searchsorted(self, u: int, v: int) -> bool:
        """The pure-CSR scalar probe (binary search in the sorted row)."""
        row = self.neighbors_array(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and int(row[i]) == v

    def has_edges(self, u: int, targets: np.ndarray) -> np.ndarray:
        """Vectorized batch probe: which of ``targets`` are neighbors of ``u``.

        This is the ``searchsorted`` form that actually amortizes numpy call
        overhead — the building block for vectorized join filters.
        """
        row = self.neighbors_array(u)
        targets = np.asarray(targets)
        if row.size == 0:
            return np.zeros(targets.shape, dtype=bool)
        pos = np.searchsorted(row, targets)
        pos_clipped = np.minimum(pos, row.size - 1)
        return (pos < row.size) & (row[pos_clipped] == targets)

    def edges(self) -> Iterator[Edge]:
        """Every undirected edge exactly once as ``(u, v)``, u < v, sorted."""
        for u, row in enumerate(self._rows):
            for v in row:
                if v > u:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Mutation surface (delta overlay)
    # ------------------------------------------------------------------
    def add_vertex(self, label: Label) -> int:
        """Append an isolated vertex with ``label``; returns its new id.

        Label interning stays append-only: an unseen label gets the next id,
        existing label ids are untouched (the invariant the signature
        bitmasks in :class:`~repro.indexes.graph_cache.GraphIndexCache`
        depend on).
        """
        v = self._n
        self.labels.append(label)
        lid = self.label_to_id.get(label)
        if lid is None:
            lid = self.label_to_id[label] = len(self.label_table)
            self.label_table.append(label)
        self._label_id_list.append(lid)
        self._label_ids_np = None
        self._rows.append(())
        self._sets.append(set())
        self._degrees.append(0)
        self._degree_np = None
        self._n = v + 1
        return v

    def add_edge(self, u: int, v: int) -> bool:
        """Add undirected edge ``(u, v)``; returns False if already present."""
        _check_edge_endpoints(self._n, u, v)
        if v in self._sets[u]:
            return False
        self._rows[u] = _tuple_insert(self._rows[u], v)
        self._rows[v] = _tuple_insert(self._rows[v], u)
        self._sets[u].add(v)
        self._sets[v].add(u)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self.num_edges += 1
        self._after_edge_mutation(u, v)
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove undirected edge ``(u, v)``; returns False if absent."""
        _check_edge_endpoints(self._n, u, v)
        if v not in self._sets[u]:
            return False
        self._rows[u] = _tuple_remove(self._rows[u], v)
        self._rows[v] = _tuple_remove(self._rows[v], u)
        self._sets[u].discard(v)
        self._sets[v].discard(u)
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self.num_edges -= 1
        self._after_edge_mutation(u, v)
        return True

    def _after_edge_mutation(self, u: int, v: int) -> None:
        self._degree_np = None
        self._delta_edges += 1
        base = self._base_n
        if u < base:
            self._touched.add(u)
        if v < base:
            self._touched.add(v)

    def compact(self) -> None:
        """Merge the mutation overlay into fresh sorted CSR arrays.

        Rebuilds ``indptr``/``indices`` (and the lazy ``label_ids``/
        ``degree_array`` caches) from the live Python views and clears the
        overlay, restoring the pure-CSR invariants that the shared-memory
        publisher requires. Attached (read-only, shared-buffer) arrays are
        replaced, never written in place.
        """
        n = self._n
        rows = self._rows
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=indptr[1:])
        self.indptr = indptr
        index_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        self.indices = np.fromiter(
            (v for row in rows for v in row), dtype=index_dtype, count=2 * self.num_edges
        )
        self._degree_np = np.asarray(self._degrees, dtype=np.int64)
        self._label_ids_np = np.asarray(self._label_id_list, dtype=np.int32)
        self._base_n = n
        self._touched = set()
        self._delta_edges = 0


class SetBackend:
    """Reference adjacency-set storage (the library's original substrate).

    Iteration views (``neighbors``/``edges``) are served from sorted tuples
    so determinism matches the CSR backend; membership goes through the
    per-vertex sets, exactly as the seed implementation did.
    """

    name = "set"

    __slots__ = (
        "labels",
        "num_edges",
        "label_table",
        "label_to_id",
        "_label_ids",
        "_n",
        "_sets",
        "_rows",
        "_degrees",
        "_degree_array",
        "_touched",
        "_delta_edges",
    )

    def __init__(self, labels: Sequence[Label], edges: Iterable[Edge] = ()) -> None:
        self.labels: List[Label] = list(labels)
        n = self._n = len(self.labels)
        pairs = normalize_edges(n, edges)
        self.num_edges = len(pairs)
        rows = self._rows = _sorted_rows(n, pairs)
        self._sets: List[Set[int]] = [set(r) for r in rows]
        self._degrees = [len(r) for r in rows]
        self._degree_array: Optional[np.ndarray] = None
        table, to_id, ids = intern_labels(self.labels)
        self.label_table = table
        self.label_to_id = to_id
        self._label_ids = ids
        self._touched: Set[int] = set()
        self._delta_edges = 0

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def label_ids(self) -> np.ndarray:
        return np.asarray(self._label_ids, dtype=np.int32)

    @property
    def degree_array(self) -> np.ndarray:
        if self._degree_array is None:
            self._degree_array = np.asarray(self._degrees, dtype=np.int64)
        return self._degree_array

    def label(self, v: int) -> Label:
        return self.labels[v]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbor tuple of ``v``."""
        return self._rows[v]

    def degree(self, v: int) -> int:
        return self._degrees[v]

    def degree_sequence(self) -> List[int]:
        return list(self._degrees)

    def has_edge(self, u: int, v: int) -> bool:
        """O(1) expected set-membership probe."""
        return v in self._sets[u]

    def edges(self) -> Iterator[Edge]:
        for u, row in enumerate(self._rows):
            for v in row:
                if v > u:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Mutation surface (same contract as the CSR backend)
    # ------------------------------------------------------------------
    @property
    def delta_size(self) -> int:
        """Edge mutations applied since the last compaction (or build)."""
        return self._delta_edges

    @property
    def touched_vertices(self) -> Set[int]:
        """Vertices mutated since the last compaction (or build)."""
        return self._touched

    def add_vertex(self, label: Label) -> int:
        """Append an isolated vertex with ``label``; returns its new id."""
        v = self._n
        self.labels.append(label)
        lid = self.label_to_id.get(label)
        if lid is None:
            lid = self.label_to_id[label] = len(self.label_table)
            self.label_table.append(label)
        self._label_ids.append(lid)
        self._rows.append(())
        self._sets.append(set())
        self._degrees.append(0)
        self._degree_array = None
        self._n = v + 1
        return v

    def add_edge(self, u: int, v: int) -> bool:
        """Add undirected edge ``(u, v)``; returns False if already present."""
        _check_edge_endpoints(self._n, u, v)
        if v in self._sets[u]:
            return False
        self._rows[u] = _tuple_insert(self._rows[u], v)
        self._rows[v] = _tuple_insert(self._rows[v], u)
        self._sets[u].add(v)
        self._sets[v].add(u)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self.num_edges += 1
        self._degree_array = None
        self._delta_edges += 1
        self._touched.update((u, v))
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove undirected edge ``(u, v)``; returns False if absent."""
        _check_edge_endpoints(self._n, u, v)
        if v not in self._sets[u]:
            return False
        self._rows[u] = _tuple_remove(self._rows[u], v)
        self._rows[v] = _tuple_remove(self._rows[v], u)
        self._sets[u].discard(v)
        self._sets[v].discard(u)
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self.num_edges -= 1
        self._degree_array = None
        self._delta_edges += 1
        self._touched.update((u, v))
        return True

    def compact(self) -> None:
        """Clear the overlay bookkeeping (sets are the live structure here)."""
        self._degree_array = np.asarray(self._degrees, dtype=np.int64)
        self._touched = set()
        self._delta_edges = 0


GraphBackend = Union[CSRBackend, SetBackend]
"""Type alias for any registered backend instance."""

_BACKENDS = {"csr": CSRBackend, "set": SetBackend}


def make_backend(
    name: Optional[str], labels: Sequence[Label], edges: Iterable[Edge] = ()
) -> GraphBackend:
    """Construct the named backend (``None`` uses the process default)."""
    return _BACKENDS[resolve_backend_name(name)](labels, edges)
