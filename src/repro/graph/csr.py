"""Storage backends for labeled graphs: immutable CSR arrays and adjacency sets.

This module is the *backend seam* of the graph substrate. A backend owns the
topology and label storage of one immutable graph; :class:`~repro.graph.
labeled_graph.LabeledGraph` keeps its public API and delegates every storage
question here. Two backends exist:

* :class:`CSRBackend` (default) — compressed sparse row. The whole adjacency
  structure lives in two numpy arrays (``indptr``/``indices``) with **sorted**
  neighbor rows, next to a flat label-id array and a precomputed degree
  array. This is the standard substrate for subgraph enumeration at scale:
  neighbor iteration is a contiguous slice, iteration order is deterministic
  by construction, and batch edge probes vectorize with ``searchsorted``.
* :class:`SetBackend` — the reference adjacency-set representation the
  library started from. Retained so equivalence tests can prove the CSR path
  returns byte-identical results, and as a fallback for workloads that never
  touch the array views.

Both backends expose identical semantics:

* ``neighbors(v)`` returns the sorted tuple of neighbors (plain Python ints,
  so downstream embeddings never carry numpy scalar types);
* ``has_edge(u, v)`` is an O(1) expected probe. For the CSR backend the
  scalar probe goes through per-vertex hash sets because a per-call
  ``searchsorted`` pays ~20x Python/numpy call overhead for a single lookup;
  the pure-CSR probes remain available as
  :meth:`CSRBackend.has_edge_searchsorted` (scalar, for verification) and
  :meth:`CSRBackend.has_edges` (vectorized batch, the form that actually
  amortizes the numpy call);
* both intern labels into ``label_table`` / ``label_to_id`` / ``label_ids``
  in first-appearance order, the id space the per-graph index cache keys its
  signature bitmasks by.

The module-level default backend is ``"csr"``; override per process with
:func:`set_default_backend` or the ``REPRO_GRAPH_BACKEND`` environment
variable, or per graph with the ``backend=`` constructor argument.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import GraphError

Label = Hashable
Edge = Tuple[int, int]

BACKEND_NAMES: Tuple[str, ...] = ("csr", "set")
"""Registered backend names, in preference order."""

_ENV_VAR = "REPRO_GRAPH_BACKEND"
_default_backend: Optional[str] = None


def default_backend() -> str:
    """The process-wide default backend name.

    Resolution order: :func:`set_default_backend` override, then the
    ``REPRO_GRAPH_BACKEND`` environment variable, then ``"csr"``.
    """
    if _default_backend is not None:
        return _default_backend
    env = os.environ.get(_ENV_VAR)
    if env:
        if env not in BACKEND_NAMES:
            raise GraphError(
                f"{_ENV_VAR}={env!r} is not a graph backend; choose from {BACKEND_NAMES}"
            )
        return env
    return "csr"


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` reset) the process-wide default backend."""
    global _default_backend
    if name is not None and name not in BACKEND_NAMES:
        raise GraphError(f"unknown graph backend {name!r}; choose from {BACKEND_NAMES}")
    _default_backend = name


def resolve_backend_name(name: Optional[str]) -> str:
    """Validate an explicit backend name, or fall back to the default."""
    if name is None:
        return default_backend()
    if name not in BACKEND_NAMES:
        raise GraphError(f"unknown graph backend {name!r}; choose from {BACKEND_NAMES}")
    return name


def normalize_edges(num_vertices: int, edges: Iterable[Edge]) -> List[Edge]:
    """Validate and normalize an edge iterable to sorted unique ``(u, v)``, u < v.

    Rejects self-loops and endpoints outside ``[0, num_vertices)`` with the
    same diagnostics regardless of backend; duplicate pairs (in either
    orientation) collapse.
    """
    n = num_vertices
    seen: Set[Edge] = set()
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references a vertex outside [0, {n})")
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) not allowed in a simple graph")
        seen.add((u, v) if u < v else (v, u))
    return sorted(seen)


def intern_labels(labels: Sequence[Label]) -> Tuple[List[Label], Dict[Label, int], List[int]]:
    """Intern a label table in first-appearance order.

    Returns ``(label_table, label_to_id, label_ids)`` with
    ``label_table[label_ids[v]] == labels[v]``.
    """
    table: List[Label] = []
    to_id: Dict[Label, int] = {}
    ids: List[int] = []
    for lab in labels:
        i = to_id.get(lab)
        if i is None:
            i = to_id[lab] = len(table)
            table.append(lab)
        ids.append(i)
    return table, to_id, ids


def _sorted_rows(n: int, pairs: Sequence[Edge]) -> List[Tuple[int, ...]]:
    """Per-vertex sorted neighbor tuples from normalized edge pairs."""
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in pairs:
        adj[u].append(v)
        adj[v].append(u)
    return [tuple(sorted(r)) for r in adj]


class CSRBackend:
    """Immutable compressed-sparse-row storage for one labeled graph.

    Attributes
    ----------
    indptr, indices:
        The CSR arrays: the neighbors of ``v`` are
        ``indices[indptr[v]:indptr[v+1]]``, sorted ascending.
    label_ids, label_table, label_to_id:
        Flat per-vertex label-id array plus the interning tables
        (first-appearance order).
    degree_array:
        Precomputed per-vertex degrees as a numpy array.
    labels:
        The raw label list, indexed by vertex id.
    """

    name = "csr"

    __slots__ = (
        "labels",
        "num_edges",
        "indptr",
        "indices",
        "label_ids",
        "label_table",
        "label_to_id",
        "degree_array",
        "_n",
        "_rows",
        "_degrees",
        "_sets",
    )

    def __init__(self, labels: Sequence[Label], edges: Iterable[Edge] = ()) -> None:
        self.labels: List[Label] = list(labels)
        n = self._n = len(self.labels)
        pairs = normalize_edges(n, edges)
        self.num_edges = len(pairs)
        rows = self._rows = _sorted_rows(n, pairs)
        self._degrees = [len(r) for r in rows]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=indptr[1:])
        self.indptr = indptr
        index_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        self.indices = np.fromiter(
            (v for row in rows for v in row), dtype=index_dtype, count=2 * len(pairs)
        )
        self.degree_array = np.asarray(self._degrees, dtype=np.int64)
        table, to_id, ids = intern_labels(self.labels)
        self.label_table = table
        self.label_to_id = to_id
        self.label_ids = np.asarray(ids, dtype=np.int32)
        # Packed (u, v) keys for the O(1) scalar probe; both orientations so
        # has_edge stays symmetric without a branch.
        # Per-vertex membership sets for the scalar probe: searchsorted pays
        # ~20x Python/numpy call overhead per single lookup, and any packed
        # edge-key scheme pays the packing arithmetic per call; a plain set
        # probe matches the reference backend exactly.
        self._sets: List[Set[int]] = [set(r) for r in rows]

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        label_ids: np.ndarray,
        label_table: Sequence[Label],
        degree_array: np.ndarray,
    ) -> "CSRBackend":
        """Rebuild a backend around existing CSR arrays without renormalizing.

        The attach half of the shared-memory round-trip (see
        :mod:`repro.graph.shared`): the arrays are adopted as-is — typically
        views over ``multiprocessing.shared_memory`` buffers, so the bulk
        topology is zero-copy — and only the Python-level iteration views
        (per-vertex neighbor tuples and membership sets) are rebuilt, one
        O(|V| + |E|) pass paid once per attaching process. The arrays must
        satisfy the constructor's invariants (sorted rows, u < v pairs each
        stored in both directions), which :func:`~repro.graph.shared.
        publish_graph` guarantees by construction.
        """
        backend = cls.__new__(cls)
        n = len(label_ids)
        backend._n = n
        backend.indptr = indptr
        backend.indices = indices
        backend.label_ids = label_ids
        backend.label_table = list(label_table)
        backend.label_to_id = {lab: i for i, lab in enumerate(backend.label_table)}
        backend.labels = [backend.label_table[i] for i in label_ids]
        backend.degree_array = degree_array
        backend.num_edges = len(indices) // 2
        bounds = [int(b) for b in indptr]
        flat = [int(v) for v in indices]
        rows = backend._rows = [
            tuple(flat[bounds[v] : bounds[v + 1]]) for v in range(n)
        ]
        backend._degrees = [len(r) for r in rows]
        backend._sets = [set(r) for r in rows]
        return backend

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    def label(self, v: int) -> Label:
        return self.labels[v]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbor tuple of ``v`` (plain Python ints)."""
        return self._rows[v]

    def neighbors_array(self, v: int) -> np.ndarray:
        """Zero-copy CSR row slice for vectorized consumers."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return self._degrees[v]

    def degree_sequence(self) -> List[int]:
        return list(self._degrees)

    def has_edge(self, u: int, v: int) -> bool:
        """O(1) expected scalar probe (per-vertex hash set)."""
        return v in self._sets[u]

    def has_edge_searchsorted(self, u: int, v: int) -> bool:
        """The pure-CSR scalar probe (binary search in the sorted row)."""
        lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
        i = int(np.searchsorted(self.indices[lo:hi], v))
        return i < hi - lo and int(self.indices[lo + i]) == v

    def has_edges(self, u: int, targets: np.ndarray) -> np.ndarray:
        """Vectorized batch probe: which of ``targets`` are neighbors of ``u``.

        This is the ``searchsorted`` form that actually amortizes numpy call
        overhead — the building block for vectorized join filters.
        """
        row = self.neighbors_array(u)
        targets = np.asarray(targets)
        if row.size == 0:
            return np.zeros(targets.shape, dtype=bool)
        pos = np.searchsorted(row, targets)
        pos_clipped = np.minimum(pos, row.size - 1)
        return (pos < row.size) & (row[pos_clipped] == targets)

    def edges(self) -> Iterator[Edge]:
        """Every undirected edge exactly once as ``(u, v)``, u < v, sorted."""
        for u, row in enumerate(self._rows):
            for v in row:
                if v > u:
                    yield (u, v)


class SetBackend:
    """Reference adjacency-set storage (the library's original substrate).

    Iteration views (``neighbors``/``edges``) are served from sorted tuples
    so determinism matches the CSR backend; membership goes through the
    per-vertex sets, exactly as the seed implementation did.
    """

    name = "set"

    __slots__ = (
        "labels",
        "num_edges",
        "label_table",
        "label_to_id",
        "_label_ids",
        "_n",
        "_sets",
        "_rows",
        "_degrees",
        "_degree_array",
    )

    def __init__(self, labels: Sequence[Label], edges: Iterable[Edge] = ()) -> None:
        self.labels: List[Label] = list(labels)
        n = self._n = len(self.labels)
        pairs = normalize_edges(n, edges)
        self.num_edges = len(pairs)
        rows = self._rows = _sorted_rows(n, pairs)
        self._sets: List[Set[int]] = [set(r) for r in rows]
        self._degrees = [len(r) for r in rows]
        self._degree_array: Optional[np.ndarray] = None
        table, to_id, ids = intern_labels(self.labels)
        self.label_table = table
        self.label_to_id = to_id
        self._label_ids = ids

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def label_ids(self) -> np.ndarray:
        return np.asarray(self._label_ids, dtype=np.int32)

    @property
    def degree_array(self) -> np.ndarray:
        if self._degree_array is None:
            self._degree_array = np.asarray(self._degrees, dtype=np.int64)
        return self._degree_array

    def label(self, v: int) -> Label:
        return self.labels[v]

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbor tuple of ``v``."""
        return self._rows[v]

    def degree(self, v: int) -> int:
        return self._degrees[v]

    def degree_sequence(self) -> List[int]:
        return list(self._degrees)

    def has_edge(self, u: int, v: int) -> bool:
        """O(1) expected set-membership probe."""
        return v in self._sets[u]

    def edges(self) -> Iterator[Edge]:
        for u, row in enumerate(self._rows):
            for v in row:
                if v > u:
                    yield (u, v)


GraphBackend = Union[CSRBackend, SetBackend]
"""Type alias for any registered backend instance."""

_BACKENDS = {"csr": CSRBackend, "set": SetBackend}


def make_backend(
    name: Optional[str], labels: Sequence[Label], edges: Iterable[Edge] = ()
) -> GraphBackend:
    """Construct the named backend (``None`` uses the process default)."""
    return _BACKENDS[resolve_backend_name(name)](labels, edges)
