"""Validation helpers for embeddings and graph invariants.

These functions are the library's ground truth for "is this answer actually
correct": every search algorithm's output is checked against them in the test
suite, and :func:`validate_embedding` is cheap enough to enable in production
via ``DSQLConfig(validate_results=True)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


def validate_embedding(
    graph: LabeledGraph,
    query: QueryGraph,
    mapping: Sequence[int],
) -> None:
    """Assert that ``mapping`` is a subgraph-isomorphism embedding.

    ``mapping[u]`` is the data vertex matched to query node ``u``. The checks
    follow the Section 2 definition exactly:

    1. the mapping is total — one data vertex per query node;
    2. the mapping is injective;
    3. labels agree: ``L_Q(u) == L(mapping[u])``;
    4. every query edge ``(u, u')`` has a data edge
       ``(mapping[u], mapping[u'])``.

    Raises :class:`~repro.exceptions.GraphError` describing the first
    violation found; returns ``None`` on success.
    """
    if len(mapping) != query.size:
        raise GraphError(
            f"embedding has {len(mapping)} entries for a query of {query.size} nodes"
        )
    seen: Dict[int, int] = {}
    for u, v in enumerate(mapping):
        if v not in graph:
            raise GraphError(f"node {u} mapped to nonexistent vertex {v}")
        if v in seen:
            raise GraphError(f"nodes {seen[v]} and {u} both mapped to vertex {v}")
        seen[v] = u
        if graph.label(v) != query.label(u):
            raise GraphError(
                f"label mismatch at node {u}: query label {query.label(u)!r}, "
                f"vertex {v} has {graph.label(v)!r}"
            )
    for u1, u2 in query.edges():
        if not graph.has_edge(mapping[u1], mapping[u2]):
            raise GraphError(
                f"query edge ({u1}, {u2}) has no data edge "
                f"({mapping[u1]}, {mapping[u2]})"
            )


def is_valid_embedding(
    graph: LabeledGraph,
    query: QueryGraph,
    mapping: Sequence[int],
) -> bool:
    """Boolean form of :func:`validate_embedding`."""
    try:
        validate_embedding(graph, query, mapping)
    except GraphError:
        return False
    return True


def embeddings_distinct(embeddings: Iterable[Sequence[int]]) -> bool:
    """Whether all embeddings have pairwise-distinct *vertex sets*.

    The paper only keeps embeddings with distinct vertex sets — duplicated
    vertex sets cannot increase coverage (Section 2).
    """
    seen: set[Tuple[int, ...]] = set()
    for emb in embeddings:
        key = tuple(sorted(emb))
        if key in seen:
            return False
        seen.add(key)
    return True


def embeddings_pairwise_disjoint(embeddings: Iterable[Sequence[int]]) -> bool:
    """Whether no vertex appears in two embeddings (level-0 invariant)."""
    seen: set[int] = set()
    for emb in embeddings:
        for v in emb:
            if v in seen:
                return False
            seen.add(v)
    return True
