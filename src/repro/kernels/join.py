"""The three join kernels and their selection constants.

All kernels operate on the two per-graph adjacency encodings exposed by
:class:`~repro.indexes.graph_cache.GraphIndexCache`:

* **sorted adjacency slices** — the backend's ascending neighbor tuples
  (:meth:`~repro.indexes.graph_cache.GraphIndexCache.adjacency_slice`);
* **neighbor bitsets** — Python big-int masks with bit ``v`` set per
  neighbor ``v`` (:meth:`~repro.indexes.graph_cache.GraphIndexCache.
  adjacency_mask`). Arbitrary-precision ints make the AND of two masks one
  C-level word sweep regardless of vertex count.

Every kernel returns vertices in **ascending id order** — exactly the order
the scalar paths produce (label buckets, CSR rows, and candidate pools are
all sorted) — which is what makes them drop-in replacements under the
bit-identity contract.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Sequence

GALLOP_RATIO = 8
"""Size ratio at which :func:`intersect_sorted` switches from the merge
regime to galloping binary search.

With ``|b| >= GALLOP_RATIO * |a|`` the ``|a| * log |b|`` bisect probes beat
scanning (or hashing) the long side; below it the hash-merge regime wins
because CPython's set probes are cheaper than Python-level binary search
bookkeeping.
"""

BITSET_MIN_POOL = 64
"""Minimum candidate-pool size for a compiled plan to pick the bitset
kernel for a search depth.

Below this, the fixed cost of fetching and ANDing the neighbor bitsets is
not amortized over enough candidates; the merge kernel (or a plain scan)
is cheaper. See ``docs/performance.md`` for the full heuristic.
"""

SCAN = "scan"
"""Kernel kind: iterate a full candidate pool (depths with no matched
query neighbor — nothing to intersect against)."""

MERGE = "merge"
"""Kernel kind: sorted-sequence intersection (:func:`intersect_sorted`,
which itself crosses over to galloping on skewed sizes)."""

BITSET = "bitset"
"""Kernel kind: big-int AND of neighbor bitsets, members enumerated or
probed bit-by-bit."""

SCALAR = "scalar"
"""Kernel kind: the seed per-neighbor ``has_edge`` probe loop (the
fallback when too few query neighbors are matched to amortize a kernel)."""

CBITSET = "cbitset"
"""Kernel kind: big-int AND over twin-**class** bitsets (compression-enabled
plans only). The join constraint is folded at ``num_classes`` bits instead
of ``num_vertices`` and admitted classes expand to their sorted members, so
the per-frame mask work shrinks by the compression ratio while the emitted
vertex list stays byte-equal to :data:`BITSET`'s."""

CBITSET_MAX_RATIO = 0.75
"""Maximum ``num_classes(pool) / len(pool)`` for a compression-enabled plan
to upgrade a :data:`BITSET` depth to :data:`CBITSET`.

Near 1.0 the pool has almost no twins, so folding class masks plus the
member-merge costs more than the plain vertex-bitset AND; the cutoff keeps
compiled plans on :data:`BITSET` for low-redundancy graphs, which is what
bounds the interleaved A/A overhead gate in ``BENCH_compression.json``.
"""

KERNEL_KINDS = (SCAN, MERGE, BITSET, SCALAR, CBITSET)
"""Every kernel kind, as reported by the ``kernel.dispatch.*`` counters."""


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Intersection of two ascending sequences, returned ascending.

    Two regimes, crossed over on the size ratio (:data:`GALLOP_RATIO`):

    * **merge** — probe each element of the smaller side against a hash of
      the larger (the fastest merge substitute in CPython: membership tests
      run in C while a hand-written two-pointer merge pays per-element
      interpreter overhead);
    * **gallop** — when one side is much larger, binary-search each element
      of the smaller side into the larger with a moving lower bound, so the
      cost is ``|small| * log |large|`` and never touches most of the long
      side.

    Both inputs must be strictly ascending (the repo-wide invariant for
    adjacency rows and candidate pools); the result then equals the seed's
    filter-by-membership lists element for element.
    """
    if not a or not b:
        return []
    if len(a) > len(b):
        a, b = b, a
    if len(b) >= GALLOP_RATIO * len(a):
        out: List[int] = []
        lo, hi = 0, len(b)
        for v in a:
            lo = bisect_left(b, v, lo, hi)
            if lo == hi:
                break
            if b[lo] == v:
                out.append(v)
                lo += 1
        return out
    bset = set(b)
    return [v for v in a if v in bset]


def bitset_of(vertices: Iterable[int]) -> int:
    """Big-int bitset with bit ``v`` set for every vertex in ``vertices``."""
    mask = 0
    for v in vertices:
        mask |= 1 << v
    return mask


def bitset_members(mask: int) -> List[int]:
    """Set bit positions of ``mask``, ascending (lowest-set-bit extraction)."""
    out: List[int] = []
    while mask:
        lsb = mask & -mask
        out.append(lsb.bit_length() - 1)
        mask ^= lsb
    return out


def bitset_and_members(*masks: int) -> List[int]:
    """Members of the AND of one or more bitsets, ascending.

    ``bitset_and_members(adj(v1), adj(v2), cand_mask)`` is the vertex list
    adjacent to both ``v1`` and ``v2`` and inside the candidate pool — one
    call replacing a set-intersection chain plus a sort.
    """
    if not masks:
        return []
    mask = masks[0]
    for other in masks[1:]:
        mask &= other
        if not mask:
            return []
    return bitset_members(mask)


def joinable_kernel(masks: Sequence[int]) -> int:
    """AND of adjacency bitsets — the combined join constraint.

    Bit ``v`` of the result is set iff ``v`` is adjacent to *every* vertex
    whose mask was passed, so one precomputed result per search frame
    replaces the per-candidate ``has_edge`` loop: the per-candidate test
    collapses to ``mask >> v & 1``. An empty ``masks`` returns ``-1``
    (all-ones, the AND identity) — callers dispatch that case to the plain
    injectivity check instead of probing an unbounded mask.
    """
    out = -1
    for m in masks:
        out &= m
    return out
