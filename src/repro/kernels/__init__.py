"""Join kernels for the enumeration hot path.

Every embedding the engines emit is paid for in two inner loops: the
per-candidate ``has_edge`` probe loop of the joinable test and the
per-level list/set intersections that build candidate pools (``Rcand``,
``TcandS``). This package rewrites both as *adjacency intersections* —
the formulation of the paper's localized search (Section 5.1) — with three
kernels that all emit vertices in ascending id order, so swapping them in
for the scalar paths changes nothing observable (the bit-identity contract
pinned by ``tests/property/test_plan_equivalence.py``).

See ``docs/performance.md`` for the selection heuristic and the measured
speedups (``benchmarks/bench_join_kernels.py`` / ``BENCH_join.json``).
"""

from repro.kernels.join import (
    BITSET,
    BITSET_MIN_POOL,
    CBITSET,
    CBITSET_MAX_RATIO,
    GALLOP_RATIO,
    KERNEL_KINDS,
    MERGE,
    SCALAR,
    SCAN,
    bitset_and_members,
    bitset_members,
    bitset_of,
    intersect_sorted,
    joinable_kernel,
)

__all__ = [
    "BITSET",
    "BITSET_MIN_POOL",
    "CBITSET",
    "CBITSET_MAX_RATIO",
    "GALLOP_RATIO",
    "KERNEL_KINDS",
    "MERGE",
    "SCALAR",
    "SCAN",
    "bitset_and_members",
    "bitset_members",
    "bitset_of",
    "intersect_sorted",
    "joinable_kernel",
]
