"""Online EWMA calibration of the raw cost model, plus table persistence.

The raw estimator (:mod:`repro.cost.estimator`) is a static model: it
knows pool sizes and degree distributions but not the constant factors of
the engine (kernel mix, early termination at ``k`` embeddings, budget
truncation). Those factors are graph- and workload-dependent but fairly
stable, which makes them a good fit for online correction: after every
executed query we observe ``ln(actual / raw_estimate)`` and fold it into
an exponentially weighted moving average. ``exp(ewma)`` is then the
multiplicative calibration factor applied to future raw estimates.

A second EWMA tracks the *absolute* log error, which drives the width of
the confidence band reported with every estimate — a freshly built (or
badly mispredicting) calibration yields a wide band, a converged one a
tight band.

State is three floats + a counter per graph, so the whole table
serializes to a tiny JSON document that the service catalog can persist
across restarts (``save_calibration`` / ``load_calibration``).
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "CalibrationState",
    "EwmaCalibration",
    "save_calibration",
    "load_calibration",
    "DEFAULT_EWMA_ALPHA",
]

# Smoothing for both EWMAs. 0.25 reaches ~90% of a level shift within
# eight observations — fast enough to converge inside one benchmark pass,
# slow enough that a single outlier query cannot whipsaw the factor.
DEFAULT_EWMA_ALPHA = 0.25

# Band geometry: band = clamp(exp(BAND_SCALE * ewma_abs_log_err), lo, hi).
# The initial abs-log-error seeds an 8x band for an uncalibrated graph.
_BAND_SCALE = 1.5
_BAND_MIN = 2.0
_BAND_MAX = 64.0
_INITIAL_ABS_LOG_ERR = math.log(8.0) / _BAND_SCALE

# Both observed quantities are offset by +1 before the log so that
# zero-work queries (empty frontier, memo replays of trivial searches)
# stay finite instead of poisoning the average.
_LOG_OFFSET = 1.0


@dataclass
class CalibrationState:
    """Plain serializable snapshot of one graph's calibration."""

    log_bias: float = 0.0
    abs_log_err: float = _INITIAL_ABS_LOG_ERR
    observations: int = 0

    def to_dict(self) -> Dict[str, float]:
        return {
            "log_bias": self.log_bias,
            "abs_log_err": self.abs_log_err,
            "observations": self.observations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "CalibrationState":
        state = cls()
        state.log_bias = float(data.get("log_bias", 0.0))
        state.abs_log_err = float(data.get("abs_log_err", _INITIAL_ABS_LOG_ERR))
        state.observations = int(data.get("observations", 0))
        if not math.isfinite(state.log_bias):
            state.log_bias = 0.0
        if not math.isfinite(state.abs_log_err) or state.abs_log_err < 0:
            state.abs_log_err = _INITIAL_ABS_LOG_ERR
        if state.observations < 0:
            state.observations = 0
        return state


class EwmaCalibration:
    """Thread-safe EWMA over the log estimation error of one graph."""

    __slots__ = ("_alpha", "_state", "_lock")

    def __init__(self, alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._state = CalibrationState()
        self._lock = threading.Lock()

    @property
    def factor(self) -> float:
        """Multiplicative correction applied to raw estimates."""
        with self._lock:
            return math.exp(self._state.log_bias)

    @property
    def band(self) -> float:
        """Multiplicative half-width of the confidence band (>= 1)."""
        with self._lock:
            return self._band_locked()

    @property
    def observations(self) -> int:
        with self._lock:
            return self._state.observations

    def _band_locked(self) -> float:
        raw = math.exp(_BAND_SCALE * self._state.abs_log_err)
        return min(_BAND_MAX, max(_BAND_MIN, raw))

    def observe(self, raw_estimate: float, actual: float) -> float:
        """Fold one (raw estimate, actual work) pair into the average.

        Returns the signed log error of this observation. Non-finite or
        negative inputs are ignored (returns 0.0) so a pathological
        caller cannot corrupt the table.
        """
        if not (math.isfinite(raw_estimate) and math.isfinite(actual)):
            return 0.0
        if raw_estimate < 0 or actual < 0:
            return 0.0
        err = math.log(actual + _LOG_OFFSET) - math.log(raw_estimate + _LOG_OFFSET)
        with self._lock:
            state = self._state
            a = self._alpha
            if state.observations == 0:
                state.log_bias = err
                state.abs_log_err = abs(err)
            else:
                state.log_bias = (1.0 - a) * state.log_bias + a * err
                state.abs_log_err = (1.0 - a) * state.abs_log_err + a * abs(err)
            state.observations += 1
        return err

    def snapshot(self) -> CalibrationState:
        with self._lock:
            return CalibrationState(
                log_bias=self._state.log_bias,
                abs_log_err=self._state.abs_log_err,
                observations=self._state.observations,
            )

    def restore(self, state: CalibrationState) -> None:
        with self._lock:
            self._state = CalibrationState(
                log_bias=state.log_bias,
                abs_log_err=state.abs_log_err,
                observations=state.observations,
            )


# ----------------------------------------------------------------------
# Table persistence: {graph name -> CalibrationState} as JSON.
# ----------------------------------------------------------------------
_TABLE_VERSION = 1


def save_calibration(path: Union[str, Path], table: Dict[str, CalibrationState]) -> None:
    """Write a calibration table atomically (write-then-rename)."""
    target = Path(path)
    payload = {
        "version": _TABLE_VERSION,
        "graphs": {name: state.to_dict() for name, state in sorted(table.items())},
    }
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    tmp.replace(target)


def load_calibration(path: Union[str, Path]) -> Optional[Dict[str, CalibrationState]]:
    """Read a calibration table; ``None`` if missing or unreadable.

    A stale or corrupt table must never prevent the service from starting
    — calibration is an optimization, so any parse problem degrades to
    "start uncalibrated".
    """
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != _TABLE_VERSION:
        return None
    graphs = payload.get("graphs")
    if not isinstance(graphs, dict):
        return None
    table: Dict[str, CalibrationState] = {}
    for name, data in graphs.items():
        if isinstance(data, dict):
            table[str(name)] = CalibrationState.from_dict(data)
    return table
