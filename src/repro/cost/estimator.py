"""Static per-plan cost model: expected engine charges before the search runs.

The model follows the color-coding path-count estimation recipe
("Subgraph Counting: Color Coding Beyond Trees", PAPERS.md) — expected
per-depth frontier sizes as a product of per-join selectivities under the
configuration-model edge probability ``P(x ~ y) ≈ deg(x)·deg(y) / 2|E|``
— but is shaped around how :class:`~repro.core.search.LevelSearchEngine`
actually charges ``SearchStats.nodes_expanded``:

* charges are per candidate *considered* (the localized
  ``neighbors(father) ∩ pool`` row), not per surviving join, so the
  per-depth term is the expected row length, with the remaining backward
  joins only thinning the next depth's frames;
* the per-root DFS stops at its **first** embedding, so when embeddings
  are abundant a root costs ``~C/E`` rather than its full subtree ``C``;
* level 0 stops after ``k`` accepted embeddings, so only
  ``~k / P(root succeeds)`` roots are ever charged;
* when the *disjoint-embedding supply* runs out before ``k`` (some pool
  smaller than ``k``, or roots rarely succeed), Phase 1 escalates to the
  overlap levels of Algorithm 3, whose cost scales with the total
  candidate-pool mass.

Everything the model reads — pool sizes, search order, backward tuples,
the graph's degree array — is already on the compiled
:class:`~repro.indexes.plans.QueryPlan` and its
:class:`~repro.indexes.graph_cache.GraphIndexCache`; the ``k``-independent
part is memoized on the plan (free after compile). One estimated charge is
one **work unit**, the currency the service's work-unit admission
controller and the per-client token buckets price requests in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cost.calibration import CalibrationState, EwmaCalibration

__all__ = [
    "CostEstimate",
    "CostEstimator",
    "CostProfile",
    "raw_cost_profile",
    "raw_expansions",
    "derive_time_budget_ms",
    "DEFAULT_K",
    "DEFAULT_FRONTIER_CAP",
    "DEFAULT_WORK_UNIT_RATE",
    "DEFAULT_AUTO_BUDGET_FLOOR_MS",
    "DEFAULT_AUTO_BUDGET_HEADROOM",
]

DEFAULT_K = 40
"""Result-set size assumed when the caller does not supply ``k`` (matches
the benchmark suite's default diversified top-k)."""

DEFAULT_FRONTIER_CAP = 1e9
"""Per-depth frontier ceiling: joins on dense pools can push the raw
product far past anything the engine would ever touch; the cap keeps
estimates finite and keeps one absurd depth from erasing the ranking
signal of the rest of the plan."""

_EMBEDDING_CAP = 1e12
"""Separate (higher) cap for the expected-embedding product, which only
ever appears in denominators."""

_MIN_BRANCH = 1e-3
"""Floor on per-depth branching: a zero expectation would zero out every
later depth, but the engine still charges the row scans that prove it."""

DEFAULT_WORK_UNIT_RATE = 200.0
"""Default engine throughput assumed by auto budgets, in work units
(candidate charges) per millisecond. Deliberately conservative for the
pure-Python kernels; measure with ``repro-dsql estimate --execute`` and
override via ``DSQLConfig.work_unit_rate`` for real deployments."""

DEFAULT_AUTO_BUDGET_FLOOR_MS = 50.0
"""Auto-derived deadlines never drop below this floor, so estimation
noise on genuinely tiny queries cannot truncate them."""

DEFAULT_AUTO_BUDGET_HEADROOM = 4.0
"""Auto budgets allow this multiple of the band's upper edge before the
deadline fires — the budget exists to stop runaways, not to shave p50."""

_OVERLAP_MASS_WEIGHT = 0.5
"""Weight of the pool-mass term modeling the overlap levels (Algorithm 3
levels ≥ 1), applied in proportion to the disjoint-supply deficit."""


@dataclass(frozen=True)
class CostProfile:
    """The ``k``-independent part of a plan's cost model (memoized on the
    plan). All expectations are *per root candidate* of ``order[0]``.

    ``charges_per_root`` is the expected number of engine charges to
    exhaust one root's subtree; ``embeddings_per_root`` the expected
    number of embeddings under one root; ``per_depth_frames`` the expected
    surviving frames per depth (diagnostic, used by the CLI).
    """

    empty: bool
    depth: int
    root_pool: int
    min_pool: int
    pool_mass: int
    charges_per_root: float
    embeddings_per_root: float
    per_depth_frames: Tuple[float, ...]


@dataclass(frozen=True)
class CostEstimate:
    """One plan's estimated cost, in engine work units (charges).

    ``work_units`` is the calibrated point estimate; ``lower``/``upper``
    bound it by the calibration's multiplicative confidence band.
    ``raw_expansions`` is the uncalibrated model output — the quantity
    calibration observations must be keyed to.
    """

    work_units: float
    raw_expansions: float
    lower: float
    upper: float
    k: int
    per_depth: Tuple[float, ...]
    calibration_factor: float
    observations: int

    @property
    def is_free(self) -> bool:
        """True when the model proves the search cannot expand anything
        (some candidate pool is empty) — such queries admit for free."""
        return self.work_units <= 0.0

    def to_wire(self) -> Dict[str, float]:
        """JSON-friendly form echoed in service responses."""
        return {
            "work_units": round(self.work_units, 3),
            "lower": round(self.lower, 3),
            "upper": round(self.upper, 3),
            "calibration_factor": round(self.calibration_factor, 6),
            "observations": self.observations,
        }


def raw_cost_profile(plan, cache, frontier_cap: float = DEFAULT_FRONTIER_CAP) -> CostProfile:
    """The ``k``-independent cost profile of a compiled plan.

    If any candidate pool is empty the profile is marked ``empty``: the
    level-wise search cannot produce an embedding and terminates without
    charging meaningful work, and the admission layer must not tax such
    queries (estimate 0 ⇒ admit free).
    """
    order = plan.order
    pools = plan.pools
    depth = len(order)
    if not order or any(not p for p in pools):
        return CostProfile(
            empty=True,
            depth=depth,
            root_pool=0,
            min_pool=0,
            pool_mass=0,
            charges_per_root=0.0,
            embeddings_per_root=0.0,
            per_depth_frames=(0.0,) * depth,
        )

    degree_array = cache.degree_array
    two_m = max(1.0, 2.0 * float(cache.graph.num_edges))
    mean_deg = [
        float(np.mean(degree_array[np.asarray(pool, dtype=np.int64)])) for pool in pools
    ]

    frames = 1.0
    charges = 0.0
    embeddings = 1.0
    per_depth = [1.0]
    for d in range(1, depth):
        u = order[d]
        backward = plan.backward[d]
        father = backward[0]
        # Expected localized row |neighbors(v_father) ∩ pool(u)|: the
        # father's degree times the degree-biased membership probability.
        row = mean_deg[father] * len(pools[u]) * mean_deg[u] / two_m
        row = max(min(row, float(len(pools[u]))), _MIN_BRANCH)
        # The remaining backward joins are per-candidate tests: they do
        # not reduce charges at this depth, only the frames that survive.
        survive = 1.0
        for w in backward[1:]:
            survive *= min(1.0, mean_deg[u] * mean_deg[w] / two_m)
        branch = row * survive
        charges += frames * row
        frames = min(frames * branch, frontier_cap)
        embeddings = min(embeddings * branch, _EMBEDDING_CAP)
        per_depth.append(frames)

    return CostProfile(
        empty=False,
        depth=depth,
        root_pool=len(pools[order[0]]),
        min_pool=min(len(p) for p in pools),
        pool_mass=sum(len(p) for p in pools),
        charges_per_root=charges,
        embeddings_per_root=embeddings,
        per_depth_frames=tuple(per_depth),
    )


def raw_expansions(profile: CostProfile, k: int) -> float:
    """Fold ``k`` into a profile: expected total engine charges.

    Models the three regimes of Phase 1 (module docstring): root scan +
    first-success DFS per root, early termination once ``k`` roots
    succeed, and the overlap-level escalation (pool-mass term) in
    proportion to the disjoint-supply deficit.
    """
    if profile.empty:
        return 0.0
    q = profile.depth
    k = max(1, int(k))
    success = min(1.0, profile.embeddings_per_root)
    root_pool = float(profile.root_pool)
    # Roots charged before k embeddings are found (all of them when
    # success is rare enough that the pool is exhausted first).
    roots = min(root_pool, k / max(success, k / root_pool))
    # A successful root stops at its first embedding (~C/E of its
    # subtree); a failing root pays for the full exhaustion proof.
    per_root = (
        profile.charges_per_root
        * min(1.0, 1.0 / max(profile.embeddings_per_root, 1e-12))
        + q
    )
    estimate = roots * (1.0 + per_root) + 2.0 ** min(q, 12)
    # Disjoint-supply deficit: embeddings level 0 cannot deliver are
    # hunted through the overlap levels, whose combination machinery
    # rescans candidate pools.
    supply = min(float(profile.min_pool), root_pool * max(success, 1e-12) * q)
    deficit = max(0.0, k - min(float(k), supply))
    estimate += _OVERLAP_MASS_WEIGHT * (deficit / k) * profile.pool_mass
    return estimate


class CostEstimator:
    """Per-graph estimator: raw model + online calibration + metrics.

    One instance lives on each :class:`GraphIndexCache` (created lazily,
    like the plan cache) so every session, executor, and service handler
    sharing the graph also shares the calibration state.
    """

    __slots__ = ("_cache", "_calibration", "_frontier_cap", "_metrics", "_metrics_name")

    def __init__(self, cache, frontier_cap: float = DEFAULT_FRONTIER_CAP) -> None:
        self._cache = cache
        self._calibration = EwmaCalibration()
        self._frontier_cap = frontier_cap
        self._metrics = None
        self._metrics_name: Optional[str] = None

    # -- estimation ----------------------------------------------------
    def estimate(self, plan, k: Optional[int] = None) -> CostEstimate:
        """Calibrated cost estimate for a compiled plan at result size ``k``.

        The ``k``-independent profile is memoized on the plan itself
        (free after compile); only the ``k`` fold, the calibration factor,
        and the band are re-computed per call, so long-lived cached plans
        still see fresh calibration.
        """
        profile = plan.cost_profile(self._build_profile)
        raw = raw_expansions(profile, DEFAULT_K if k is None else k)
        calibration = self._calibration
        factor = calibration.factor
        band = calibration.band
        point = raw * factor
        estimate = CostEstimate(
            work_units=point,
            raw_expansions=raw,
            lower=point / band,
            upper=point * band,
            k=DEFAULT_K if k is None else int(k),
            per_depth=profile.per_depth_frames,
            calibration_factor=factor,
            observations=calibration.observations,
        )
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(self._metric("cost.estimates")).inc()
        return estimate

    def _build_profile(self, plan) -> CostProfile:
        return raw_cost_profile(plan, self._cache, self._frontier_cap)

    # -- calibration ---------------------------------------------------
    def observe(self, estimate: CostEstimate, actual_expansions: float) -> None:
        """Feed one executed query's actual work back into calibration."""
        err = self._calibration.observe(estimate.raw_expansions, actual_expansions)
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(self._metric("cost.calibration.observations")).inc()
            metrics.gauge(self._metric("cost.calibration.factor")).set(
                self._calibration.factor
            )
            metrics.histogram(
                self._metric("cost.calibration.abs_log_error"),
                buckets=(0.25, 0.5, 1.0, 2.0, 4.0),
            ).observe(abs(err))

    @property
    def calibration(self) -> EwmaCalibration:
        return self._calibration

    def snapshot(self) -> CalibrationState:
        return self._calibration.snapshot()

    def restore(self, state: CalibrationState) -> None:
        self._calibration.restore(state)

    # -- observability -------------------------------------------------
    def attach_metrics(self, registry, name: Optional[str] = None) -> None:
        """Publish ``cost.*`` metrics; ``name`` suffixes them per graph
        (the service catalog shares one registry across graphs)."""
        self._metrics = registry
        self._metrics_name = name

    def _metric(self, base: str) -> str:
        if self._metrics_name:
            return f"{base}.{self._metrics_name}"
        return base

    def describe(self) -> Dict[str, float]:
        """Health-endpoint summary of the calibration state."""
        state = self._calibration.snapshot()
        return {
            "calibration_factor": math.exp(state.log_bias),
            "observations": state.observations,
            "band": self._calibration.band,
        }


def derive_time_budget_ms(
    estimate: CostEstimate,
    work_unit_rate: float,
    floor_ms: float = DEFAULT_AUTO_BUDGET_FLOOR_MS,
    headroom: float = DEFAULT_AUTO_BUDGET_HEADROOM,
) -> float:
    """Auto-derived deadline for one query, in milliseconds.

    Uses the *upper* edge of the confidence band times a headroom factor:
    an auto budget should only ever truncate queries the model is
    confident are runaways, so under-estimation risk is absorbed twice
    (band, then headroom) before the ``DeadlineExceeded`` machinery can
    cut a legitimate query short.
    """
    if work_unit_rate <= 0:
        raise ValueError(f"work_unit_rate must be positive, got {work_unit_rate}")
    upper = max(estimate.upper, estimate.work_units)
    return max(float(floor_ms), headroom * upper / work_unit_rate)
