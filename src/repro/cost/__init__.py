"""repro.cost — cardinality/cost estimation for diversified subgraph queries.

The service front admits by *request count*, but one dense-pool DSQ query
costs ~10000x a cheap one; pricing admission, deadlines, and quotas in a
common currency needs a per-query **cost estimate** that is available
*before* the search runs. Everything such an estimate needs is already
computed and cached on the compiled :class:`~repro.indexes.plans.QueryPlan`
— candidate-pool sizes, the search order, the per-depth backward-neighbor
tuples — so estimation is a cheap fold over the plan, memoized on the plan
itself (free after compile).

Pieces:

* :class:`CostEstimator` / :class:`CostEstimate`
  (:mod:`repro.cost.estimator`) — color-coding-style expected per-depth
  frontier sizes ("Subgraph Counting: Color Coding Beyond Trees",
  PAPERS.md): a product of per-join selectivities under a
  configuration-model edge probability, with a per-depth frontier cap.
  Returns estimated expansions (= *work units*, the admission currency)
  plus a multiplicative confidence band.
* :class:`EwmaCalibration` (:mod:`repro.cost.calibration`) — after every
  executed query the actual ``SearchStats.nodes_expanded`` feeds a
  per-graph EWMA over the log estimation error, so the estimator
  self-corrects online; the table persists/restores with the service
  catalog (``save_calibration`` / ``load_calibration``).
* :func:`derive_time_budget_ms` — auto-derived deadlines: when
  ``DSQLConfig.time_budget_ms`` is unset and ``auto_time_budget`` is on,
  the estimate and a configurable unit-rate bound the query via the
  existing ``DeadlineExceeded`` machinery.

The work-unit *admission* seam built on these estimates lives with the
service (:mod:`repro.service.admission`); ``docs/cost.md`` documents the
math, the calibration lifecycle, and the tuning knobs.
"""

from repro.cost.calibration import (
    CalibrationState,
    EwmaCalibration,
    load_calibration,
    save_calibration,
)
from repro.cost.estimator import (
    DEFAULT_AUTO_BUDGET_FLOOR_MS,
    DEFAULT_AUTO_BUDGET_HEADROOM,
    DEFAULT_FRONTIER_CAP,
    DEFAULT_K,
    DEFAULT_WORK_UNIT_RATE,
    CostEstimate,
    CostEstimator,
    CostProfile,
    derive_time_budget_ms,
    raw_cost_profile,
    raw_expansions,
)

__all__ = [
    "CostEstimate",
    "CostEstimator",
    "CostProfile",
    "CalibrationState",
    "EwmaCalibration",
    "raw_cost_profile",
    "raw_expansions",
    "derive_time_budget_ms",
    "save_calibration",
    "load_calibration",
    "DEFAULT_K",
    "DEFAULT_FRONTIER_CAP",
    "DEFAULT_WORK_UNIT_RATE",
    "DEFAULT_AUTO_BUDGET_FLOOR_MS",
    "DEFAULT_AUTO_BUDGET_HEADROOM",
]
