"""Pre-forked multi-worker service front over shared graph memory.

One :class:`MultiWorkerServer` turns a warm
:class:`~repro.service.catalog.GraphCatalog` into ``N`` worker *processes*
answering on a single port:

* the parent **publishes** every catalog graph to shared memory
  (:func:`~repro.graph.shared.publish_graph`) — CSR arrays, adjacency
  bitmasks, label index — and forks the workers afterwards, so all of them
  map the same physical pages instead of copying the graph N times;
* each worker **attaches** the published segments, builds its own
  :class:`~repro.service.catalog.GraphCatalog` /
  :class:`~repro.service.server.QueryService` (private plan caches, memo,
  metrics registry), and binds the shared query port with ``SO_REUSEPORT``
  — the kernel load-balances incoming connections across the workers with
  no userspace dispatcher on the request path;
* every worker also runs a loopback **admin server** (same endpoints, its
  private address) and reports it to the parent over a pipe; the parent's
  **control server** serves a merged view — ``GET /healthz`` and
  ``GET /metrics`` fan out to all workers and aggregate (scalar metrics are
  summed via :func:`~repro.observability.metrics.merge_snapshots`).

Lifecycle: ``start()`` publishes, forks, and waits for every worker's
ready message; ``close()`` (or SIGTERM via ``install_signal_handlers``)
asks each worker to drain over its pipe, joins it, then unlinks the shared
segments. A worker that lost its parent sees EOF on the pipe and drains
itself, so orphaned workers cannot leak segments past process exit.

Requires ``SO_REUSEPORT`` and the ``fork`` start method (Linux and most
BSDs); construction raises :class:`~repro.exceptions.ConfigError`
elsewhere — the single-process :class:`~repro.service.server.ServiceServer`
remains the portable path.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import signal
import socket
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigError, SharedMemoryError
from repro.graph.shared import PublishedGraph, attach_graph, publish_graph
from repro.observability import Instrumentation
from repro.observability.metrics import merge_snapshots
from repro.service.catalog import GraphCatalog
from repro.service.server import (
    DEFAULT_MAX_IN_FLIGHT,
    DEFAULT_MAX_QUEUE,
    DEFAULT_RETRY_AFTER_S,
    QueryService,
    ServiceServer,
)

logger = logging.getLogger("repro.service")

_READY_TIMEOUT_S = 60.0
_FETCH_TIMEOUT_S = 5.0
_JOIN_TIMEOUT_S = 10.0


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    index: int,
    host: str,
    port: int,
    published: List[Tuple[str, object, str]],
    default_config,
    max_in_flight: int,
    max_queue: int,
    retry_after_s: float,
    service_options: Dict[str, object],
    conn,
) -> None:
    """One pre-forked worker: attach, serve on the shared port, drain on demand."""
    # The parent coordinates shutdown through the pipe; a terminal SIGINT
    # (Ctrl-C hits the whole foreground process group) must not kill the
    # worker before the parent's drain message arrives.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    attachments = []
    front = admin = None
    try:
        catalog = GraphCatalog(
            default_config=default_config, instrumentation=Instrumentation()
        )
        for name, descriptor, source in published:
            attachment = attach_graph(descriptor)
            attachments.append(attachment)
            catalog.add_graph(name, attachment.graph, source=source)
        # Workers serve *attached* shared-memory graphs: a write applied in
        # one worker would be invisible to its siblings behind the same
        # port, so the whole front is read-only (501 mutation_unsupported).
        # service_options threads the admission-mode / quota / access-log
        # knobs through verbatim (every worker prices and logs its own
        # share of the kernel-balanced traffic; the access log file is
        # append-mode, so concurrent workers interleave whole lines).
        service = QueryService(
            catalog,
            max_in_flight=max_in_flight,
            max_queue=max_queue,
            retry_after_s=retry_after_s,
            identity={"role": "worker", "worker": index, "pid": os.getpid()},
            allow_mutations=False,
            **service_options,
        )
        front = ServiceServer(service, host=host, port=port, reuse_port=True).start()
        admin = ServiceServer(service, host="127.0.0.1", port=0).start()
        conn.send(
            ("ready", {"worker": index, "pid": os.getpid(), "admin_url": admin.url})
        )
    except Exception as exc:  # pragma: no cover - startup failures are terminal
        logger.exception("worker %d failed to start", index)
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
        return
    try:
        # Block until the parent requests a drain; EOF means the parent is
        # gone and the worker must drain itself.
        conn.recv()
    except (EOFError, OSError):
        pass
    front.close()
    if admin is not None:
        admin.close()
    for attachment in attachments:
        try:
            attachment.close()
        except SharedMemoryError:
            # The drained catalog/service still reference the attached
            # graph; the mapping dies with this process anyway, and the
            # parent owns the unlink.
            logger.debug("worker %d: attachment still referenced at exit", index)
    try:
        conn.send(("closed", index))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent already gone
        pass
    conn.close()
    # Skip interpreter-shutdown GC: any attachment the live catalog kept
    # referenced above would emit an ignored BufferError from
    # SharedMemory.__del__ during teardown. The mappings die with the
    # process either way, and the parent owns the segment unlink.
    os._exit(0)


# ----------------------------------------------------------------------
# Parent control server
# ----------------------------------------------------------------------
class _ControlHandler(BaseHTTPRequestHandler):
    """Merged-view endpoints on the parent; ``front`` bound per server."""

    front: "MultiWorkerServer"
    server_version = "repro-service-control"
    timeout = 30.0

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        logger.debug("%s %s", self.address_string(), format % args)

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            status, body = self.front.merged_healthz()
        elif path == "/metrics":
            status, body = 200, self.front.merged_metrics()
        else:
            status = 404
            body = {"error": "unknown_endpoint", "message": f"no such endpoint: GET {path}"}
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class _ControlHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def handle_error(self, request, client_address):  # pragma: no cover - client aborts
        logger.warning("control: error handling %s", client_address, exc_info=True)


def _fetch_json(url: str) -> Tuple[Optional[int], Dict[str, object]]:
    """GET a worker admin endpoint; errors become a reportable body."""
    try:
        with urllib.request.urlopen(url, timeout=_FETCH_TIMEOUT_S) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read().decode("utf-8"))
        except Exception:  # pragma: no cover - malformed error body
            return exc.code, {"error": "bad_response", "message": str(exc)}
    except Exception as exc:
        return None, {"error": "unreachable", "message": f"{type(exc).__name__}: {exc}"}


class MultiWorkerServer:
    """N pre-forked workers behind one SO_REUSEPORT-balanced port.

    Parameters
    ----------
    catalog:
        The warm catalog whose graphs are published; the parent keeps it
        only as the publication source — requests are answered by the
        workers' attached copies.
    workers:
        Worker-process count (>= 1).
    host, port:
        The shared query address; ``port=0`` picks an ephemeral port, which
        the parent reserves with a placeholder ``SO_REUSEPORT`` socket
        before any worker binds.

    Usage::

        front = MultiWorkerServer(catalog, workers=4).start()
        ... requests against front.url, merged views at front.control_url ...
        front.close()
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        service_options: Optional[Dict[str, object]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ConfigError("SO_REUSEPORT is not available on this platform")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform-dependent
            raise ConfigError(
                "the fork start method is required for pre-forked workers"
            ) from None
        self.catalog = catalog
        self.workers = workers
        self.host = host
        self._requested_port = port
        self._max_in_flight = max_in_flight
        self._max_queue = max_queue
        self._retry_after_s = retry_after_s
        # Extra QueryService kwargs shipped to every worker (admission
        # mode, work-unit budget, per-client quotas, access-log path).
        self._service_options = dict(service_options or {})
        self._published: List[Tuple[str, PublishedGraph]] = []
        self._placeholder: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._processes: List = []
        self._pipes: List = []
        self.worker_info: List[Dict[str, object]] = []
        self._control: Optional[_ControlHTTPServer] = None
        self._started = False
        self._close_lock = threading.Lock()
        self._closed = False

    # -- addresses -----------------------------------------------------
    @property
    def url(self) -> str:
        """The shared, kernel-balanced query URL."""
        return f"http://{self.host}:{self._port}"

    @property
    def control_url(self) -> str:
        """The parent's merged /healthz + /metrics URL."""
        host, port = self._control.server_address[:2]
        return f"http://{host}:{port}"

    # -- startup -------------------------------------------------------
    def start(self) -> "MultiWorkerServer":
        """Publish, fork the workers, await readiness, start the control server."""
        try:
            return self._start()
        except Exception:
            self.close()
            raise

    def _start(self) -> "MultiWorkerServer":
        # Reserve the shared port first so an ephemeral request (port=0)
        # resolves to one concrete port every worker can bind. The
        # placeholder never listens, so it receives no connections.
        self._placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        self._placeholder.bind((self.host, self._requested_port))
        self._port = self._placeholder.getsockname()[1]

        # Publish every graph BEFORE forking: the children inherit the
        # publisher's local-token set (shared resource tracker) and the
        # segments themselves are mapped, not copied.
        for name in self.catalog.names():
            entry = self.catalog.get(name)
            published = publish_graph(entry.graph)
            self._published.append((name, published))
            logger.info(
                "published %s: %d bytes shared (epoch %d)",
                name, published.nbytes, published.descriptor.epoch,
            )
        shipped = [
            (name, published.descriptor, self.catalog.get(name).source)
            for name, published in self._published
        ]

        for index in range(self.workers):
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main,
                args=(
                    index, self.host, self._port, shipped,
                    self.catalog.default_config,
                    self._max_in_flight, self._max_queue, self._retry_after_s,
                    self._service_options,
                    child_conn,
                ),
                name=f"repro-worker-{index}",
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._pipes.append(parent_conn)

        for index, conn in enumerate(self._pipes):
            if not conn.poll(_READY_TIMEOUT_S):
                raise ConfigError(f"worker {index} did not become ready")
            kind, info = conn.recv()
            if kind != "ready":
                raise ConfigError(f"worker {index} failed to start: {info}")
            self.worker_info.append(info)
            logger.info("worker %d ready: pid=%s admin=%s",
                        index, info["pid"], info["admin_url"])

        handler = type("BoundControlHandler", (_ControlHandler,), {"front": self})
        self._control = _ControlHTTPServer((self.host, 0), handler)
        self._control_thread = threading.Thread(
            target=self._control.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-service-control", daemon=True,
        )
        self._control_thread.start()
        self._started = True
        return self

    # -- merged views --------------------------------------------------
    def _fan_out(self, endpoint: str) -> List[Dict[str, object]]:
        """Fetch ``endpoint`` from every worker's admin server, in parallel."""
        bodies: List[Optional[Dict[str, object]]] = [None] * len(self.worker_info)

        def fetch(slot: int, info: Dict[str, object]) -> None:
            status, body = _fetch_json(f"{info['admin_url']}{endpoint}")
            body.setdefault("worker", info["worker"])
            body["reachable"] = status is not None
            bodies[slot] = body

        threads = [
            threading.Thread(target=fetch, args=(slot, info), daemon=True)
            for slot, info in enumerate(self.worker_info)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [body for body in bodies if body is not None]

    def merged_healthz(self) -> Tuple[int, Dict[str, object]]:
        """All workers' /healthz, plus an aggregate status (503 if any is down)."""
        bodies = self._fan_out("/healthz")
        healthy = sum(1 for body in bodies if body.get("status") == "ok")
        status = 200 if healthy == len(bodies) else 503
        return status, {
            "status": "ok" if status == 200 else "degraded",
            "role": "multiworker",
            "workers": len(bodies),
            "healthy_workers": healthy,
            "shared_url": self.url,
            "per_worker": bodies,
        }

    def merged_metrics(self) -> Dict[str, object]:
        """All workers' /metrics, with scalar metrics summed across workers."""
        bodies = self._fan_out("/metrics")
        merged = merge_snapshots(
            body.get("metrics") for body in bodies if isinstance(body.get("metrics"), dict)
        )
        return {
            "role": "multiworker",
            "workers": len(bodies),
            "metrics": merged,
            "per_worker": bodies,
            "shared_bytes": sum(published.nbytes for _, published in self._published),
        }

    # -- serving / shutdown --------------------------------------------
    def serve_forever(self) -> None:
        """Park the calling thread until :meth:`close` runs (CLI path)."""
        self._serve_done = threading.Event()
        self._serve_done.wait()

    def request_shutdown(self) -> None:
        """Signal-safe drain trigger (mirrors :class:`ServiceServer`)."""
        threading.Thread(target=self.close, name="repro-multiworker-drain", daemon=True).start()

    def install_signal_handlers(self, signals=(signal.SIGTERM, signal.SIGINT)) -> Dict:
        previous = {}
        for sig in signals:
            previous[sig] = signal.signal(sig, lambda *_: self.request_shutdown())
        return previous

    def close(self) -> None:
        """Drain the workers, stop the control server, free shared segments."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for conn in self._pipes:
            try:
                conn.send(("shutdown", None))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_S)
            if process.is_alive():  # pragma: no cover - drain timeout
                logger.warning("worker %s did not drain in time; terminating", process.name)
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)
        for conn in self._pipes:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._control is not None:
            self._control.shutdown()
            self._control.server_close()
        for _, published in self._published:
            published.close()
            published.unlink()
        self._published = []
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        done = getattr(self, "_serve_done", None)
        if done is not None:
            done.set()
        logger.info("multiworker drain complete")


__all__ = ["MultiWorkerServer"]
