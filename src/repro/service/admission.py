"""Admission control: a bounded in-flight limit with a bounded wait queue.

The service's load-shedding policy is two small numbers:

``max_in_flight``
    How many requests may be *executing* concurrently. DSQL queries are
    CPU-bound pure Python, so running many more than the core count only
    grows every request's latency; a tight in-flight cap keeps the p99
    honest.
``max_queue``
    How many further requests may *wait* for an execution slot. Beyond
    that, the server is overloaded by definition and the correct answer is
    an immediate ``429`` with ``Retry-After`` — queueing deeper would only
    manufacture timeouts (the classic unbounded-queue failure mode).

:class:`AdmissionController` implements exactly this: a counting semaphore
with an explicit, *bounded* waiter count, instrumented with the
``service.in_flight`` and ``service.queue_depth`` gauges. It is transport
agnostic — the HTTP layer calls :meth:`acquire` / :meth:`release`, tests
drive it directly.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.exceptions import ConfigError


class AdmissionController:
    """Bounded-concurrency gate: at most ``max_in_flight`` holders,
    at most ``max_queue`` waiters, immediate rejection beyond that.

    Parameters
    ----------
    max_in_flight:
        Concurrent execution slots (>= 1).
    max_queue:
        Requests allowed to block waiting for a slot (>= 0). ``0`` means
        no queueing at all: a full service rejects instantly.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; when given,
        the ``service.in_flight`` and ``service.queue_depth`` gauges track
        the live occupancy.
    """

    def __init__(self, max_in_flight: int, max_queue: int, metrics=None) -> None:
        if max_in_flight < 1:
            raise ConfigError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0, got {max_queue}")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._in_flight = 0
        self._waiting = 0
        self._rejected = 0
        self._metrics = metrics

    # -- gauges --------------------------------------------------------
    def _publish(self) -> None:
        # Called with the lock held; gauge writes are cheap and lock-free
        # from this side (each gauge has its own lock).
        if self._metrics is not None:
            self._metrics.gauge("service.in_flight").set(self._in_flight)
            self._metrics.gauge("service.queue_depth").set(self._waiting)

    # -- the gate ------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Take an execution slot, waiting in the bounded queue if needed.

        Returns ``True`` once a slot is held (the caller *must* pair it with
        :meth:`release`), ``False`` when the queue is already full — the
        overload signal — or when ``timeout`` (seconds) elapses while
        waiting.
        """
        with self._slot_freed:
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                self._publish()
                return True
            if self._waiting >= self.max_queue:
                self._rejected += 1
                return False
            self._waiting += 1
            self._publish()
            try:
                while self._in_flight >= self.max_in_flight:
                    if not self._slot_freed.wait(timeout=timeout):
                        self._rejected += 1
                        return False
                self._in_flight += 1
                return True
            finally:
                self._waiting -= 1
                self._publish()

    def release(self) -> None:
        """Return a slot taken by a successful :meth:`acquire`."""
        with self._slot_freed:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._in_flight -= 1
            self._publish()
            self._slot_freed.notify()

    # -- introspection -------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def rejected(self) -> int:
        """Requests turned away since construction (monotonic)."""
        return self._rejected

    def describe(self) -> Dict[str, int]:
        """Live occupancy snapshot for ``/healthz``."""
        with self._lock:
            return {
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "in_flight": self._in_flight,
                "queue_depth": self._waiting,
                "rejected_total": self._rejected,
            }
