"""Admission control: count-based and cost-aware gates behind one seam.

The service's load-shedding policy started as two small numbers:

``max_in_flight``
    How many requests may be *executing* concurrently. DSQL queries are
    CPU-bound pure Python, so running many more than the core count only
    grows every request's latency; a tight in-flight cap keeps the p99
    honest.
``max_queue``
    How many further requests may *wait* for an execution slot. Beyond
    that, the server is overloaded by definition and the correct answer is
    an immediate ``429`` with ``Retry-After`` — queueing deeper would only
    manufacture timeouts (the classic unbounded-queue failure mode).

:class:`AdmissionController` implements exactly this count-based gate and
stays the default. But one dense-pool DSQ query costs ~10000x a cheap one,
so counting *requests* lets a handful of adversarial queries occupy every
slot while the cheap 99% starve in the queue.
:class:`WorkUnitAdmissionController` prices requests in estimated **work
units** (see :mod:`repro.cost`) instead: a request is admitted when the
units already in flight leave room in the budget, so a dense query
occupies its true share and cheap traffic keeps flowing around it.

All controllers share the admission seam the transport calls:

* ``mode`` — ``"count"`` / ``"cost"`` / ``"off"``, surfaced in /healthz;
* ``try_admit(cost) -> ticket | None`` — ``None`` is the overload signal;
* ``release(ticket)`` — paired with every successful admit;
* ``retry_after_hint(base_s, cost)`` — the ``Retry-After`` value, scaled
  by live occupancy so clients back off proportionally instead of
  thundering back in lockstep;
* ``describe()`` — live occupancy snapshot for ``/healthz``.

:class:`ClientQuotas` layers *per-client* token buckets (work-units/sec,
keyed by the ``X-Client-Id`` header) in front of whichever global gate is
active, so one greedy client exhausts its own bucket — ``429
quota_exceeded`` — before it can push the whole service into ``429
overloaded``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.exceptions import ConfigError

ADMISSION_MODES = ("count", "cost", "off")

DEFAULT_WORK_UNIT_BUDGET = 50_000.0
"""Default global budget of estimated work units in flight."""

MAX_RETRY_AFTER_S = 60.0
"""Ceiling on every Retry-After hint: clients should re-probe at least
once a minute, whatever the backlog estimate says."""


class AdmissionTicket:
    """Handle returned by ``try_admit``; carries the admitted cost so the
    matching ``release`` is self-describing."""

    __slots__ = ("cost",)

    def __init__(self, cost: float) -> None:
        self.cost = cost


class AdmissionController:
    """Bounded-concurrency gate: at most ``max_in_flight`` holders,
    at most ``max_queue`` waiters, immediate rejection beyond that.

    Parameters
    ----------
    max_in_flight:
        Concurrent execution slots (>= 1).
    max_queue:
        Requests allowed to block waiting for a slot (>= 0). ``0`` means
        no queueing at all: a full service rejects instantly.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; when given,
        the ``service.in_flight`` and ``service.queue_depth`` gauges track
        the live occupancy.
    """

    mode = "count"

    def __init__(self, max_in_flight: int, max_queue: int, metrics=None) -> None:
        if max_in_flight < 1:
            raise ConfigError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0, got {max_queue}")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._in_flight = 0
        self._waiting = 0
        self._rejected = 0
        self._metrics = metrics

    # -- gauges --------------------------------------------------------
    def _publish(self) -> None:
        # Called with the lock held; gauge writes are cheap and lock-free
        # from this side (each gauge has its own lock).
        if self._metrics is not None:
            self._metrics.gauge("service.in_flight").set(self._in_flight)
            self._metrics.gauge("service.queue_depth").set(self._waiting)

    # -- the gate ------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Take an execution slot, waiting in the bounded queue if needed.

        Returns ``True`` once a slot is held (the caller *must* pair it with
        :meth:`release`), ``False`` when the queue is already full — the
        overload signal — or when ``timeout`` (seconds) elapses while
        waiting.
        """
        with self._slot_freed:
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                self._publish()
                return True
            if self._waiting >= self.max_queue:
                self._rejected += 1
                return False
            self._waiting += 1
            self._publish()
            try:
                while self._in_flight >= self.max_in_flight:
                    if not self._slot_freed.wait(timeout=timeout):
                        self._rejected += 1
                        return False
                self._in_flight += 1
                return True
            finally:
                self._waiting -= 1
                self._publish()

    def release(self, ticket: Optional[AdmissionTicket] = None) -> None:
        """Return a slot taken by a successful :meth:`acquire`/``try_admit``.

        The ticket is accepted (and ignored) so the seam's paired
        ``try_admit``/``release`` calling convention works unchanged.
        """
        with self._slot_freed:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._in_flight -= 1
            self._publish()
            self._slot_freed.notify()

    # -- the seam ------------------------------------------------------
    def try_admit(
        self, cost: float = 1.0, timeout: Optional[float] = None
    ) -> Optional[AdmissionTicket]:
        """Count-based admit: every request costs one slot, whatever its
        estimated work. Returns a ticket or ``None`` (overloaded)."""
        if not self.acquire(timeout=timeout):
            return None
        return AdmissionTicket(cost)

    def retry_after_hint(self, base_s: float, cost: float = 0.0) -> float:
        """Retry-After scaled by queue occupancy.

        The queue drains roughly one waiter per slot per mean service
        time, so a client behind ``w`` waiters should back off about
        ``w / max_in_flight`` service times longer than one arriving at an
        empty queue. Monotone in the waiter count by construction (unit
        test pins this), clamped to :data:`MAX_RETRY_AFTER_S`.
        """
        with self._lock:
            waiting = self._waiting
        scaled = base_s * (1.0 + waiting / float(self.max_in_flight))
        return min(MAX_RETRY_AFTER_S, scaled)

    # -- introspection -------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def rejected(self) -> int:
        """Requests turned away since construction (monotonic)."""
        return self._rejected

    def describe(self) -> Dict[str, object]:
        """Live occupancy snapshot for ``/healthz``."""
        with self._lock:
            return {
                "mode": self.mode,
                "max_in_flight": self.max_in_flight,
                "max_queue": self.max_queue,
                "in_flight": self._in_flight,
                "queue_depth": self._waiting,
                "rejected_total": self._rejected,
            }


class WorkUnitAdmissionController:
    """Cost-aware gate: admits while estimated work units fit the budget.

    Admission rules, checked under one lock:

    * a **zero-cost** request (provably-empty search, mutation bookkeeping)
      always admits — the estimator guarantees it cannot occupy the engine;
    * an **idle** gate admits any cost — a single query costlier than the
      whole budget must still be runnable;
    * otherwise the request admits iff ``units_in_flight + cost <= budget``
      and a concurrency guard (``max_in_flight``) has a free slot.

    There is deliberately no wait queue: the whole point of cost-aware
    admission is that the rejection is *informative* — ``Retry-After`` is
    the estimated time for the in-flight units to drain at the configured
    ``drain_rate`` (work units per second), so expensive rejections back
    off long and cheap rejections return almost immediately.
    """

    mode = "cost"

    def __init__(
        self,
        work_unit_budget: float = DEFAULT_WORK_UNIT_BUDGET,
        max_in_flight: int = 64,
        drain_rate: float = 200_000.0,
        metrics=None,
    ) -> None:
        if work_unit_budget <= 0:
            raise ConfigError(
                f"work_unit_budget must be positive, got {work_unit_budget}"
            )
        if max_in_flight < 1:
            raise ConfigError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if drain_rate <= 0:
            raise ConfigError(f"drain_rate must be positive, got {drain_rate}")
        self.work_unit_budget = float(work_unit_budget)
        self.max_in_flight = max_in_flight
        self.drain_rate = float(drain_rate)
        self._lock = threading.Lock()
        self._units_in_flight = 0.0
        self._in_flight = 0
        self._rejected = 0
        self._metrics = metrics

    def _publish(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("service.in_flight").set(self._in_flight)
            self._metrics.gauge("service.work_units_in_flight").set(
                self._units_in_flight
            )

    def try_admit(
        self, cost: float = 1.0, timeout: Optional[float] = None
    ) -> Optional[AdmissionTicket]:
        """Admit ``cost`` estimated work units, or return ``None``."""
        cost = max(0.0, float(cost))
        with self._lock:
            admit = (
                cost == 0.0
                or self._in_flight == 0
                or (
                    self._units_in_flight + cost <= self.work_unit_budget
                    and self._in_flight < self.max_in_flight
                )
            )
            if not admit:
                self._rejected += 1
                return None
            self._units_in_flight += cost
            self._in_flight += 1
            self._publish()
            return AdmissionTicket(cost)

    def release(self, ticket: AdmissionTicket) -> None:
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching try_admit()")
            self._in_flight -= 1
            self._units_in_flight = max(0.0, self._units_in_flight - ticket.cost)
            self._publish()

    def retry_after_hint(self, base_s: float, cost: float = 0.0) -> float:
        """Retry-After from the estimated drain time of the backlog.

        The rejected request needs ``units_in_flight + cost - budget``
        units to drain before it could fit; at ``drain_rate`` units/sec
        that is a concrete wait estimate. Monotone in the in-flight units,
        floored at ``base_s`` and clamped to :data:`MAX_RETRY_AFTER_S`.
        """
        with self._lock:
            backlog = self._units_in_flight
        excess = max(0.0, backlog + max(0.0, cost) - self.work_unit_budget)
        return min(MAX_RETRY_AFTER_S, max(base_s, excess / self.drain_rate))

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def units_in_flight(self) -> float:
        return self._units_in_flight

    @property
    def rejected(self) -> int:
        return self._rejected

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "mode": self.mode,
                "work_unit_budget": self.work_unit_budget,
                "max_in_flight": self.max_in_flight,
                "in_flight": self._in_flight,
                "work_units_in_flight": round(self._units_in_flight, 3),
                "rejected_total": self._rejected,
            }


class NullAdmissionController:
    """The ``off`` mode: every request admits (kept for A/B testing the
    admission-invariance property — results must not depend on the gate)."""

    mode = "off"

    def __init__(self, metrics=None) -> None:
        self._metrics = metrics
        self._in_flight = 0
        self._lock = threading.Lock()

    def try_admit(
        self, cost: float = 1.0, timeout: Optional[float] = None
    ) -> Optional[AdmissionTicket]:
        with self._lock:
            self._in_flight += 1
            if self._metrics is not None:
                self._metrics.gauge("service.in_flight").set(self._in_flight)
        return AdmissionTicket(max(0.0, float(cost)))

    def release(self, ticket: AdmissionTicket) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            if self._metrics is not None:
                self._metrics.gauge("service.in_flight").set(self._in_flight)

    def retry_after_hint(self, base_s: float, cost: float = 0.0) -> float:
        return base_s

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def rejected(self) -> int:
        return 0

    def describe(self) -> Dict[str, object]:
        return {"mode": self.mode, "in_flight": self._in_flight}


def build_admission_controller(
    mode: str,
    max_in_flight: int,
    max_queue: int,
    work_unit_budget: float = DEFAULT_WORK_UNIT_BUDGET,
    drain_rate: float = 200_000.0,
    metrics=None,
):
    """Factory behind ``serve --admission=count|cost|off``."""
    if mode == "count":
        return AdmissionController(max_in_flight, max_queue, metrics=metrics)
    if mode == "cost":
        return WorkUnitAdmissionController(
            work_unit_budget=work_unit_budget,
            max_in_flight=max(max_in_flight, 1) * 8,
            drain_rate=drain_rate,
            metrics=metrics,
        )
    if mode == "off":
        return NullAdmissionController(metrics=metrics)
    raise ConfigError(
        f"unknown admission mode {mode!r}; choose from {ADMISSION_MODES}"
    )


class ClientQuotas:
    """Per-client token buckets in estimated work units.

    Each client (the ``X-Client-Id`` header) owns a bucket holding up to
    ``burst`` units, refilled at ``rate`` units/second. A request consumes
    its estimated cost; a cost above the burst is charged as *debt* (the
    bucket must be full, then goes negative), so occasional expensive
    queries pass but delay the same client's next requests proportionally
    — other clients are unaffected, which is the whole point.

    Buckets live in a bounded LRU so an adversary minting client ids
    cannot grow memory without bound; an evicted client simply starts with
    a fresh full bucket.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        max_clients: int = 4096,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ConfigError(f"quota rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else 10.0 * self.rate
        if self.burst <= 0:
            raise ConfigError(f"quota burst must be positive, got {self.burst}")
        self.max_clients = max_clients
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, Tuple[float, float]]" = OrderedDict()

    def _refill(self, client: str, now: float) -> float:
        tokens, last = self._buckets.get(client, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        return tokens

    def try_consume(self, client: str, cost: float) -> bool:
        """Charge ``cost`` units to ``client``; ``False`` = quota exceeded."""
        cost = max(0.0, float(cost))
        now = self._clock()
        with self._lock:
            tokens = self._refill(client, now)
            # A cost above the burst can never be fully covered; require a
            # full bucket and let the balance go negative (debt) instead of
            # rejecting such queries forever.
            if tokens >= min(cost, self.burst):
                tokens -= cost
                ok = True
            else:
                ok = False
            self._buckets[client] = (tokens, now)
            self._buckets.move_to_end(client)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        return ok

    def retry_after(self, client: str, cost: float) -> float:
        """Seconds until ``client`` could afford ``cost`` at the refill rate."""
        cost = max(0.0, float(cost))
        now = self._clock()
        with self._lock:
            tokens = self._refill(client, now)
        needed = min(cost, self.burst) - tokens
        if needed <= 0:
            return 0.0
        return min(MAX_RETRY_AFTER_S, needed / self.rate)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "rate_units_per_s": self.rate,
                "burst_units": self.burst,
                "tracked_clients": len(self._buckets),
            }
