"""Opt-in JSONL access log: one line per ``/v1/*`` request.

``serve --access-log PATH`` turns this on. Each line is a self-contained
JSON object recording who asked (the ``X-Client-Id`` header), what they
asked (graph + canonical query key), what the cost model *predicted*
(``estimated_work_units``), what the engine actually did
(``actual_work_units`` = ``SearchStats.nodes_expanded``), and how the
request ended (status, latency). Estimated-vs-actual pairs are exactly the
data needed to audit the :mod:`repro.cost` estimator offline — the
calibration EWMA consumes the same pairs online.

The file handling mirrors the trace sink
(:class:`~repro.observability.tracing.JsonlSink`): append mode, so POSIX
positions each write at the current end even across fork-inherited
descriptors (the pre-forked multi-worker front's workers may share the
parent's log), line-buffered, one-lock-per-process serialization. Every
record is validated against :data:`ACCESS_LOG_FIELDS` *before* it is
written — a malformed record is a bug worth an exception, not a corrupt
log line discovered weeks later.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

ACCESS_LOG_VERSION = 1

ACCESS_LOG_FIELDS: Dict[str, tuple] = {
    # field -> accepted types; Optional fields also accept None.
    "v": (int,),
    "ts_ms": (int, float),
    "request_id": (int,),
    "client": (str, type(None)),
    "path": (str,),
    "status": (int,),
    "graph": (str, type(None)),
    "query_key": (str, type(None)),
    "estimated_work_units": (int, float, type(None)),
    "actual_work_units": (int, float, type(None)),
    "latency_ms": (int, float),
}
"""The full record schema: every field is present on every line (absent
facts are explicit ``null``, so downstream column readers never branch)."""


def validate_record(record: Dict[str, object]) -> Dict[str, object]:
    """Check one record against :data:`ACCESS_LOG_FIELDS` (raises ValueError)."""
    if not isinstance(record, dict):
        raise ValueError(f"access-log record must be an object, got {type(record).__name__}")
    unknown = sorted(set(record) - set(ACCESS_LOG_FIELDS))
    if unknown:
        raise ValueError(f"access-log record has unknown field(s): {unknown}")
    for field, types in ACCESS_LOG_FIELDS.items():
        if field not in record:
            raise ValueError(f"access-log record is missing field {field!r}")
        value = record[field]
        # bool is an int subclass; an accidental True in a count field
        # should fail, not serialize as 1.
        if isinstance(value, bool) or not isinstance(value, types):
            raise ValueError(
                f"access-log field {field!r} has type {type(value).__name__}; "
                f"expected one of {[t.__name__ for t in types]}"
            )
    return record


class AccessLog:
    """Append-only JSONL access log (fork-safe, see module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = open(self.path, "a", buffering=1, encoding="utf-8")
        self._lock = threading.Lock()

    def record(
        self,
        ts_ms: float,
        request_id: int,
        path: str,
        status: int,
        latency_ms: float,
        client: Optional[str] = None,
        graph: Optional[str] = None,
        query_key: Optional[str] = None,
        estimated_work_units: Optional[float] = None,
        actual_work_units: Optional[float] = None,
    ) -> Dict[str, object]:
        """Validate and append one record; returns the record written."""
        entry = validate_record(
            {
                "v": ACCESS_LOG_VERSION,
                "ts_ms": ts_ms,
                "request_id": request_id,
                "client": client,
                "path": path,
                "status": status,
                "graph": graph,
                "query_key": query_key,
                "estimated_work_units": estimated_work_units,
                "actual_work_units": actual_work_units,
                "latency_ms": latency_ms,
            }
        )
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if not self._file.closed:
                self._file.write(line + "\n")
        return entry

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def read_access_log(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load an access log back into validated records."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(validate_record(json.loads(line)))
    return records
