"""repro.service — a long-running multi-graph query server.

The serving layer the ROADMAP's "heavy traffic" north star calls for:
instead of paying process startup, graph construction, and a cold
:class:`~repro.indexes.graph_cache.GraphIndexCache` on every invocation,
a process loads named graphs once into a :class:`GraphCatalog` (pinned
indexes + warm :class:`~repro.core.dsql.DSQL` sessions with their
``query_many`` memos) and answers diversified top-k queries over HTTP for
its whole lifetime.

Pieces (all stdlib; no web framework):

* :class:`GraphCatalog` / :class:`CatalogEntry` — named warm graphs
  (:mod:`repro.service.catalog`);
* :class:`AdmissionController` / :class:`WorkUnitAdmissionController` —
  load shedding behind one seam: bounded request counts (default) or an
  estimated work-unit budget priced by :mod:`repro.cost`, both answering
  429 with an occupancy-scaled ``Retry-After``; :class:`ClientQuotas`
  adds per-client token buckets keyed by ``X-Client-Id``
  (:mod:`repro.service.admission`);
* :class:`AccessLog` — opt-in JSONL per-request log with estimated vs
  actual work units (:mod:`repro.service.accesslog`);
* :class:`QueryService` / :class:`ServiceServer` — request handling and
  the ``ThreadingHTTPServer`` transport with graceful SIGTERM drain
  (:mod:`repro.service.server`);
* :class:`MultiWorkerServer` — N pre-forked worker processes sharing
  published graph memory behind one ``SO_REUSEPORT`` port, with merged
  ``/healthz`` + ``/metrics`` views (:mod:`repro.service.multiworker`);
* :class:`ServiceClient` — a ``urllib`` client
  (:mod:`repro.service.client`);
* the wire schemas and :class:`ServiceError` (:mod:`repro.service.schemas`).

Graphs served by the single-process server are *live*: ``POST
/v1/graphs/{g}/edges`` and ``POST /v1/graphs/{g}/ingest`` apply mutations
under a per-graph write lock with delta-based index repair (contract in
``docs/mutation.md``). The pre-forked multi-worker front is read-only and
answers 501 ``mutation_unsupported``.

Start one from the CLI (``repro-dsql serve --dataset dblp``) or in
process::

    from repro.core.config import DSQLConfig
    from repro.datasets.registry import make_dataset
    from repro.service import GraphCatalog, QueryService, ServiceServer

    catalog = GraphCatalog(default_config=DSQLConfig(k=10))
    catalog.add_graph("dblp", make_dataset("dblp"))
    server = ServiceServer(QueryService(catalog), port=0).start()
    print(server.url)
    ...
    server.close()  # drain: finish in-flight work, flush traces

Endpoints, JSON schemas, and admission-control knobs are documented in
``docs/service.md``; the ``service.*`` metrics are in the catalog of
``docs/observability.md``.
"""

from repro.service.accesslog import AccessLog, read_access_log
from repro.service.admission import (
    ADMISSION_MODES,
    AdmissionController,
    ClientQuotas,
    NullAdmissionController,
    WorkUnitAdmissionController,
    build_admission_controller,
)
from repro.service.catalog import CatalogEntry, GraphCatalog, build_catalog
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.schemas import (
    BATCH_STRATEGIES,
    BatchRequest,
    MutationRequest,
    QueryRequest,
    ServiceError,
    mutation_to_json,
    parse_batch_request,
    parse_edge_mutation,
    parse_ingest_request,
    parse_json_body,
    parse_query_request,
    query_graph_from_json,
    query_graph_to_json,
    result_to_json,
)
from repro.service.multiworker import MultiWorkerServer
from repro.service.server import QueryService, ServiceServer

__all__ = [
    "ADMISSION_MODES",
    "AccessLog",
    "AdmissionController",
    "ClientQuotas",
    "NullAdmissionController",
    "WorkUnitAdmissionController",
    "build_admission_controller",
    "read_access_log",
    "CatalogEntry",
    "GraphCatalog",
    "build_catalog",
    "MultiWorkerServer",
    "ServiceClient",
    "ServiceClientError",
    "QueryService",
    "ServiceServer",
    "ServiceError",
    "QueryRequest",
    "BatchRequest",
    "MutationRequest",
    "BATCH_STRATEGIES",
    "parse_query_request",
    "parse_batch_request",
    "parse_edge_mutation",
    "parse_ingest_request",
    "mutation_to_json",
    "parse_json_body",
    "query_graph_from_json",
    "query_graph_to_json",
    "result_to_json",
]
