"""Graph catalog: named graphs held warm for the process lifetime.

The whole point of the service (vs. the CLI) is amortization: a cold DSQL
answer pays graph construction plus the per-graph
:class:`~repro.indexes.graph_cache.GraphIndexCache` build before the first
candidate is ever expanded, while a warm session answers from pinned
indexes and a primed ``query_many`` memo. The catalog is where that warmth
lives:

* :class:`CatalogEntry` pins one graph, its index cache (built eagerly at
  load time, not on the first unlucky request), and a warm
  :class:`~repro.core.dsql.DSQL` session per *configuration* — the session
  memo is keyed only by query structure, so requests that override ``k`` /
  ``alpha`` / ``time_budget_ms`` must not share a memo with the default
  config. Per-config sessions live in a small LRU; the default-config
  session is pinned for the process lifetime.
* :class:`GraphCatalog` maps names to entries and is populated at startup
  from registry datasets (``"dblp"`` or ``"dblp@0.05"``) and/or graph files
  (``"name=path"``, edge-list or JSON format).

Concurrency discipline: ``DSQL.query`` is thread-safe (worker-local search
state over a lock-protected shared pool memo — the ``thread`` strategy of
:class:`~repro.parallel.executor.BatchExecutor` relies on this already),
but the ``query_many`` result memo is a bare ``OrderedDict``. The entry
therefore owns a memo lock and uses the executor's replay trick: peek the
memo under the lock, search *outside* the lock, then replay through
``DSQL._memo_answer`` under the lock. Concurrent first requests for the
same structure may both search (deterministic search makes both results
identical), but the memo itself never sees an unsynchronized mutation.

Live mutation discipline: every entry also owns a reader-writer lock.
Queries run as readers (many at once); :meth:`CatalogEntry.mutate` is the
single writer — it waits for in-flight queries to finish (they answer
against the pre-mutation view), applies the batch under exclusive access,
and readers admitted afterwards see the post-mutation graph at its new
``(epoch, delta_seq)`` version. The session memo needs no flush on
mutation: memo keys are version-qualified (``DSQL.memo_key``), so entries
computed against a prior version simply stop being reachable and age out
of the LRU. A writer that cannot drain the readers within its timeout
surfaces as HTTP 409 ``graph_compacting`` with a ``Retry-After`` hint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.core.result import DSQResult
from repro.datasets.registry import make_dataset
from repro.exceptions import ConfigError, DatasetError, GraphError
from repro.graph.io import load_edge_list, load_json
from repro.graph.labeled_graph import (
    DEFAULT_COMPACTION_THRESHOLD,
    LabeledGraph,
    MutationSummary,
)
from repro.graph.query_graph import QueryGraph
from repro.observability import Instrumentation
from repro.parallel.executor import BatchExecutor
from repro.service.schemas import ServiceError

DEFAULT_SESSION_CACHE = 8
"""Per-entry cap on live non-default-config sessions (LRU evicted)."""

DEFAULT_EXECUTOR_CACHE = 4
"""Per-entry cap on live batch executors (LRU evicted, closed on eviction).

Executors are cached so the ``process`` strategy's persistent
:class:`~repro.parallel.pool.WorkerPool` — shared-memory graph publication
plus warm per-worker sessions — survives across ``/v1/batch`` requests
instead of being rebuilt per request."""

DEFAULT_WRITE_TIMEOUT_S = 10.0
"""How long a mutation waits for in-flight queries to drain before it
gives up with 409 ``graph_compacting`` (callers should retry)."""


def _never_computed() -> DSQResult:  # pragma: no cover - guarded by the memo peek
    raise AssertionError("memo hit path must not compute")


class _ReadWriteLock:
    """Writer-preferring reader-writer lock for the query/mutation split.

    Readers (queries) share the lock; the writer (a mutation batch) waits
    for the readers to drain and holds it exclusively. Writer preference —
    arriving readers queue behind a *waiting* writer — keeps a steady
    query stream from starving mutations. Write acquisition takes a
    timeout so a long-running batch cannot wedge the mutation endpoint
    forever; the caller maps the timeout to HTTP 409.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        return False
                    self._cond.wait(remaining)
                self._writer = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class CatalogEntry:
    """One named graph, pinned warm: index cache + per-config sessions."""

    def __init__(
        self,
        name: str,
        graph: LabeledGraph,
        default_config: DSQLConfig,
        instrumentation: Optional[Instrumentation] = None,
        source: str = "memory",
        max_sessions: int = DEFAULT_SESSION_CACHE,
        max_executors: int = DEFAULT_EXECUTOR_CACHE,
    ) -> None:
        self.name = name
        self.graph = graph
        self.source = source
        self.default_config = default_config
        self.instrumentation = instrumentation
        # Build the per-graph indexes now, at load time: the first request
        # must not pay (or race) the one-off index construction.
        self.index_cache = graph.index_cache()
        self._rw = _ReadWriteLock()
        self._session_lock = threading.Lock()
        self._memo_lock = threading.Lock()
        self._executor_lock = threading.Lock()
        self._max_sessions = max_sessions
        self._max_executors = max_executors
        self._sessions: "OrderedDict[DSQLConfig, DSQL]" = OrderedDict()
        self._executors: "OrderedDict[Tuple, BatchExecutor]" = OrderedDict()
        # Executors with a batch in flight (identity-keyed lease counts) and
        # evicted executors whose close is deferred until their last lease
        # is released — closing an executor another thread already fetched
        # would make that thread rebuild a WorkerPool on a cache-unreachable
        # executor whose segments only GC would reclaim.
        self._executor_leases: Dict[BatchExecutor, int] = {}
        self._executors_retired: Set[BatchExecutor] = set()
        self.default_session = DSQL(graph, config=default_config, instrumentation=instrumentation)

    # -- configuration / sessions --------------------------------------
    def request_config(
        self,
        k: Optional[int] = None,
        alpha: Optional[float] = None,
        time_budget_ms: Optional[float] = None,
        objective: Optional[str] = None,
        use_compression: Optional[bool] = None,
    ) -> DSQLConfig:
        """The default config with per-request overrides applied (400 on bad values).

        An ``objective`` override yields a distinct config — and therefore a
        distinct session in the per-config LRU — so results computed under
        different objectives can never share a ``query_many`` memo.
        Weighted-vertex requests use degree-derived weights: per-vertex
        weight tables never cross the wire, and the default config's
        ``vertex_weights`` (if any) is dropped when the objective changes
        away from ``weighted-vertex``.
        """
        overrides: Dict[str, object] = {}
        if k is not None:
            overrides["k"] = k
        if alpha is not None:
            overrides["alpha"] = alpha
        if time_budget_ms is not None:
            overrides["time_budget_ms"] = time_budget_ms
        if objective is not None and objective != self.default_config.objective:
            overrides["objective"] = objective
            if objective != "weighted-vertex":
                overrides["vertex_weights"] = None
        if use_compression is not None:
            overrides["use_compression"] = use_compression
        if not overrides:
            return self.default_config
        try:
            return replace(self.default_config, **overrides)
        except ConfigError as exc:
            raise ServiceError(400, "invalid_config", str(exc)) from None

    def session(self, config: Optional[DSQLConfig] = None) -> DSQL:
        """The warm session for ``config`` (created and LRU-cached on demand).

        The default-config session is pinned outside the LRU so a burst of
        exotic configurations can never evict the steady-state fast path.
        """
        if config is None or config == self.default_config:
            return self.default_session
        with self._session_lock:
            session = self._sessions.get(config)
            if session is not None:
                self._sessions.move_to_end(config)
                return session
            session = DSQL(self.graph, config=config, instrumentation=self.instrumentation)
            self._sessions[config] = session
            if len(self._sessions) > self._max_sessions:
                self._sessions.popitem(last=False)
            return session

    # -- cost estimation -----------------------------------------------
    def estimate_cost(self, query: QueryGraph, config: Optional[DSQLConfig] = None):
        """The :class:`~repro.cost.CostEstimate` for ``query``, or ``None``.

        ``None`` means no estimate is available (plan compilation disabled
        on this config) — callers must treat that as "cost unknown" and
        fall back to count-style accounting, never as "free". Runs
        *before* admission by design: estimation is a memoized fold over
        the compiled plan, and the plan is needed to answer anyway.
        """
        config = config if config is not None else self.default_config
        if not config.use_plans:
            return None
        return self.session(config).estimate(query)

    def observe_cost(
        self, estimate, result: DSQResult, config: Optional[DSQLConfig] = None
    ) -> None:
        """Feed one answered query's actual work back into calibration.

        Skipped for memo hits (the original search already reported this
        exact pair — re-observing would double-weight it) and for
        auto-budget configs (``DSQL._query_impl`` observes those itself on
        the estimate it derived the deadline from).
        """
        if estimate is None or result.from_cache:
            return
        config = config if config is not None else self.default_config
        if config.auto_time_budget and config.time_budget_ms is None:
            return
        self.index_cache.cost_estimator().observe(estimate, result.stats.nodes_expanded)

    # -- answering -----------------------------------------------------
    def answer(self, query: QueryGraph, config: Optional[DSQLConfig] = None) -> DSQResult:
        """Answer one query with full ``query_many`` memo semantics, thread-safely.

        Hit path: serve from the memo under the lock. Miss path: search
        outside the lock (concurrent queries proceed in parallel), then
        replay through :meth:`DSQL._memo_answer` under the lock so LRU
        state and hit/miss counters evolve exactly as a serial
        ``query_many`` stream's would. If another thread populated the key
        meanwhile, the replay simply becomes a hit — both threads hold
        bit-identical results because the search is deterministic.

        The whole answer runs as a *reader*: a concurrent mutation waits
        for it to finish, and this query sees one consistent graph version
        end to end (the memo key is stamped with that version).
        """
        session = self.session(config)
        self._rw.acquire_read()
        try:
            key = session.memo_key(query)
            with self._memo_lock:
                if key in session._query_cache:
                    return session._memo_answer(key, _never_computed)
            fresh = session.query(query)
            with self._memo_lock:
                return session._memo_answer(key, lambda: fresh)
        finally:
            self._rw.release_read()

    def answer_batch(
        self,
        queries: Sequence[QueryGraph],
        config: Optional[DSQLConfig] = None,
        strategy: str = "serial",
        jobs: Optional[int] = None,
    ):
        """Answer a batch through :class:`~repro.parallel.executor.BatchExecutor`.

        Returns ``(results, report)`` with results bit-identical to serial
        ``query_many`` (the executor's replay guarantee). The memo lock is
        held for the whole run because the executor replays the batch
        through the session memo internally; concurrent point queries on
        this graph wait for the batch — admission control bounds how much
        batch work can pile up.

        Executors are cached per ``(config, strategy, jobs)`` so the
        process strategy's worker pool (shared graph segments, warm worker
        sessions) persists across requests; a lease held for the duration
        of the run keeps a concurrent LRU eviction from closing the
        executor mid-batch.
        """
        session = self.session(config)
        self._rw.acquire_read()
        try:
            executor = self._acquire_executor(session, strategy, jobs)
            try:
                with self._memo_lock:
                    results = executor.run(list(queries))
            finally:
                self._release_executor(executor)
            return results, executor.last_report
        finally:
            self._rw.release_read()

    # -- mutation ------------------------------------------------------
    def mutate(
        self,
        ops: Sequence[Tuple],
        compaction_threshold: Optional[int] = DEFAULT_COMPACTION_THRESHOLD,
        write_timeout_s: Optional[float] = DEFAULT_WRITE_TIMEOUT_S,
    ) -> MutationSummary:
        """Apply a mutation batch as the graph's single writer.

        Waits (bounded by ``write_timeout_s``) for in-flight queries —
        they finish against the pre-mutation view — then applies the batch
        via :meth:`LabeledGraph.mutate` with exclusive access. Failure
        modes are typed: a drain timeout is 409 ``graph_compacting`` (the
        standard back-off signal, with ``Retry-After``); a malformed batch
        is 400 ``invalid_mutation`` and, because the batch pre-validates,
        leaves the graph untouched.
        """
        if not self._rw.acquire_write(write_timeout_s):
            raise ServiceError(
                409,
                "graph_compacting",
                f"graph {self.name!r} is busy (queries or a mutation in flight); "
                f"could not acquire the write lock within {write_timeout_s:g}s",
                retry_after_s=1.0,
            )
        try:
            try:
                return self.graph.mutate(ops, compaction_threshold=compaction_threshold)
            except GraphError as exc:
                raise ServiceError(400, "invalid_mutation", str(exc)) from None
        finally:
            self._rw.release_write()

    def _acquire_executor(
        self, session: DSQL, strategy: str, jobs: Optional[int]
    ) -> BatchExecutor:
        """The cached executor for this shape of batch request, leased.

        If the session behind a cached executor was LRU-evicted and
        recreated meanwhile, the stale executor is retired and replaced —
        an executor must run against the live session or the memo replay
        would split brains. The returned executor carries a lease (released
        by :meth:`_release_executor`); evicting a leased executor defers
        its close until the last lease drops, so a concurrent eviction can
        never close an executor out from under a batch that already
        fetched it.
        """
        key = (session.config, strategy, jobs)
        with self._executor_lock:
            executor = self._executors.get(key)
            if executor is not None and executor.session is session:
                self._executors.move_to_end(key)
                evicted: List[BatchExecutor] = []
            else:
                evicted = []
                stale = self._executors.pop(key, None)
                if stale is not None:
                    evicted.append(stale)
                executor = BatchExecutor(session, strategy=strategy, jobs=jobs)
                self._executors[key] = executor
                if len(self._executors) > self._max_executors:
                    evicted.append(self._executors.popitem(last=False)[1])
            self._executor_leases[executor] = (
                self._executor_leases.get(executor, 0) + 1
            )
            closable = self._retire_locked(evicted)
        for old in closable:
            old.close()
        return executor

    def _retire_locked(
        self, evicted: List[BatchExecutor]
    ) -> List[BatchExecutor]:
        """Partition evicted executors (under ``_executor_lock``): executors
        with live leases are parked for their last release to close; the
        rest are returned for the caller to close outside the lock."""
        closable: List[BatchExecutor] = []
        for old in evicted:
            if self._executor_leases.get(old, 0) > 0:
                self._executors_retired.add(old)
            else:
                closable.append(old)
        return closable

    def _release_executor(self, executor: BatchExecutor) -> None:
        """Drop one lease; the last lease on a retired executor closes it."""
        close_now = False
        with self._executor_lock:
            remaining = self._executor_leases.get(executor, 0) - 1
            if remaining > 0:
                self._executor_leases[executor] = remaining
            else:
                self._executor_leases.pop(executor, None)
                if executor in self._executors_retired:
                    self._executors_retired.discard(executor)
                    close_now = True
        if close_now:
            executor.close()

    def close(self) -> None:
        """Release every cached executor (and any worker pools they hold).

        Executors with a batch in flight are retired instead of closed;
        the batch's lease release performs the close."""
        with self._executor_lock:
            executors = list(self._executors.values())
            self._executors = OrderedDict()
            closable = self._retire_locked(executors)
        for executor in closable:
            executor.close()

    # -- introspection -------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Static + live facts about this entry (for ``/metrics``)."""
        with self._session_lock:
            extra_sessions = len(self._sessions)
        with self._executor_lock:
            executors = len(self._executors)
        return {
            "source": self.source,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "version": list(self.index_cache.version),
            "labels": len(self.index_cache.label_table),
            "sessions": 1 + extra_sessions,
            "executors": executors,
            "default_k": self.default_config.k,
            "plan_cache": self.index_cache.plan_cache.info(),
        }


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class GraphCatalog:
    """Name -> :class:`CatalogEntry` map, populated once at startup.

    The catalog always carries an :class:`~repro.observability.
    Instrumentation` (creating a metrics-only one when none is given): the
    service's ``/metrics`` endpoint needs a registry to snapshot, and every
    session the catalog creates reports into it — including the memo and
    candidate-pool hit rates that prove the warmth is real.
    """

    def __init__(
        self,
        default_config: Optional[DSQLConfig] = None,
        instrumentation: Optional[Instrumentation] = None,
        seed: int = 0,
    ) -> None:
        self.default_config = default_config if default_config is not None else DSQLConfig(k=10)
        self.instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation()
        )
        self.seed = seed
        self._entries: Dict[str, CatalogEntry] = {}

    # -- population ----------------------------------------------------
    def add_graph(self, name: str, graph: LabeledGraph, source: str = "memory") -> CatalogEntry:
        """Register an in-memory graph under ``name`` (duplicate names refuse)."""
        if not name:
            raise ConfigError("graph name must be non-empty")
        if name in self._entries:
            raise ConfigError(f"duplicate graph name {name!r} in catalog")
        entry = CatalogEntry(
            name,
            graph,
            self.default_config,
            instrumentation=self.instrumentation,
            source=source,
        )
        self._entries[name] = entry
        return entry

    def add_dataset(self, spec: str) -> CatalogEntry:
        """Register a registry dataset from ``"name"`` or ``"name@scale"``."""
        name, _, scale_text = spec.partition("@")
        scale: Optional[float] = None
        if scale_text:
            try:
                scale = float(scale_text)
            except ValueError:
                raise DatasetError(
                    f"bad dataset spec {spec!r}: scale {scale_text!r} is not a number"
                ) from None
        graph = make_dataset(name, scale=scale, seed=self.seed)
        return self.add_graph(name, graph, source=f"dataset:{spec}")

    def add_file(self, spec: str) -> CatalogEntry:
        """Register a graph file from ``"name=path"`` (JSON or edge-list format)."""
        name, sep, path_text = spec.partition("=")
        if not sep or not name or not path_text:
            raise DatasetError(f"bad graph spec {spec!r}: expected NAME=PATH")
        path = Path(path_text)
        if not path.is_file():
            raise DatasetError(f"graph file not found: {path}")
        graph = load_json(path) if path.suffix == ".json" else load_edge_list(path, name=name)
        return self.add_graph(name, graph, source=f"file:{path}")

    # -- lookup --------------------------------------------------------
    def get(self, name: str) -> CatalogEntry:
        """Entry lookup; unknown names become the 404 the service returns."""
        try:
            return self._entries[name]
        except KeyError:
            raise ServiceError(
                404,
                "unknown_graph",
                f"unknown graph {name!r}; loaded graphs: {self.names()}",
            ) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Per-graph facts for ``/metrics`` and startup logging."""
        return {name: self._entries[name].describe() for name in self.names()}

    # -- calibration persistence ---------------------------------------
    def save_calibration(self, path) -> List[str]:
        """Persist every graph's cost-calibration state to ``path``.

        Only graphs whose estimator has actually observed queries are
        written — a fresh estimator carries no information worth saving.
        Returns the graph names written.
        """
        from repro.cost import save_calibration as _save

        table = {}
        for name in self.names():
            state = self._entries[name].index_cache.cost_estimator().snapshot()
            if state.observations > 0:
                table[name] = state
        _save(path, table)
        return sorted(table)

    def load_calibration(self, path) -> List[str]:
        """Restore cost-calibration state saved by :meth:`save_calibration`.

        Missing/corrupt files and unknown graph names are ignored (a
        calibration file is an optimization, never a startup dependency).
        Returns the graph names restored.
        """
        from repro.cost import load_calibration as _load

        table = _load(path)
        if not table:
            return []
        restored = []
        for name, entry in self._entries.items():
            state = table.get(name)
            if state is not None:
                entry.index_cache.cost_estimator().restore(state)
                restored.append(name)
        return sorted(restored)

    # -- plan-cache persistence ----------------------------------------
    def save_plan_cache(self, path) -> int:
        """Persist every graph's compiled-plan *specs* to ``path`` (JSON).

        Plans themselves are graph-version-pinned and cheap to recompile;
        what is worth keeping across restarts is *which* plans the traffic
        compiled — the canonical query structures plus compile toggles
        (:meth:`~repro.indexes.plans.PlanCache.dump_specs`). Returns the
        total number of specs written.
        """
        import json
        from pathlib import Path

        table = {}
        total = 0
        for name in self.names():
            specs = self._entries[name].index_cache.plan_cache.dump_specs()
            if specs:
                table[name] = specs
                total += len(specs)
        payload = {"version": 1, "graphs": table}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return total

    def load_plan_cache(self, path) -> int:
        """Eagerly recompile plans from a :meth:`save_plan_cache` file.

        Missing/corrupt files, unknown graph names, and specs that no
        longer compile are all skipped — a warm file is an optimization,
        never a startup dependency. Returns the number of plans warmed
        (the ``plan_cache.warmed=N`` startup line).
        """
        import json
        from pathlib import Path

        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
            table = payload.get("graphs", {})
            if not isinstance(table, dict):
                return 0
        except (OSError, ValueError):
            return 0
        warmed = 0
        for name, entry in self._entries.items():
            specs = table.get(name)
            if isinstance(specs, list) and specs:
                cache = entry.index_cache
                warmed += cache.plan_cache.warm_from_specs(specs, cache)
        return warmed

    def close(self) -> None:
        """Release every entry's cached executors (and their worker pools)."""
        for entry in self._entries.values():
            entry.close()


def build_catalog(
    datasets: Sequence[str] = (),
    graph_files: Sequence[str] = (),
    default_config: Optional[DSQLConfig] = None,
    instrumentation: Optional[Instrumentation] = None,
    seed: int = 0,
) -> Tuple[GraphCatalog, List[str]]:
    """Build a catalog from CLI-style specs; returns ``(catalog, log lines)``.

    ``datasets`` entries are ``"name"``/``"name@scale"``; ``graph_files``
    entries are ``"name=path"``. Raises
    :class:`~repro.exceptions.ReproError` subtypes on bad specs, which the
    CLI surfaces as argument errors.
    """
    catalog = GraphCatalog(
        default_config=default_config, instrumentation=instrumentation, seed=seed
    )
    lines: List[str] = []
    for spec in datasets:
        entry = catalog.add_dataset(spec)
        info = entry.describe()
        lines.append(
            f"loaded {entry.name}: |V|={info['vertices']} |E|={info['edges']} ({entry.source})"
        )
    for spec in graph_files:
        entry = catalog.add_file(spec)
        info = entry.describe()
        lines.append(
            f"loaded {entry.name}: |V|={info['vertices']} |E|={info['edges']} ({entry.source})"
        )
    return catalog, lines
