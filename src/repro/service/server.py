"""The long-running query server: HTTP transport, routing, and drain.

Two layers, deliberately separated:

:class:`QueryService`
    Transport-free request handling. ``handle_query`` / ``handle_batch``
    take parsed JSON payloads and return response bodies; admission
    control, draining, outcome metrics, and the per-request trace span all
    live here, so the logic is directly unit-testable without a socket.
:class:`ServiceServer`
    The stdlib ``http.server.ThreadingHTTPServer`` wrapper: one thread per
    connection, ``POST /v1/query`` / ``POST /v1/batch`` /
    ``POST /v1/graphs/{g}/edges`` / ``POST /v1/graphs/{g}/ingest`` /
    ``GET /healthz`` / ``GET /metrics``, JSON in and out. HTTP/1.0
    semantics (connection closed after each response) keep the drain story
    simple — no idle keep-alive connections to wait out.

Graceful drain (``SIGTERM`` or :meth:`ServiceServer.close`): stop
accepting new connections, let every in-flight request finish
(``server_close`` joins the handler threads), then flush the trace sink.
The signal handler itself only *requests* the shutdown from a helper
thread — calling ``shutdown()`` from the thread running ``serve_forever``
(the main thread, under a signal) would deadlock.

Request outcomes land in the ``service.*`` metrics (see
``docs/observability.md``); with a tracer attached every request emits one
``service.request`` span carrying path, status, and graph.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import math
import signal
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cost import DEFAULT_WORK_UNIT_RATE, CostEstimate
from repro.coverage.objectives import OBJECTIVE_NAMES
from repro.exceptions import ConfigError
from repro.service.accesslog import AccessLog
from repro.service.admission import (
    DEFAULT_WORK_UNIT_BUDGET,
    ClientQuotas,
    build_admission_controller,
)
from repro.service.catalog import GraphCatalog
from repro.service.schemas import (
    ServiceError,
    mutation_to_json,
    parse_batch_request,
    parse_edge_mutation,
    parse_ingest_request,
    parse_json_body,
    parse_query_request,
    result_to_json,
)

logger = logging.getLogger("repro.service")

DEFAULT_MAX_IN_FLIGHT = 8
DEFAULT_MAX_QUEUE = 32
DEFAULT_RETRY_AFTER_S = 1.0
DEFAULT_DRAIN_RATE = DEFAULT_WORK_UNIT_RATE * 1000.0
"""Assumed engine throughput in work units per *second*, used by the
cost-aware controller to turn a backlog into a ``Retry-After`` hint."""

CLIENT_ID_HEADER = "X-Client-Id"
ANONYMOUS_CLIENT = "anonymous"
"""Requests without an ``X-Client-Id`` header share one quota bucket."""

DEFAULT_MUTATION_COST = 1.0
"""Nominal admission cost of a write: mutations serialize on the graph's
writer lock anyway, so the gate only needs to count them, not price them."""


def _outcome(status: int) -> str:
    """HTTP status -> the outcome class used in ``service.requests.*``."""
    if status < 400:
        return "ok"
    if status == 429:
        return "rejected"
    if status == 503:
        return "draining"
    if status < 500:
        return "client_error"
    return "server_error"


def _actual_work_units(body: Dict[str, object]) -> Optional[int]:
    """Pull the engine's actual charge count out of a response body.

    ``/v1/query`` bodies carry ``stats.nodes_expanded``; ``/v1/batch``
    bodies carry one stats block per result (summed here). Error bodies
    yield ``None`` — no search ran.
    """
    if not isinstance(body, dict):
        return None
    stats = body.get("stats")
    if isinstance(stats, dict) and isinstance(stats.get("nodes_expanded"), int):
        return stats["nodes_expanded"]
    results = body.get("results")
    if isinstance(results, list):
        total, seen = 0, False
        for entry in results:
            inner = entry.get("stats") if isinstance(entry, dict) else None
            if isinstance(inner, dict) and isinstance(inner.get("nodes_expanded"), int):
                total += inner["nodes_expanded"]
                seen = True
        if seen:
            return total
    return None


def _query_key(query) -> str:
    """A short stable digest of the query's canonical structure.

    Used only for correlation (access log lines, offline estimator audits)
    — never as a cache key, so truncating the digest is safe."""
    return hashlib.sha1(repr(query.canonical_key()).encode("utf-8")).hexdigest()[:16]


@dataclass
class _Probe:
    """Everything the pre-admission cost probe learned about a request.

    Built by :meth:`QueryService._probe_cost` *before* the admission gate
    so the gate can price the request; the request/config/estimate carry
    through to the handler so nothing is parsed or estimated twice.
    ``cost`` falls back to 1.0 (count semantics) whenever no estimate is
    available — "unknown" must never be priced as "free".
    """

    cost: float = 1.0
    graph: Optional[str] = None
    query_key: Optional[str] = None
    wire: Optional[Dict[str, object]] = None
    request: Optional[object] = None
    config: Optional[object] = None
    estimate: Optional[CostEstimate] = None
    estimates: Optional[List[Optional[CostEstimate]]] = field(default=None)


class QueryService:
    """Routes parsed requests onto a :class:`~repro.service.catalog.GraphCatalog`.

    Parameters
    ----------
    catalog:
        The warm graph catalog; its instrumentation (metrics registry, and
        tracer if any) is shared by the service.
    max_in_flight, max_queue:
        Admission-control bounds (see
        :class:`~repro.service.admission.AdmissionController`).
    retry_after_s:
        The base ``Retry-After`` hint attached to 429 rejections; the
        active controller scales it by live occupancy.
    allow_mutations:
        When ``False`` the write surface (``POST /v1/graphs/{g}/edges`` and
        ``/v1/graphs/{g}/ingest``) answers 501 ``mutation_unsupported``.
        The pre-forked multi-worker front sets this: its workers serve
        *attached* shared-memory graphs, and a write in one worker would be
        invisible to its siblings behind the same port.
    admission_mode:
        ``"count"`` (default, bounded concurrency + queue), ``"cost"``
        (work-unit budget priced by the :mod:`repro.cost` estimator), or
        ``"off"`` (no gate; for the admission-invariance tests).
    work_unit_budget, drain_rate:
        Cost-mode knobs: the global budget of estimated work units in
        flight, and the assumed drain throughput (units/second) behind
        ``Retry-After`` hints.
    client_quota_rate, client_quota_burst:
        When ``client_quota_rate`` is set, every client (the
        ``X-Client-Id`` header) gets a token bucket of work units refilled
        at that rate; over-quota requests answer 429 ``quota_exceeded``
        *before* touching the global gate.
    access_log:
        A path (or :class:`~repro.service.accesslog.AccessLog`) enabling
        the JSONL per-request log; closed with the service.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        identity: Optional[Dict[str, object]] = None,
        allow_mutations: bool = True,
        admission_mode: str = "count",
        work_unit_budget: float = DEFAULT_WORK_UNIT_BUDGET,
        drain_rate: float = DEFAULT_DRAIN_RATE,
        client_quota_rate: Optional[float] = None,
        client_quota_burst: Optional[float] = None,
        access_log: Optional[Union[str, Path, AccessLog]] = None,
    ) -> None:
        self.catalog = catalog
        self.allow_mutations = allow_mutations
        self.instrumentation = catalog.instrumentation
        self.admission = build_admission_controller(
            admission_mode,
            max_in_flight,
            max_queue,
            work_unit_budget=work_unit_budget,
            drain_rate=drain_rate,
            metrics=self.instrumentation.metrics,
        )
        self.quotas = (
            ClientQuotas(client_quota_rate, burst=client_quota_burst)
            if client_quota_rate is not None
            else None
        )
        if access_log is not None and not isinstance(access_log, AccessLog):
            access_log = AccessLog(access_log)
        self.access_log = access_log
        self.retry_after_s = retry_after_s
        # Who is answering: the multi-worker front (repro.service.multiworker)
        # tags each pre-forked worker so /healthz and /metrics are attributable.
        self.identity = dict(identity or {})
        self.draining = False
        self._request_ids = itertools.count()
        self._started = time.monotonic()
        self._post_handlers: Dict[str, Callable[[Dict[str, object]], Dict[str, object]]] = {
            "/v1/query": self.handle_query,
            "/v1/batch": self.handle_batch,
        }

    # -- pre-admission cost probe --------------------------------------
    def _probe_cost(self, path: str, payload: Dict[str, object]) -> _Probe:
        """Parse + price a request *before* the admission gate sees it.

        Estimation is deliberately pre-admission: it is a memoized fold
        over the compiled plan (which answering needs anyway), and a gate
        that cannot see a request's price cannot shed load by cost. Parse
        and validation errors raise here — an invalid request must never
        consume quota or budget.
        """
        if path == "/v1/query":
            request = parse_query_request(payload)
            entry = self.catalog.get(request.graph)
            config = entry.request_config(
                k=request.k,
                alpha=request.alpha,
                time_budget_ms=request.time_budget_ms,
                objective=request.objective,
                use_compression=request.use_compression,
            )
            estimate = entry.estimate_cost(request.query, config)
            probe = _Probe(
                graph=request.graph,
                query_key=_query_key(request.query),
                request=request,
                config=config,
                estimate=estimate,
            )
            if estimate is not None:
                probe.cost = estimate.work_units
                probe.wire = estimate.to_wire()
            return probe
        if path == "/v1/batch":
            request = parse_batch_request(payload)
            entry = self.catalog.get(request.graph)
            config = entry.request_config(
                k=request.k,
                alpha=request.alpha,
                time_budget_ms=request.time_budget_ms,
                objective=request.objective,
                use_compression=request.use_compression,
            )
            estimates = [entry.estimate_cost(q, config) for q in request.queries]
            probe = _Probe(
                graph=request.graph,
                request=request,
                config=config,
                estimates=estimates,
            )
            if all(e is not None for e in estimates):
                total = sum(e.work_units for e in estimates)
                probe.cost = total
                probe.wire = {
                    "work_units": round(total, 3),
                    "queries": len(estimates),
                }
            else:
                probe.cost = float(len(request.queries))
            return probe
        # Mutation routes: nominal count-style cost; the graph name is the
        # path segment (already vetted by _match_graph_route).
        parts = path.strip("/").split("/")
        graph = (
            urllib.parse.unquote(parts[2])
            if len(parts) == 4 and parts[:2] == ["v1", "graphs"]
            else None
        )
        return _Probe(cost=DEFAULT_MUTATION_COST, graph=graph)

    # -- endpoint bodies -----------------------------------------------
    def handle_query(
        self, payload: Dict[str, object], probe: Optional[_Probe] = None
    ) -> Dict[str, object]:
        """``POST /v1/query``: one diversified top-k answer.

        When called through :meth:`handle_post`, ``probe`` carries the
        already-parsed request and its cost estimate; direct (test) calls
        parse and estimate here instead.
        """
        if probe is None or probe.request is None:
            probe = self._probe_cost("/v1/query", payload)
        request, config, estimate = probe.request, probe.config, probe.estimate
        entry = self.catalog.get(request.graph)
        start = time.perf_counter()
        result = entry.answer(request.query, config)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        entry.observe_cost(estimate, result, config)
        body = result_to_json(result, graph=request.graph, elapsed_ms=elapsed_ms)
        if estimate is not None:
            body["estimated_cost"] = estimate.to_wire()
        return body

    def handle_batch(
        self, payload: Dict[str, object], probe: Optional[_Probe] = None
    ) -> Dict[str, object]:
        """``POST /v1/batch``: a query batch through the parallel executor."""
        if probe is None or probe.request is None:
            probe = self._probe_cost("/v1/batch", payload)
        request, config = probe.request, probe.config
        estimates = probe.estimates or [None] * len(request.queries)
        entry = self.catalog.get(request.graph)
        start = time.perf_counter()
        results, report = entry.answer_batch(
            request.queries, config, strategy=request.strategy, jobs=request.jobs
        )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        for estimate, result in zip(estimates, results):
            entry.observe_cost(estimate, result, config)
        body = {
            "graph": request.graph,
            "count": len(results),
            "results": [result_to_json(r, graph=request.graph) for r in results],
            "cache_hits": sum(1 for r in results if r.from_cache),
            "any_deadline_exhausted": any(r.stats.deadline_exhausted for r in results),
            "elapsed_ms": elapsed_ms,
            "executor": {
                "strategy": report.strategy,
                "jobs": report.jobs,
                "batch": report.batch,
                "searches": report.searches,
                "chunks": report.chunks,
                "chunks_retried": report.chunks_retried,
                "per_worker": [list(row) for row in report.per_worker],
            },
        }
        if probe.wire is not None:
            body["estimated_cost"] = dict(probe.wire)
        return body

    def handle_mutate_edge(self, graph: str, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST /v1/graphs/{g}/edges``: one edge add/remove."""
        return self._apply_mutation(parse_edge_mutation(graph, payload))

    def handle_ingest(self, graph: str, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST /v1/graphs/{g}/ingest``: a mutation batch as one write."""
        return self._apply_mutation(parse_ingest_request(graph, payload))

    def _apply_mutation(self, request) -> Dict[str, object]:
        """Shared write path: gate, serialize through the entry, encode."""
        if not self.allow_mutations:
            raise ServiceError(
                501,
                "mutation_unsupported",
                "this deployment serves read-only shared-memory graphs "
                "(pre-forked workers cannot see each other's writes); "
                "use the single-process server for mutations",
            )
        entry = self.catalog.get(request.graph)
        start = time.perf_counter()
        if request.compaction_threshold is not None:
            summary = entry.mutate(
                request.ops, compaction_threshold=request.compaction_threshold
            )
        else:
            summary = entry.mutate(request.ops)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics = self.instrumentation.metrics
        metrics.counter("service.mutations").inc()
        if summary.compacted:
            metrics.counter("service.mutations.compactions").inc()
        return mutation_to_json(summary, graph=request.graph, elapsed_ms=elapsed_ms)

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        """``GET /healthz``: liveness + live admission occupancy."""
        status = 503 if self.draining else 200
        body: Dict[str, object] = {
            "status": "draining" if self.draining else "ok",
            "graphs": self.catalog.names(),
            "objectives": sorted(OBJECTIVE_NAMES),
            "mutations_enabled": self.allow_mutations,
            "uptime_ms": (time.monotonic() - self._started) * 1000.0,
            "admission": self.admission.describe(),
        }
        if self.quotas is not None:
            body["client_quotas"] = self.quotas.describe()
        if self.identity:
            body["identity"] = dict(self.identity)
        return status, body

    def metrics_snapshot(self) -> Dict[str, object]:
        """``GET /metrics``: the full registry snapshot plus catalog facts."""
        body: Dict[str, object] = {
            "uptime_ms": (time.monotonic() - self._started) * 1000.0,
            "metrics": self.instrumentation.metrics.snapshot(),
            "catalog": self.catalog.describe(),
        }
        if self.identity:
            body["identity"] = dict(self.identity)
        return body

    # -- request lifecycle ---------------------------------------------
    def _match_graph_route(
        self, path: str
    ) -> Optional[Callable[[Dict[str, object]], Dict[str, object]]]:
        """Per-graph routes: ``/v1/graphs/{g}/edges`` and ``/v1/graphs/{g}/ingest``.

        The graph name is one percent-decodable path segment (names like
        ``dblp@0.05`` pass through verbatim); unknown action suffixes fall
        through to the caller's 404.
        """
        parts = path.strip("/").split("/")
        if len(parts) != 4 or parts[0] != "v1" or parts[1] != "graphs" or not parts[2]:
            return None
        graph = urllib.parse.unquote(parts[2])
        if parts[3] == "edges":
            return lambda payload, probe=None: self.handle_mutate_edge(graph, payload)
        if parts[3] == "ingest":
            return lambda payload, probe=None: self.handle_ingest(graph, payload)
        return None

    def handle_post(
        self,
        path: str,
        read_payload: Callable[[], Dict[str, object]],
        headers: Optional[Dict[str, str]] = None,
        request_id: Optional[int] = None,
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        """Admission-gated dispatch; returns ``(status, body, retry_after_s)``.

        The request lifecycle, in order: route, drain check, body read,
        **cost probe** (parse + estimate, so the gates can price the
        request), **per-client quota** (429 ``quota_exceeded``), **global
        admission** (429 ``overloaded``), handler, access-log line.

        Every failure mode is funneled into a :class:`ServiceError` body:
        unknown endpoint (404), draining (503), shed load (429 with
        ``Retry-After``), parse/validation errors (400/404/413), and any
        unexpected exception (500, logged with traceback, opaque body).
        """
        retry_after = None
        probe: Optional[_Probe] = None
        client = None
        if headers:
            # HTTP header names are case-insensitive; a plain dict is not.
            wanted = CLIENT_ID_HEADER.lower()
            client = next(
                (v for k, v in headers.items() if k.lower() == wanted), None
            )
        started = time.monotonic()
        try:
            handler = self._post_handlers.get(path)
            if handler is None:
                handler = self._match_graph_route(path)
            if handler is None:
                raise ServiceError(404, "unknown_endpoint", f"no such endpoint: POST {path}")
            if self.draining:
                raise ServiceError(
                    503, "draining", "server is draining; not accepting new requests"
                )
            payload = read_payload()
            probe = self._probe_cost(path, payload)
            if self.quotas is not None:
                quota_client = client if client else ANONYMOUS_CLIENT
                if not self.quotas.try_consume(quota_client, probe.cost):
                    self.instrumentation.metrics.counter(
                        "service.quota_rejections"
                    ).inc()
                    raise ServiceError(
                        429,
                        "quota_exceeded",
                        f"client {quota_client!r} is over its work-unit quota "
                        f"({self.quotas.rate:g} units/s, burst "
                        f"{self.quotas.burst:g}); slow down",
                        retry_after_s=max(
                            self.retry_after_s,
                            self.quotas.retry_after(quota_client, probe.cost),
                        ),
                    )
            ticket = self.admission.try_admit(probe.cost)
            if ticket is None:
                raise ServiceError(
                    429,
                    "overloaded",
                    f"at capacity ({self.admission.describe()}); retry later",
                    retry_after_s=self.admission.retry_after_hint(
                        self.retry_after_s, probe.cost
                    ),
                )
            try:
                body, status = handler(payload, probe), 200
            finally:
                self.admission.release(ticket)
        except ServiceError as exc:
            body, status, retry_after = exc.to_body(), exc.status, exc.retry_after_s
        except Exception:
            logger.exception("unhandled error serving POST %s", path)
            exc = ServiceError(500, "internal", "internal server error")
            body, status = exc.to_body(), exc.status
        if self.access_log is not None:
            self._log_access(path, status, probe, body, client, request_id, started)
        return status, body, retry_after

    def _log_access(
        self,
        path: str,
        status: int,
        probe: Optional[_Probe],
        body: Dict[str, object],
        client: Optional[str],
        request_id: Optional[int],
        started: float,
    ) -> None:
        """One JSONL line per POST; never lets a logging bug fail the request."""
        try:
            estimated = None
            if probe is not None and probe.wire is not None:
                estimated = probe.wire.get("work_units")
            self.access_log.record(
                ts_ms=time.time() * 1000.0,
                request_id=request_id if request_id is not None else self.next_request_id(),
                path=path,
                status=status,
                latency_ms=(time.monotonic() - started) * 1000.0,
                client=client,
                graph=probe.graph if probe is not None else None,
                query_key=probe.query_key if probe is not None else None,
                estimated_work_units=estimated,
                actual_work_units=_actual_work_units(body),
            )
        except Exception:  # pragma: no cover - defensive
            logger.exception("failed to write access-log record for POST %s", path)

    def observe_request(self, method: str, path: str, status: int, elapsed_ms: float) -> None:
        """Outcome counters for every request; latency histogram for /v1/*."""
        metrics = self.instrumentation.metrics
        metrics.counter("service.requests").inc()
        metrics.counter(f"service.requests.{_outcome(status)}").inc()
        if path.startswith("/v1/"):
            metrics.histogram("service.latency_ms").observe(elapsed_ms)

    def next_request_id(self) -> int:
        return next(self._request_ids)

    # -- drain ----------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting new work; in-flight requests run to completion."""
        self.draining = True

    def close(self) -> None:
        """Release catalog executors (worker pools, shared segments), then
        flush instrumentation (the trace sink, when one is attached) and
        the access log."""
        self.catalog.close()
        self.instrumentation.close()
        if self.access_log is not None:
            self.access_log.close()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _ServiceHTTPServer(ThreadingHTTPServer):
    # block_on_close (inherited True) + an explicit server_close() is what
    # makes drain wait for in-flight handler threads. That only works with
    # non-daemon handler threads: ThreadingMixIn does not track daemon
    # threads at all, so daemon_threads=True would turn the drain join into
    # a no-op and let close() return with requests still executing. The
    # handler's read timeout bounds how long a stuck client can delay it.
    daemon_threads = False
    allow_reuse_address = True
    # SO_REUSEPORT lets N pre-forked workers bind the *same* port and have
    # the kernel load-balance incoming connections across them — the
    # multi-worker front (repro.service.multiworker) flips this on.
    reuse_port = False

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def handle_error(self, request, client_address):  # pragma: no cover - client aborts
        logger.warning("error handling connection from %s", client_address, exc_info=True)


class _ServiceHandler(BaseHTTPRequestHandler):
    """One HTTP connection; ``service`` is bound on a per-server subclass."""

    service: QueryService
    server_version = "repro-service"
    # Bound the read of a request so a silent client cannot pin a handler
    # thread forever (which would also stall the drain join).
    timeout = 30.0

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        logger.debug("%s %s", self.address_string(), format % args)

    # -- plumbing ------------------------------------------------------
    def _send_json(
        self, status: int, body: Dict[str, object], retry_after: Optional[float] = None
    ) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(data)

    def _read_payload(self) -> Dict[str, object]:
        length_text = self.headers.get("Content-Length")
        try:
            length = int(length_text)
        except (TypeError, ValueError):
            raise ServiceError(
                400, "invalid_request", "POST requires a Content-Length header"
            ) from None
        return parse_json_body(self.rfile.read(length))

    # -- methods -------------------------------------------------------
    def do_GET(self) -> None:
        service = self.service
        path = self.path.split("?", 1)[0]
        start = time.monotonic()
        if path == "/healthz":
            status, body = service.healthz()
        elif path == "/metrics":
            status, body = 200, service.metrics_snapshot()
        else:
            error = ServiceError(404, "unknown_endpoint", f"no such endpoint: GET {path}")
            status, body = error.status, error.to_body()
        service.observe_request("GET", path, status, (time.monotonic() - start) * 1000.0)
        self._send_json(status, body)

    def do_POST(self) -> None:
        service = self.service
        path = self.path.split("?", 1)[0]
        start = time.monotonic()
        request_id = service.next_request_id()
        with service.instrumentation.span(
            "service.request", query_id=None, request_id=request_id, path=path
        ) as span:
            status, body, retry_after = service.handle_post(
                path,
                self._read_payload,
                headers=dict(self.headers.items()),
                request_id=request_id,
            )
            span["status"] = status
        elapsed_ms = (time.monotonic() - start) * 1000.0
        service.observe_request("POST", path, status, elapsed_ms)
        self._send_json(status, body, retry_after)


class ServiceServer:
    """Owns the listening socket, the serve loop, and the drain sequence.

    Usage (in-process, e.g. tests and the load benchmark)::

        server = ServiceServer(service, port=0).start()
        ... requests against server.url ...
        server.close()   # drain: finish in-flight, flush traces

    or blocking (the CLI)::

        server.install_signal_handlers()
        server.serve_forever()   # returns once SIGTERM triggers the drain
        server.close()
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> None:
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ConfigError("SO_REUSEPORT is not available on this platform")
        self.service = service
        handler = type("BoundServiceHandler", (_ServiceHandler,), {"service": service})
        server_cls = type(
            "BoundServiceHTTPServer", (_ServiceHTTPServer,), {"reuse_port": reuse_port}
        )
        self._http = server_cls((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._close_lock = threading.Lock()
        self._closing = False
        self._closed = threading.Event()

    # -- addresses -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port is the real one when 0 was asked."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- serving -------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread until the drain starts."""
        self._serving = True
        self._http.serve_forever(poll_interval=0.1)

    def start(self) -> "ServiceServer":
        """Run the accept loop on a background thread (in-process serving)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-service", daemon=True,
        )
        self._thread.start()
        return self

    # -- drain ----------------------------------------------------------
    def request_shutdown(self) -> None:
        """Signal-safe drain trigger: runs :meth:`close` on a helper thread.

        Needed because a signal handler executes on the main thread — the
        very thread blocked in ``serve_forever`` — and ``shutdown()`` would
        deadlock waiting for itself.
        """
        threading.Thread(target=self.close, name="repro-service-drain", daemon=True).start()

    def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, flush traces.

        Idempotent and thread-safe; late callers block until the first
        drain completes.
        """
        with self._close_lock:
            first = not self._closing
            self._closing = True
        if not first:
            self._closed.wait()
            return
        logger.info("drain: stopping accept loop")
        self.service.begin_drain()
        if self._serving:
            self._http.shutdown()
        # Joins in-flight handler threads (ThreadingMixIn.block_on_close).
        self._http.server_close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join()
        self.service.close()
        logger.info("drain: complete")
        self._closed.set()

    def install_signal_handlers(self, signals=(signal.SIGTERM, signal.SIGINT)) -> Dict:
        """Route SIGTERM/SIGINT to the graceful drain; returns prior handlers."""
        previous = {}
        for sig in signals:
            previous[sig] = signal.signal(sig, lambda *_: self.request_shutdown())
        return previous
