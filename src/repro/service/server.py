"""The long-running query server: HTTP transport, routing, and drain.

Two layers, deliberately separated:

:class:`QueryService`
    Transport-free request handling. ``handle_query`` / ``handle_batch``
    take parsed JSON payloads and return response bodies; admission
    control, draining, outcome metrics, and the per-request trace span all
    live here, so the logic is directly unit-testable without a socket.
:class:`ServiceServer`
    The stdlib ``http.server.ThreadingHTTPServer`` wrapper: one thread per
    connection, ``POST /v1/query`` / ``POST /v1/batch`` /
    ``POST /v1/graphs/{g}/edges`` / ``POST /v1/graphs/{g}/ingest`` /
    ``GET /healthz`` / ``GET /metrics``, JSON in and out. HTTP/1.0
    semantics (connection closed after each response) keep the drain story
    simple — no idle keep-alive connections to wait out.

Graceful drain (``SIGTERM`` or :meth:`ServiceServer.close`): stop
accepting new connections, let every in-flight request finish
(``server_close`` joins the handler threads), then flush the trace sink.
The signal handler itself only *requests* the shutdown from a helper
thread — calling ``shutdown()`` from the thread running ``serve_forever``
(the main thread, under a signal) would deadlock.

Request outcomes land in the ``service.*`` metrics (see
``docs/observability.md``); with a tracer attached every request emits one
``service.request`` span carrying path, status, and graph.
"""

from __future__ import annotations

import itertools
import json
import logging
import math
import signal
import socket
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.coverage.objectives import OBJECTIVE_NAMES
from repro.exceptions import ConfigError
from repro.service.admission import AdmissionController
from repro.service.catalog import GraphCatalog
from repro.service.schemas import (
    ServiceError,
    mutation_to_json,
    parse_batch_request,
    parse_edge_mutation,
    parse_ingest_request,
    parse_json_body,
    parse_query_request,
    result_to_json,
)

logger = logging.getLogger("repro.service")

DEFAULT_MAX_IN_FLIGHT = 8
DEFAULT_MAX_QUEUE = 32
DEFAULT_RETRY_AFTER_S = 1.0


def _outcome(status: int) -> str:
    """HTTP status -> the outcome class used in ``service.requests.*``."""
    if status < 400:
        return "ok"
    if status == 429:
        return "rejected"
    if status == 503:
        return "draining"
    if status < 500:
        return "client_error"
    return "server_error"


class QueryService:
    """Routes parsed requests onto a :class:`~repro.service.catalog.GraphCatalog`.

    Parameters
    ----------
    catalog:
        The warm graph catalog; its instrumentation (metrics registry, and
        tracer if any) is shared by the service.
    max_in_flight, max_queue:
        Admission-control bounds (see
        :class:`~repro.service.admission.AdmissionController`).
    retry_after_s:
        The ``Retry-After`` hint attached to 429 rejections.
    allow_mutations:
        When ``False`` the write surface (``POST /v1/graphs/{g}/edges`` and
        ``/v1/graphs/{g}/ingest``) answers 501 ``mutation_unsupported``.
        The pre-forked multi-worker front sets this: its workers serve
        *attached* shared-memory graphs, and a write in one worker would be
        invisible to its siblings behind the same port.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        identity: Optional[Dict[str, object]] = None,
        allow_mutations: bool = True,
    ) -> None:
        self.catalog = catalog
        self.allow_mutations = allow_mutations
        self.instrumentation = catalog.instrumentation
        self.admission = AdmissionController(
            max_in_flight, max_queue, metrics=self.instrumentation.metrics
        )
        self.retry_after_s = retry_after_s
        # Who is answering: the multi-worker front (repro.service.multiworker)
        # tags each pre-forked worker so /healthz and /metrics are attributable.
        self.identity = dict(identity or {})
        self.draining = False
        self._request_ids = itertools.count()
        self._started = time.monotonic()
        self._post_handlers: Dict[str, Callable[[Dict[str, object]], Dict[str, object]]] = {
            "/v1/query": self.handle_query,
            "/v1/batch": self.handle_batch,
        }

    # -- endpoint bodies -----------------------------------------------
    def handle_query(self, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST /v1/query``: one diversified top-k answer."""
        request = parse_query_request(payload)
        entry = self.catalog.get(request.graph)
        config = entry.request_config(
            k=request.k,
            alpha=request.alpha,
            time_budget_ms=request.time_budget_ms,
            objective=request.objective,
        )
        start = time.perf_counter()
        result = entry.answer(request.query, config)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return result_to_json(result, graph=request.graph, elapsed_ms=elapsed_ms)

    def handle_batch(self, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST /v1/batch``: a query batch through the parallel executor."""
        request = parse_batch_request(payload)
        entry = self.catalog.get(request.graph)
        config = entry.request_config(
            k=request.k,
            alpha=request.alpha,
            time_budget_ms=request.time_budget_ms,
            objective=request.objective,
        )
        start = time.perf_counter()
        results, report = entry.answer_batch(
            request.queries, config, strategy=request.strategy, jobs=request.jobs
        )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return {
            "graph": request.graph,
            "count": len(results),
            "results": [result_to_json(r, graph=request.graph) for r in results],
            "cache_hits": sum(1 for r in results if r.from_cache),
            "any_deadline_exhausted": any(r.stats.deadline_exhausted for r in results),
            "elapsed_ms": elapsed_ms,
            "executor": {
                "strategy": report.strategy,
                "jobs": report.jobs,
                "batch": report.batch,
                "searches": report.searches,
                "chunks": report.chunks,
                "chunks_retried": report.chunks_retried,
                "per_worker": [list(row) for row in report.per_worker],
            },
        }

    def handle_mutate_edge(self, graph: str, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST /v1/graphs/{g}/edges``: one edge add/remove."""
        return self._apply_mutation(parse_edge_mutation(graph, payload))

    def handle_ingest(self, graph: str, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST /v1/graphs/{g}/ingest``: a mutation batch as one write."""
        return self._apply_mutation(parse_ingest_request(graph, payload))

    def _apply_mutation(self, request) -> Dict[str, object]:
        """Shared write path: gate, serialize through the entry, encode."""
        if not self.allow_mutations:
            raise ServiceError(
                501,
                "mutation_unsupported",
                "this deployment serves read-only shared-memory graphs "
                "(pre-forked workers cannot see each other's writes); "
                "use the single-process server for mutations",
            )
        entry = self.catalog.get(request.graph)
        start = time.perf_counter()
        if request.compaction_threshold is not None:
            summary = entry.mutate(
                request.ops, compaction_threshold=request.compaction_threshold
            )
        else:
            summary = entry.mutate(request.ops)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        metrics = self.instrumentation.metrics
        metrics.counter("service.mutations").inc()
        if summary.compacted:
            metrics.counter("service.mutations.compactions").inc()
        return mutation_to_json(summary, graph=request.graph, elapsed_ms=elapsed_ms)

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        """``GET /healthz``: liveness + live admission occupancy."""
        status = 503 if self.draining else 200
        body: Dict[str, object] = {
            "status": "draining" if self.draining else "ok",
            "graphs": self.catalog.names(),
            "objectives": sorted(OBJECTIVE_NAMES),
            "mutations_enabled": self.allow_mutations,
            "uptime_ms": (time.monotonic() - self._started) * 1000.0,
            "admission": self.admission.describe(),
        }
        if self.identity:
            body["identity"] = dict(self.identity)
        return status, body

    def metrics_snapshot(self) -> Dict[str, object]:
        """``GET /metrics``: the full registry snapshot plus catalog facts."""
        body: Dict[str, object] = {
            "uptime_ms": (time.monotonic() - self._started) * 1000.0,
            "metrics": self.instrumentation.metrics.snapshot(),
            "catalog": self.catalog.describe(),
        }
        if self.identity:
            body["identity"] = dict(self.identity)
        return body

    # -- request lifecycle ---------------------------------------------
    def _match_graph_route(
        self, path: str
    ) -> Optional[Callable[[Dict[str, object]], Dict[str, object]]]:
        """Per-graph routes: ``/v1/graphs/{g}/edges`` and ``/v1/graphs/{g}/ingest``.

        The graph name is one percent-decodable path segment (names like
        ``dblp@0.05`` pass through verbatim); unknown action suffixes fall
        through to the caller's 404.
        """
        parts = path.strip("/").split("/")
        if len(parts) != 4 or parts[0] != "v1" or parts[1] != "graphs" or not parts[2]:
            return None
        graph = urllib.parse.unquote(parts[2])
        if parts[3] == "edges":
            return lambda payload: self.handle_mutate_edge(graph, payload)
        if parts[3] == "ingest":
            return lambda payload: self.handle_ingest(graph, payload)
        return None

    def handle_post(
        self, path: str, read_payload: Callable[[], Dict[str, object]]
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        """Admission-gated dispatch; returns ``(status, body, retry_after_s)``.

        Every failure mode is funneled into a :class:`ServiceError` body:
        unknown endpoint (404), draining (503), queue overflow (429 with
        ``Retry-After``), parse/validation errors (400/404/413), and any
        unexpected exception (500, logged with traceback, opaque body).
        """
        retry_after = None
        try:
            handler = self._post_handlers.get(path)
            if handler is None:
                handler = self._match_graph_route(path)
            if handler is None:
                raise ServiceError(404, "unknown_endpoint", f"no such endpoint: POST {path}")
            if self.draining:
                raise ServiceError(
                    503, "draining", "server is draining; not accepting new requests"
                )
            payload = read_payload()
            if not self.admission.acquire():
                raise ServiceError(
                    429,
                    "overloaded",
                    f"at capacity ({self.admission.max_in_flight} in flight, "
                    f"{self.admission.max_queue} queued); retry later",
                    retry_after_s=self.retry_after_s,
                )
            try:
                body, status = handler(payload), 200
            finally:
                self.admission.release()
        except ServiceError as exc:
            body, status, retry_after = exc.to_body(), exc.status, exc.retry_after_s
        except Exception:
            logger.exception("unhandled error serving POST %s", path)
            exc = ServiceError(500, "internal", "internal server error")
            body, status = exc.to_body(), exc.status
        return status, body, retry_after

    def observe_request(self, method: str, path: str, status: int, elapsed_ms: float) -> None:
        """Outcome counters for every request; latency histogram for /v1/*."""
        metrics = self.instrumentation.metrics
        metrics.counter("service.requests").inc()
        metrics.counter(f"service.requests.{_outcome(status)}").inc()
        if path.startswith("/v1/"):
            metrics.histogram("service.latency_ms").observe(elapsed_ms)

    def next_request_id(self) -> int:
        return next(self._request_ids)

    # -- drain ----------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting new work; in-flight requests run to completion."""
        self.draining = True

    def close(self) -> None:
        """Release catalog executors (worker pools, shared segments), then
        flush instrumentation (the trace sink, when one is attached)."""
        self.catalog.close()
        self.instrumentation.close()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class _ServiceHTTPServer(ThreadingHTTPServer):
    # block_on_close (inherited True) + an explicit server_close() is what
    # makes drain wait for in-flight handler threads. That only works with
    # non-daemon handler threads: ThreadingMixIn does not track daemon
    # threads at all, so daemon_threads=True would turn the drain join into
    # a no-op and let close() return with requests still executing. The
    # handler's read timeout bounds how long a stuck client can delay it.
    daemon_threads = False
    allow_reuse_address = True
    # SO_REUSEPORT lets N pre-forked workers bind the *same* port and have
    # the kernel load-balance incoming connections across them — the
    # multi-worker front (repro.service.multiworker) flips this on.
    reuse_port = False

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def handle_error(self, request, client_address):  # pragma: no cover - client aborts
        logger.warning("error handling connection from %s", client_address, exc_info=True)


class _ServiceHandler(BaseHTTPRequestHandler):
    """One HTTP connection; ``service`` is bound on a per-server subclass."""

    service: QueryService
    server_version = "repro-service"
    # Bound the read of a request so a silent client cannot pin a handler
    # thread forever (which would also stall the drain join).
    timeout = 30.0

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        logger.debug("%s %s", self.address_string(), format % args)

    # -- plumbing ------------------------------------------------------
    def _send_json(
        self, status: int, body: Dict[str, object], retry_after: Optional[float] = None
    ) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(data)

    def _read_payload(self) -> Dict[str, object]:
        length_text = self.headers.get("Content-Length")
        try:
            length = int(length_text)
        except (TypeError, ValueError):
            raise ServiceError(
                400, "invalid_request", "POST requires a Content-Length header"
            ) from None
        return parse_json_body(self.rfile.read(length))

    # -- methods -------------------------------------------------------
    def do_GET(self) -> None:
        service = self.service
        path = self.path.split("?", 1)[0]
        start = time.monotonic()
        if path == "/healthz":
            status, body = service.healthz()
        elif path == "/metrics":
            status, body = 200, service.metrics_snapshot()
        else:
            error = ServiceError(404, "unknown_endpoint", f"no such endpoint: GET {path}")
            status, body = error.status, error.to_body()
        service.observe_request("GET", path, status, (time.monotonic() - start) * 1000.0)
        self._send_json(status, body)

    def do_POST(self) -> None:
        service = self.service
        path = self.path.split("?", 1)[0]
        start = time.monotonic()
        request_id = service.next_request_id()
        with service.instrumentation.span(
            "service.request", query_id=None, request_id=request_id, path=path
        ) as span:
            status, body, retry_after = service.handle_post(path, self._read_payload)
            span["status"] = status
        elapsed_ms = (time.monotonic() - start) * 1000.0
        service.observe_request("POST", path, status, elapsed_ms)
        self._send_json(status, body, retry_after)


class ServiceServer:
    """Owns the listening socket, the serve loop, and the drain sequence.

    Usage (in-process, e.g. tests and the load benchmark)::

        server = ServiceServer(service, port=0).start()
        ... requests against server.url ...
        server.close()   # drain: finish in-flight, flush traces

    or blocking (the CLI)::

        server.install_signal_handlers()
        server.serve_forever()   # returns once SIGTERM triggers the drain
        server.close()
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> None:
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ConfigError("SO_REUSEPORT is not available on this platform")
        self.service = service
        handler = type("BoundServiceHandler", (_ServiceHandler,), {"service": service})
        server_cls = type(
            "BoundServiceHTTPServer", (_ServiceHTTPServer,), {"reuse_port": reuse_port}
        )
        self._http = server_cls((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._close_lock = threading.Lock()
        self._closing = False
        self._closed = threading.Event()

    # -- addresses -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port is the real one when 0 was asked."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- serving -------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread until the drain starts."""
        self._serving = True
        self._http.serve_forever(poll_interval=0.1)

    def start(self) -> "ServiceServer":
        """Run the accept loop on a background thread (in-process serving)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-service", daemon=True,
        )
        self._thread.start()
        return self

    # -- drain ----------------------------------------------------------
    def request_shutdown(self) -> None:
        """Signal-safe drain trigger: runs :meth:`close` on a helper thread.

        Needed because a signal handler executes on the main thread — the
        very thread blocked in ``serve_forever`` — and ``shutdown()`` would
        deadlock waiting for itself.
        """
        threading.Thread(target=self.close, name="repro-service-drain", daemon=True).start()

    def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, flush traces.

        Idempotent and thread-safe; late callers block until the first
        drain completes.
        """
        with self._close_lock:
            first = not self._closing
            self._closing = True
        if not first:
            self._closed.wait()
            return
        logger.info("drain: stopping accept loop")
        self.service.begin_drain()
        if self._serving:
            self._http.shutdown()
        # Joins in-flight handler threads (ThreadingMixIn.block_on_close).
        self._http.server_close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join()
        self.service.close()
        logger.info("drain: complete")
        self._closed.set()

    def install_signal_handlers(self, signals=(signal.SIGTERM, signal.SIGINT)) -> Dict:
        """Route SIGTERM/SIGINT to the graceful drain; returns prior handlers."""
        previous = {}
        for sig in signals:
            previous[sig] = signal.signal(sig, lambda *_: self.request_shutdown())
        return previous
