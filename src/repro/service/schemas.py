"""Wire format of the query service: request/response JSON and typed errors.

Everything that crosses the HTTP boundary is defined here so the transport
layer (:mod:`repro.service.server`), the client
(:mod:`repro.service.client`), and the tests share one source of truth:

* :class:`ServiceError` — an exception carrying an HTTP status, a stable
  machine-readable ``code``, and a human message; its :meth:`~ServiceError.
  to_body` form is the *only* error body shape the service emits.
* ``parse_query_request`` / ``parse_batch_request`` — strict validators for
  the ``POST /v1/query`` and ``POST /v1/batch`` payloads. Strict means
  unknown fields are rejected (a typoed ``"tiem_budget_ms"`` must fail
  loudly, not silently fall back to the default).
* ``parse_edge_mutation`` / ``parse_ingest_request`` — validators for the
  write surface, ``POST /v1/graphs/{g}/edges`` and ``/v1/graphs/{g}/ingest``;
  ``mutation_to_json`` encodes the resulting
  :class:`~repro.graph.labeled_graph.MutationSummary`.
* ``query_graph_from_json`` / ``query_graph_to_json`` — the round-trippable
  query-graph encoding ``{"labels": [...], "edges": [[u, v], ...]}``;
  structural validation (non-empty, connected) is delegated to
  :class:`~repro.graph.query_graph.QueryGraph` and surfaced as a 400.
* ``result_to_json`` — the response encoding of a
  :class:`~repro.core.result.DSQResult`, which is ``DSQResult.to_dict()``
  plus the serving envelope (graph name, elapsed time, and a top-level
  ``deadline_exhausted`` flag per the DESIGN §6.2 caveat: a deadline trip is
  a *successful* truncated answer, HTTP 200, that forfeits the paper's
  Theorem-3 optimality claims).

See ``docs/service.md`` for the full endpoint reference.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.coverage.objectives import OBJECTIVE_NAMES
from repro.exceptions import GraphError, QueryError, ReproError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

MAX_BODY_BYTES = 8 << 20
"""Request bodies above this size are rejected with 413 before parsing."""

MAX_BATCH_QUERIES = 4096
"""Upper bound on ``/v1/batch`` fan-out (one request must stay bounded)."""

MAX_INGEST_OPS = 100_000
"""Upper bound on ``/v1/graphs/{g}/ingest`` batch size per request."""

MUTATION_OP_KINDS = ("add_vertex", "add_edge", "remove_edge")
"""Op kinds accepted by the ingest endpoint, in wire order."""

BATCH_STRATEGIES = ("serial", "thread")
"""Batch strategies the service accepts.

The ``process`` strategy of :class:`~repro.parallel.executor.BatchExecutor`
is deliberately excluded: forking from a multi-threaded HTTP server can
deadlock in the children (only the forking thread survives the fork while
locks keep their state), so the service offers the fork-free subset.
"""


class ServiceError(ReproError):
    """A request failure with an HTTP status and a stable error code.

    Raised anywhere between parsing and answering; the transport layer maps
    it to a response with status :attr:`status` and body :meth:`to_body`.
    ``retry_after_s`` is set only for 429 rejections and is also surfaced as
    the standard ``Retry-After`` header.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s

    def to_body(self) -> Dict[str, object]:
        """The JSON error body: ``{"error": {"code": ..., "message": ...}}``."""
        error: Dict[str, object] = {"code": self.code, "message": self.message}
        if self.retry_after_s is not None:
            error["retry_after_s"] = self.retry_after_s
        return {"error": error}


@dataclass(frozen=True)
class QueryRequest:
    """A validated ``POST /v1/query`` payload."""

    graph: str
    query: QueryGraph
    k: Optional[int] = None
    alpha: Optional[float] = None
    time_budget_ms: Optional[float] = None
    objective: Optional[str] = None
    use_compression: Optional[bool] = None


@dataclass(frozen=True)
class MutationRequest:
    """A validated mutation payload (``/edges`` or ``/ingest``); the graph
    name comes from the request path, not the body."""

    graph: str
    ops: Tuple[Tuple, ...]
    compaction_threshold: Optional[int] = None


@dataclass(frozen=True)
class BatchRequest:
    """A validated ``POST /v1/batch`` payload."""

    graph: str
    queries: Tuple[QueryGraph, ...]
    k: Optional[int] = None
    alpha: Optional[float] = None
    time_budget_ms: Optional[float] = None
    strategy: str = "serial"
    jobs: Optional[int] = None
    objective: Optional[str] = None
    use_compression: Optional[bool] = None


# ----------------------------------------------------------------------
# Field-level validation helpers
# ----------------------------------------------------------------------
def _reject_unknown(payload: Dict[str, object], allowed: Tuple[str, ...], where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ServiceError(
            400,
            "unknown_field",
            f"{where}: unknown field(s) {unknown}; allowed: {sorted(allowed)}",
        )


def _require_str(payload: Dict[str, object], name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value:
        raise ServiceError(400, "invalid_request", f"{name!r} must be a non-empty string")
    return value


def _optional_int(payload: Dict[str, object], name: str, minimum: int) -> Optional[int]:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(400, "invalid_request", f"{name!r} must be an integer")
    if value < minimum:
        raise ServiceError(400, "invalid_request", f"{name!r} must be >= {minimum}, got {value}")
    return value


def _optional_number(payload: Dict[str, object], name: str, positive: bool) -> Optional[float]:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(400, "invalid_request", f"{name!r} must be a number")
    if positive and value <= 0:
        raise ServiceError(400, "invalid_request", f"{name!r} must be positive, got {value}")
    if not positive and value < 0:
        raise ServiceError(400, "invalid_request", f"{name!r} must be >= 0, got {value}")
    return float(value)


def _optional_bool(payload: Dict[str, object], name: str) -> Optional[bool]:
    value = payload.get(name)
    if value is None:
        return None
    if not isinstance(value, bool):
        raise ServiceError(400, "invalid_request", f"{name!r} must be a boolean")
    return value


def _optional_objective(payload: Dict[str, object]) -> Optional[str]:
    """Validate the ``objective`` field against the registry (typed 400).

    Weighted-vertex requests use the server-side *degree-derived* weights
    (``1 + degree(v)``): explicit per-vertex weight tables do not cross the
    wire — they are graph-sized, and the catalog owns the graphs.
    """
    value = payload.get("objective")
    if value is None:
        return None
    if not isinstance(value, str) or value not in OBJECTIVE_NAMES:
        raise ServiceError(
            400,
            "invalid_objective",
            f"'objective' must be one of {sorted(OBJECTIVE_NAMES)}, got {value!r}",
        )
    return value


# ----------------------------------------------------------------------
# Body / query-graph codecs
# ----------------------------------------------------------------------
def parse_json_body(raw: bytes) -> Dict[str, object]:
    """Decode a request body into a JSON object (400 on anything else)."""
    if len(raw) > MAX_BODY_BYTES:
        raise ServiceError(
            413,
            "request_too_large",
            f"request body of {len(raw)} bytes exceeds the {MAX_BODY_BYTES} byte limit",
        )
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(400, "invalid_json", f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ServiceError(
            400, "invalid_json", f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def query_graph_to_json(query: LabeledGraph) -> Dict[str, object]:
    """Encode a query graph as ``{"labels": [...], "edges": [[u, v], ...]}``."""
    return {
        "labels": [str(label) for label in query.labels],
        "edges": [[u, v] for u, v in sorted(query.edges())],
    }


def query_graph_from_json(obj: object, where: str = "query") -> QueryGraph:
    """Decode and *validate* a query graph (400 ``invalid_query`` on failure)."""
    if not isinstance(obj, dict):
        raise ServiceError(400, "invalid_query", f"{where} must be a JSON object")
    _reject_unknown(obj, ("labels", "edges", "name"), where)
    labels = obj.get("labels")
    edges = obj.get("edges", [])
    if not isinstance(labels, list) or not labels:
        raise ServiceError(400, "invalid_query", f"{where}.labels must be a non-empty list")
    if not isinstance(edges, list):
        raise ServiceError(400, "invalid_query", f"{where}.edges must be a list of [u, v] pairs")
    pairs = []
    for i, edge in enumerate(edges):
        if (
            not isinstance(edge, (list, tuple))
            or len(edge) != 2
            or any(isinstance(e, bool) or not isinstance(e, int) for e in edge)
        ):
            raise ServiceError(
                400, "invalid_query", f"{where}.edges[{i}] must be a pair of vertex ids"
            )
        pairs.append((edge[0], edge[1]))
    name = obj.get("name", "")
    if not isinstance(name, str):
        raise ServiceError(400, "invalid_query", f"{where}.name must be a string")
    try:
        return QueryGraph(labels, pairs, name=name)
    except (QueryError, GraphError) as exc:
        raise ServiceError(400, "invalid_query", f"{where}: {exc}") from None


# ----------------------------------------------------------------------
# Request parsers
# ----------------------------------------------------------------------
_QUERY_FIELDS = (
    "graph",
    "query",
    "k",
    "alpha",
    "time_budget_ms",
    "objective",
    "use_compression",
)
_BATCH_FIELDS = (
    "graph",
    "queries",
    "k",
    "alpha",
    "time_budget_ms",
    "strategy",
    "jobs",
    "objective",
    "use_compression",
)


def parse_query_request(payload: Dict[str, object]) -> QueryRequest:
    """Validate a ``POST /v1/query`` body (see ``docs/service.md``)."""
    _reject_unknown(payload, _QUERY_FIELDS, "query request")
    return QueryRequest(
        graph=_require_str(payload, "graph"),
        query=query_graph_from_json(payload.get("query")),
        k=_optional_int(payload, "k", minimum=1),
        alpha=_optional_number(payload, "alpha", positive=False),
        time_budget_ms=_optional_number(payload, "time_budget_ms", positive=True),
        objective=_optional_objective(payload),
        use_compression=_optional_bool(payload, "use_compression"),
    )


def parse_batch_request(payload: Dict[str, object]) -> BatchRequest:
    """Validate a ``POST /v1/batch`` body (see ``docs/service.md``)."""
    _reject_unknown(payload, _BATCH_FIELDS, "batch request")
    raw_queries = payload.get("queries")
    if not isinstance(raw_queries, list) or not raw_queries:
        raise ServiceError(400, "invalid_request", "'queries' must be a non-empty list")
    if len(raw_queries) > MAX_BATCH_QUERIES:
        raise ServiceError(
            400,
            "invalid_request",
            f"'queries' has {len(raw_queries)} entries; the limit is {MAX_BATCH_QUERIES}",
        )
    queries = tuple(
        query_graph_from_json(q, where=f"queries[{i}]") for i, q in enumerate(raw_queries)
    )
    strategy = payload.get("strategy", "serial")
    if strategy not in BATCH_STRATEGIES:
        raise ServiceError(
            400,
            "invalid_request",
            f"'strategy' must be one of {list(BATCH_STRATEGIES)}, got {strategy!r} "
            "(the fork-based 'process' strategy is not offered by the service)",
        )
    return BatchRequest(
        graph=_require_str(payload, "graph"),
        queries=queries,
        k=_optional_int(payload, "k", minimum=1),
        alpha=_optional_number(payload, "alpha", positive=False),
        time_budget_ms=_optional_number(payload, "time_budget_ms", positive=True),
        strategy=strategy,
        jobs=_optional_int(payload, "jobs", minimum=1),
        objective=_optional_objective(payload),
        use_compression=_optional_bool(payload, "use_compression"),
    )


# ----------------------------------------------------------------------
# Mutation parsers
# ----------------------------------------------------------------------
_EDGE_FIELDS = ("op", "u", "v")
_INGEST_FIELDS = ("ops", "compaction_threshold")
_EDGE_OPS = {"add": "add_edge", "remove": "remove_edge"}


def _require_vertex(payload: Dict[str, object], name: str) -> int:
    value = payload.get(name)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ServiceError(
            400, "invalid_mutation", f"{name!r} must be a non-negative vertex id"
        )
    return value


def parse_edge_mutation(graph: str, payload: Dict[str, object]) -> MutationRequest:
    """Validate a ``POST /v1/graphs/{g}/edges`` body: one edge op.

    ``{"op": "add" | "remove", "u": int, "v": int}`` — range and self-loop
    checks are the graph's own (they depend on live vertex count) and
    surface as 400 ``invalid_mutation`` from the catalog.
    """
    _reject_unknown(payload, _EDGE_FIELDS, "edge mutation")
    op = payload.get("op")
    if op not in _EDGE_OPS:
        raise ServiceError(
            400, "invalid_mutation", f"'op' must be one of {sorted(_EDGE_OPS)}, got {op!r}"
        )
    u = _require_vertex(payload, "u")
    v = _require_vertex(payload, "v")
    return MutationRequest(graph=graph, ops=((_EDGE_OPS[op], u, v),))


def parse_ingest_request(graph: str, payload: Dict[str, object]) -> MutationRequest:
    """Validate a ``POST /v1/graphs/{g}/ingest`` body: a mutation batch.

    ``ops`` is a list of ``["add_vertex", label]``, ``["add_edge", u, v]``
    or ``["remove_edge", u, v]`` entries, applied in order as *one* write
    (single cache-repair pass, single lock acquisition). The optional
    ``compaction_threshold`` overrides the server's overlay-size trigger
    for this batch only.
    """
    _reject_unknown(payload, _INGEST_FIELDS, "ingest request")
    raw_ops = payload.get("ops")
    if not isinstance(raw_ops, list) or not raw_ops:
        raise ServiceError(400, "invalid_mutation", "'ops' must be a non-empty list")
    if len(raw_ops) > MAX_INGEST_OPS:
        raise ServiceError(
            400,
            "invalid_mutation",
            f"'ops' has {len(raw_ops)} entries; the limit is {MAX_INGEST_OPS}",
        )
    ops = []
    for i, raw in enumerate(raw_ops):
        if not isinstance(raw, (list, tuple)) or not raw or raw[0] not in MUTATION_OP_KINDS:
            raise ServiceError(
                400,
                "invalid_mutation",
                f"ops[{i}] must be a list starting with one of {list(MUTATION_OP_KINDS)}",
            )
        kind = raw[0]
        if kind == "add_vertex":
            if len(raw) != 2 or not isinstance(raw[1], str) or not raw[1]:
                raise ServiceError(
                    400,
                    "invalid_mutation",
                    f"ops[{i}] must be ['add_vertex', label] with a non-empty string label",
                )
            ops.append(("add_vertex", raw[1]))
        else:
            if len(raw) != 3 or any(
                isinstance(e, bool) or not isinstance(e, int) or e < 0 for e in raw[1:]
            ):
                raise ServiceError(
                    400,
                    "invalid_mutation",
                    f"ops[{i}] must be ['{kind}', u, v] with non-negative vertex ids",
                )
            ops.append((kind, raw[1], raw[2]))
    return MutationRequest(
        graph=graph,
        ops=tuple(ops),
        compaction_threshold=_optional_int(payload, "compaction_threshold", minimum=1),
    )


# ----------------------------------------------------------------------
# Response encoding
# ----------------------------------------------------------------------
def result_to_json(
    result, graph: str, elapsed_ms: Optional[float] = None
) -> Dict[str, object]:
    """Encode one :class:`~repro.core.result.DSQResult` as a response body.

    ``deadline_exhausted`` is lifted to the top level: a tripped
    ``time_budget_ms`` is still HTTP 200 — the embeddings are valid, the
    result is merely truncated and forfeits Theorem-3 optimality (DESIGN
    §6.2) — so clients must be able to see the flag without digging into
    ``stats``.
    """
    body = result.to_dict()
    body["graph"] = graph
    body["deadline_exhausted"] = result.stats.deadline_exhausted
    if elapsed_ms is not None:
        body["elapsed_ms"] = elapsed_ms
    return body


def mutation_to_json(
    summary, graph: str, elapsed_ms: Optional[float] = None
) -> Dict[str, object]:
    """Encode a :class:`~repro.graph.labeled_graph.MutationSummary` response.

    ``version`` is the graph's post-batch ``[epoch, delta_seq]`` — the same
    pair stamped on memo entries and shared-memory publications, so a
    client can correlate a mutation with subsequent answers and metrics.
    """
    body: Dict[str, object] = {
        "graph": graph,
        "applied": summary.applied,
        "compacted": summary.compacted,
        "version": list(summary.version) if summary.version is not None else None,
    }
    if elapsed_ms is not None:
        body["elapsed_ms"] = elapsed_ms
    return body
