"""Stdlib (``urllib``) client for the repro query service.

Used by the test suite and ``benchmarks/bench_service_load.py``; it is also
the reference for what a real client must handle: JSON bodies both ways,
the ``{"error": {...}}`` failure shape, and the ``Retry-After`` header on
429 rejections.

Example::

    from repro.graph.query_graph import QueryGraph
    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8707")
    body = client.query("dblp", QueryGraph(["A", "B"], [(0, 1)]), k=10)
    print(body["coverage"], body["deadline_exhausted"])
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.exceptions import ReproError
from repro.graph.labeled_graph import LabeledGraph
from repro.service.schemas import query_graph_to_json

QueryLike = Union[LabeledGraph, Dict[str, object]]


class ServiceClientError(ReproError):
    """An HTTP-level failure, carrying the service's typed error body.

    ``status`` is the HTTP status (``None`` when the server was
    unreachable); ``code``/``message`` mirror the body's ``error`` object;
    ``retry_after_s`` is parsed from the ``Retry-After`` header on 429.
    """

    def __init__(
        self,
        status: Optional[int],
        code: str,
        message: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s


def _encode_query(query: QueryLike) -> Dict[str, object]:
    if isinstance(query, LabeledGraph):
        return query_graph_to_json(query)
    return dict(query)


class ServiceClient:
    """Minimal blocking client over :mod:`urllib.request`.

    ``client_id`` is sent as the ``X-Client-Id`` header on every request;
    servers running per-client quotas use it as the token-bucket key. A
    quota rejection surfaces as :class:`ServiceClientError` with status
    429 and ``code == "quota_exceeded"`` (this client should slow down),
    distinct from ``code == "overloaded"`` (the whole service is shedding
    load) — both carry ``retry_after_s``.
    """

    def __init__(
        self, base_url: str, timeout: float = 60.0, client_id: Optional[str] = None
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id

    # -- endpoints -----------------------------------------------------
    def query(
        self,
        graph: str,
        query: QueryLike,
        k: Optional[int] = None,
        alpha: Optional[float] = None,
        time_budget_ms: Optional[float] = None,
        objective: Optional[str] = None,
        use_compression: Optional[bool] = None,
    ) -> Dict[str, object]:
        """``POST /v1/query``; returns the response body (raises on non-200)."""
        payload: Dict[str, object] = {"graph": graph, "query": _encode_query(query)}
        if k is not None:
            payload["k"] = k
        if alpha is not None:
            payload["alpha"] = alpha
        if time_budget_ms is not None:
            payload["time_budget_ms"] = time_budget_ms
        if objective is not None:
            payload["objective"] = objective
        if use_compression is not None:
            payload["use_compression"] = use_compression
        return self._call("POST", "/v1/query", payload)

    def batch(
        self,
        graph: str,
        queries: Iterable[QueryLike],
        k: Optional[int] = None,
        alpha: Optional[float] = None,
        time_budget_ms: Optional[float] = None,
        strategy: Optional[str] = None,
        jobs: Optional[int] = None,
        objective: Optional[str] = None,
        use_compression: Optional[bool] = None,
    ) -> Dict[str, object]:
        """``POST /v1/batch``; returns the batch body with ``results`` in order."""
        payload: Dict[str, object] = {
            "graph": graph,
            "queries": [_encode_query(q) for q in queries],
        }
        if k is not None:
            payload["k"] = k
        if alpha is not None:
            payload["alpha"] = alpha
        if time_budget_ms is not None:
            payload["time_budget_ms"] = time_budget_ms
        if strategy is not None:
            payload["strategy"] = strategy
        if jobs is not None:
            payload["jobs"] = jobs
        if objective is not None:
            payload["objective"] = objective
        if use_compression is not None:
            payload["use_compression"] = use_compression
        return self._call("POST", "/v1/batch", payload)

    def mutate_edge(self, graph: str, op: str, u: int, v: int) -> Dict[str, object]:
        """``POST /v1/graphs/{graph}/edges``: one edge ``"add"``/``"remove"``.

        Returns ``{"applied", "compacted", "version", ...}``; a busy graph
        surfaces as :class:`ServiceClientError` with status 409 and
        ``retry_after_s`` set, a read-only deployment as status 501.
        """
        path = f"/v1/graphs/{urllib.parse.quote(graph, safe='')}/edges"
        return self._call("POST", path, {"op": op, "u": u, "v": v})

    def ingest(
        self,
        graph: str,
        ops: Iterable[Sequence[object]],
        compaction_threshold: Optional[int] = None,
    ) -> Dict[str, object]:
        """``POST /v1/graphs/{graph}/ingest``: a mutation batch as one write.

        ``ops`` entries are ``["add_vertex", label]``, ``["add_edge", u, v]``
        or ``["remove_edge", u, v]``, applied in order.
        """
        payload: Dict[str, object] = {"ops": [list(op) for op in ops]}
        if compaction_threshold is not None:
            payload["compaction_threshold"] = compaction_threshold
        path = f"/v1/graphs/{urllib.parse.quote(graph, safe='')}/ingest"
        return self._call("POST", path, payload)

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz``; returns the body even for 503 (draining)."""
        return self._call("GET", "/healthz", None, pass_through_statuses=(503,))

    def metrics(self) -> Dict[str, object]:
        """``GET /metrics``: the registry snapshot plus catalog facts."""
        return self._call("GET", "/metrics", None)

    # -- plumbing ------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]],
        pass_through_statuses: tuple = (),
    ) -> Dict[str, object]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = {}
            if exc.code in pass_through_statuses and body:
                return body
            error = body.get("error", {}) if isinstance(body, dict) else {}
            retry_after = exc.headers.get("Retry-After")
            raise ServiceClientError(
                exc.code,
                str(error.get("code", "http_error")),
                str(error.get("message", raw[:200])),
                retry_after_s=float(retry_after) if retry_after else None,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(None, "unreachable", str(exc.reason)) from None
