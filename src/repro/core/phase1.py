"""DSQL Phase 1 — the non-swapping, level-wise collection (Algorithm 3).

Starting from an empty solution ``T``, level ``i`` (for ``i = 0 .. q-1``)
admits embeddings overlapping ``V(T)`` at exactly ``i`` vertices; the phase
stops the moment ``|T| = k`` (early termination) or when all levels are
exhausted. Stopping at level ``i`` guarantees the Theorem 3 ratio
``(q - i)/q + i/(kq)``; exhausting all levels with ``|T| < k`` yields an
optimal solution.

Phase 1 is *objective-independent by design*: levels, the shared
``matched`` set, and the candidate snapshots all count **vertex** overlap
regardless of ``config.objective``, because they describe how embeddings
are *generated*, not how they are valued (Section 3's structure). The
objective seam (:mod:`repro.coverage.objectives`) only changes selection —
benefit/loss/coverage in Phase 2 and the dispatcher — so this module takes
no objective parameter. Consequences for non-vertex objectives (e.g. the
``exhausted`` certificate surviving only when vertex exhaustion implies
element exhaustion) are handled where the certificates are issued, in
:mod:`repro.core.dsql`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.config import DSQLConfig
from repro.core.search import LevelSearchEngine
from repro.core.state import SearchStats, SolutionState
from repro.exceptions import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.match import Mapping
from repro.queries.ordering import selectivity_order


@dataclass
class Phase1Output:
    """Result of DSQL-P1.

    Attributes
    ----------
    state:
        Solution state holding ``T`` and ``V(T)``; Phase 2 continues from it.
    level:
        The level at which the phase stopped (``q - 1`` when exhausted).
    exhausted:
        ``True`` when every level completed without reaching ``k`` — the
        Theorem 3 optimality case.
    qlist:
        The selectivity ranking, reused by Phase 2.
    """

    state: SolutionState
    level: int
    exhausted: bool
    qlist: List[int]


def tcand_snapshot(
    candidates: CandidateIndex, covered: Set[int], q: int
) -> Dict[int, Set[int]]:
    """``TcandS[u] = candS(u) ∩ V(T)`` for every query node (Alg. 3 line 9)."""
    return {u: candidates.candidate_set(u) & covered for u in range(q)}


def tcand_snapshot_scan(plan, covered: Set[int], q: int) -> Dict[int, Set[int]]:
    """Plan-mode ``TcandS``: the same sets, from the plan's pool views.

    Identical values to :func:`tcand_snapshot`, but intersecting against the
    plan's memoized pool frozensets — no per-query ``candS(u)`` set view is
    ever materialized, which keeps the lazy-set invariant of the plan-driven
    engine while staying ``O(min(|pool|, |cover|))`` per node.
    """
    return {u: plan.pool_set(u) & covered for u in range(q)}


def run_phase1(
    graph: LabeledGraph,
    query: QueryGraph,
    config: DSQLConfig,
    candidates: CandidateIndex,
    stats: SearchStats,
    deadline: Optional[float] = None,
    instrumentation=None,
    query_id: Optional[int] = None,
    plan=None,
) -> Phase1Output:
    """Execute DSQL-P1 and return the collected solution.

    The engine's ``matched`` set is aliased with the solution's so that
    accepted embeddings immediately consume their vertices (Q1Search
    difference (3)). ``deadline`` is the query-wide monotonic timestamp
    derived from ``config.time_budget_ms`` (``None`` disables).
    ``instrumentation`` brackets every level (``phase1.level`` spans, the
    ``phase1.level_expansions`` histogram, ``on_level_start``) and reports
    accepted embeddings through ``on_embedding_emitted``. ``plan`` is the
    compiled :class:`~repro.indexes.plans.QueryPlan` when plans are enabled:
    its precomputed selectivity ranking replaces the per-call
    ``selectivity_order`` and the engine runs the kernel fast paths.
    """
    qlist = list(plan.qlist) if plan is not None else selectivity_order(query, candidates)
    state = SolutionState()
    engine = LevelSearchEngine(
        graph,
        query,
        candidates,
        config,
        stats,
        state.matched,
        deadline=deadline,
        instrumentation=instrumentation,
        query_id=query_id,
        plan=plan,
    )
    q = query.size
    instr = instrumentation

    if candidates.any_empty():
        # No embedding can exist; the empty solution is trivially optimal.
        stats.phase1_levels = 0
        return Phase1Output(state=state, level=q - 1, exhausted=True, qlist=qlist)

    current_level = 0

    def on_embedding(mapping: Mapping) -> bool:
        state.add(mapping)
        stats.record_added(current_level)
        if instr is not None:
            instr.embedding_emitted("phase1", current_level, mapping, query_id)
        return len(state) < config.k

    def close_level(level: int, start_ms: float, before_exp: int, before_n: int) -> None:
        instr.level_end(
            "phase1",
            level,
            query_id,
            start_ms,
            expansions=stats.nodes_expanded - before_exp,
            added=len(state) - before_n,
        )

    try:
        for level in range(q):
            current_level = level
            stats.phase1_levels = level + 1
            if instr is not None:
                level_start_ms = instr.level_start("phase1", level, query_id)
                level_exp, level_n = stats.nodes_expanded, len(state)
            try:
                while True:
                    before = len(state)
                    if plan is not None:
                        tcand = tcand_snapshot_scan(plan, state.covered, q)
                    else:
                        tcand = tcand_snapshot(candidates, state.covered, q)
                    keep = engine.run_level(level, qlist, tcand, on_embedding)
                    if not keep:
                        return Phase1Output(
                            state=state, level=level, exhausted=False, qlist=qlist
                        )
                    # One sweep suffices unless strict maximality is requested;
                    # re-sweep only while a sweep keeps adding embeddings.
                    if not config.exhaustive_level or len(state) == before:
                        break
            finally:
                if instr is not None:
                    close_level(level, level_start_ms, level_exp, level_n)
    except BudgetExceeded:
        return Phase1Output(
            state=state, level=current_level, exhausted=False, qlist=qlist
        )
    return Phase1Output(state=state, level=q - 1, exhausted=True, qlist=qlist)
