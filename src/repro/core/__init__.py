"""The paper's contribution: the DSQL two-phase diversified query solver."""

from repro.core.config import VARIANTS, DSQLConfig, variant_config
from repro.core.dsql import DSQL, diversified_search
from repro.core.phase1 import Phase1Output, run_phase1, tcand_snapshot
from repro.core.phase2 import Phase2Output, run_phase2
from repro.core.result import DSQResult
from repro.core.search import LevelSearchEngine
from repro.core.state import SearchStats, SolutionState

__all__ = [
    "DSQL",
    "diversified_search",
    "DSQLConfig",
    "VARIANTS",
    "variant_config",
    "DSQResult",
    "SearchStats",
    "SolutionState",
    "LevelSearchEngine",
    "Phase1Output",
    "Phase2Output",
    "run_phase1",
    "run_phase2",
    "tcand_snapshot",
]
