"""The level-wise embedding search of DSQL (Algorithms 3 and 4 + Section 5).

One :class:`LevelSearchEngine` instance drives the embedding generation of
both DSQL phases. For a given *level* ``i`` it enumerates, for every
``i``-subset ``Qovp`` of query nodes, embeddings that

* match the ``Qovp`` nodes to vertices of ``TcandS`` (the solution cover as
  of the start of the level), and
* match every other node to a *fresh* vertex — one not yet consumed by any
  accepted embedding (the ``matched`` marking of Q1Search difference (3)).

The recursion has two regimes, mirroring Algorithm 4:

* **multi-embedding frames** (``Q1iSearch``) cover the ``qfList`` prefix up
  to and including the first non-overlap node; every candidate of that node
  may seed one accepted embedding;
* **single-embedding frames** (``QSearchD``) complete exactly one embedding
  per prefix and report failure with a *conflict set* used for
  conflict-directed node skipping (Section 5.3) and bad-vertex marking
  (Section 5.4).

All four Section-5 strategies are toggled by :class:`DSQLConfig`; the engine
never holds solution policy — acceptance is delegated to an
``on_embedding`` callback so Phase 1 (collect) and Phase 2 (swap) share the
generator.
"""

from __future__ import annotations

import random
import time
from itertools import combinations
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.config import DSQLConfig
from repro.core.state import SearchStats
from repro.exceptions import BudgetExceeded, DeadlineExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.joinable import UNMATCHED
from repro.isomorphism.match import Mapping
from repro.queries.qflist import NO_FATHER, QFList, resort

OnEmbedding = Callable[[Mapping], bool]
"""Acceptance callback: receives a full embedding, returns False to stop."""

DEADLINE_CHECK_STRIDE = 1024
"""Expansions between wall-clock deadline checks.

``time.monotonic()`` costs roughly as much as one expansion step, so probing
it on every ``_charge`` would measurably slow the hot path; probing every
:data:`DEADLINE_CHECK_STRIDE` expansions keeps the overhead under 0.1% while
bounding deadline overshoot to one stride's worth of work.

This module global is the **single** stride constant: both this engine and
:class:`~repro.isomorphism.optimized.OptimizedQSearchEngine` read it live at
check time (so tests can monkeypatch it), and instrumentation surfaces it as
the ``deadline.check_stride`` gauge and the ``stride`` field of
``on_deadline_tick`` / deadline trace events.
"""


class LevelSearchEngine:
    """Level-wise embedding generator shared by DSQL-P1 and DSQL-P2.

    Parameters
    ----------
    graph, query:
        The data and query graphs.
    candidates:
        Pre-built candidate index (``candS``).
    config:
        Strategy toggles and budgets.
    stats:
        Mutable counters, shared with the calling phase.
    matched:
        The global consumed-vertex set. The engine both reads (fresh-vertex
        exclusion) and writes (marks accepted embeddings) this set; Phase 1
        aliases it with ``V(T)``, Phase 2 lets it grow past the swapped
        solution.
    deadline:
        Absolute ``time.monotonic()`` timestamp after which the search must
        stop (``None`` disables). Shared by both phases of one query so the
        whole query honors ``config.time_budget_ms``; checked every
        :data:`DEADLINE_CHECK_STRIDE` expansions.
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation`. The engine
        only touches it on the (rare) deadline-stride branch of
        :meth:`_charge`; level/embedding events are emitted by the calling
        phases, so the disabled path adds no per-expansion work.
    query_id:
        Session-assigned id stamped onto this engine's trace events/hooks.
    plan:
        Optional compiled :class:`~repro.indexes.plans.QueryPlan`. When
        given, candidate generation and the joinability test run through the
        :mod:`repro.kernels` fast paths (sorted-slice intersection, bitset
        AND over matched-neighbor adjacency masks). The plan changes *how*
        the same candidate pools are computed, never which candidates are
        iterated or in what order, so results — including budget/deadline
        trip points — are bit-identical to the plan-free engine.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        query: QueryGraph,
        candidates: CandidateIndex,
        config: DSQLConfig,
        stats: SearchStats,
        matched: Set[int],
        deadline: Optional[float] = None,
        instrumentation=None,
        query_id: Optional[int] = None,
        plan=None,
    ) -> None:
        self.graph = graph
        self.query = query
        self.candidates = candidates
        self.config = config
        self.stats = stats
        self.matched = matched
        self.deadline = deadline
        self.instrumentation = instrumentation
        self.query_id = query_id
        self._plan = plan
        self._cache = candidates.cache
        # Twin-class partition for the compressed join test: only wired up
        # when compression is on AND a plan/cache exists (the partition is
        # per-graph state owned by the index cache). The compressed branch
        # changes the join *mechanism*, never which candidates are iterated
        # or charged, so the bit-identity contract below is preserved.
        self._compressed = (
            self._cache.compressed()
            if (config.use_compression and plan is not None and self._cache is not None)
            else None
        )
        self.rng = random.Random(config.seed)
        q = query.size
        self._assignment: List[int] = [UNMATCHED] * q
        self._used: Set[int] = set()
        # Bad marks carry the conflict set that justified them (see
        # ``_single_frame``): a skipped vertex is a failure whose reasons
        # must still propagate upward, otherwise ancestors compute
        # understated conflict sets and skip revivable subtrees.
        self._bad: List[Dict[int, Set[int]]] = [{} for _ in range(q + 1)]
        # Per-Qovp state, installed by run_level.
        self._qf: Optional[QFList] = None
        self._qovp: FrozenSet[int] = frozenset()
        self._tcand: Dict[int, Set[int]] = {}
        self._on_embedding: Optional[OnEmbedding] = None

    # ------------------------------------------------------------------
    # Level driver (Algorithm 3 lines 7-14 / Algorithm 5 lines 3-9)
    # ------------------------------------------------------------------
    def run_level(
        self,
        level: int,
        qlist: Sequence[int],
        tcand: Dict[int, Set[int]],
        on_embedding: OnEmbedding,
    ) -> bool:
        """Generate all level-``level`` embeddings, feeding ``on_embedding``.

        ``tcand`` maps each query node to ``candS(u) ∩ V(T)`` for the
        relevant solution snapshot (see
        :func:`~repro.core.phase1.tcand_snapshot` and its plan-mode twin
        :func:`~repro.core.phase1.tcand_snapshot_scan`). Returns ``False``
        when the callback asked
        to stop (k reached / early termination), ``True`` when the level was
        exhausted. Raises :class:`BudgetExceeded` if the node budget trips.
        """
        self._tcand = tcand
        self._on_embedding = on_embedding
        q = self.query.size
        for qovp_tuple in combinations(qlist, level):
            if any(not tcand[u] for u in qovp_tuple):
                continue  # some overlap node has no cover-restricted candidate
            self._qovp = frozenset(qovp_tuple)
            self._qf = resort(self.query, list(qlist), set(qovp_tuple))
            self._assignment = [UNMATCHED] * q
            self._used = set()
            self._bad = [{} for _ in range(q + 1)]
            stop, _carry = self._multi_frame(0)
            if stop:
                return False
        return True

    # ------------------------------------------------------------------
    # Candidate generation (setCandidates, Section 5.1)
    # ------------------------------------------------------------------
    def _rcand(self, u: int, father: int, is_overlap: bool) -> List[int]:
        """``Rcand`` for node ``u``: localized, then overlap-restricted.

        Plan-free path: membership filters against the candidate *set* view
        the index materializes per query. Plan path: the same intersection
        against the plan's memoized pool sets — built once per cached plan
        and shared across sessions, so repeated queries pay no per-query set
        construction at all. Same vertices, same ascending order.
        """
        localized = (
            self.config.localized_search
            and father != NO_FATHER
            and self._assignment[father] != UNMATCHED
        )
        if self._plan is not None:
            stats = self.stats
            if localized:
                stats.kernel_merge += 1
                pool = self._plan.pool_set(u)
                base = [
                    w
                    for w in self.graph.neighbors(self._assignment[father])
                    if w in pool
                ]
            else:
                stats.kernel_scan += 1
                base = list(self.candidates.candidates(u))
            if is_overlap:
                allowed = self._tcand[u]
                return [v for v in base if v in allowed]
            return base
        if localized:
            vf = self._assignment[father]
            is_candidate = self.candidates.is_candidate
            # Neighbor rows are sorted tuples, so the filtered list stays
            # sorted without an explicit sort.
            base = [w for w in self.graph.neighbors(vf) if is_candidate(u, w)]
        else:
            base = list(self.candidates.candidates(u))
        if is_overlap:
            allowed = self._tcand[u]
            return [v for v in base if v in allowed]
        return base

    def _charge(self) -> None:
        stats = self.stats
        stats.nodes_expanded += 1
        budget = self.config.node_budget
        if budget is not None and stats.nodes_expanded > budget:
            stats.budget_exhausted = True
            raise BudgetExceeded(f"node budget {budget} exhausted")
        if (
            self.deadline is not None
            and stats.nodes_expanded % DEADLINE_CHECK_STRIDE == 0
        ):
            now = time.monotonic()
            if self.instrumentation is not None:
                self.instrumentation.deadline_tick(
                    stats.nodes_expanded,
                    (self.deadline - now) * 1000.0,
                    DEADLINE_CHECK_STRIDE,
                    self.query_id,
                )
            if now >= self.deadline:
                stats.deadline_exhausted = True
                raise DeadlineExceeded(
                    f"time budget {self.config.time_budget_ms} ms exhausted"
                )

    def _joinable(self, u: int, v: int) -> bool:
        """Injectivity + edge-consistency of matching ``u -> v``."""
        if v in self._used:
            return False
        assignment = self._assignment
        has_edge = self.graph.has_edge
        for u2 in self.query.neighbors(u):
            v2 = assignment[u2]
            if v2 != UNMATCHED and not has_edge(v, v2):
                return False
        return True

    def _kernel_join_test(self, u: int) -> Optional[Callable[[int], object]]:
        """A per-frame joinability predicate ``v -> bool-ish`` or ``None``.

        Within one candidate loop at node ``u`` the set of already-assigned
        query neighbors is invariant (deeper assignments unwind before the
        next candidate is tried), so the bitset AND of their adjacency masks
        can be folded **once per frame** instead of per candidate. Dispatch:

        * no plan, or exactly one assigned neighbor — ``None``; the caller
          keeps the scalar :meth:`_joinable` loop (one ``has_edge`` probe
          beats a big-int bit test);
        * zero assigned neighbors — injectivity is the whole test;
        * two or more — one mask AND per frame, then a single
          ``(mask >> v) & 1`` probe per candidate.
        """
        if self._plan is None:
            return None
        assignment = self._assignment
        matched = [
            assignment[u2]
            for u2 in self.query.neighbors(u)
            if assignment[u2] != UNMATCHED
        ]
        stats = self.stats
        comp = self._compressed
        if comp is not None and len(matched) >= 2:
            # Compressed join: fold the matched vertices' class join masks
            # (num_classes bits instead of num_vertices) and test candidates
            # by class id. Twin symmetry makes this exactly the vertex-mask
            # predicate: for v outside `used` (so v differs from every
            # matched vertex), edge(v, v2) holds iff their classes are
            # adjacent — or, within one class, iff the class is a clique,
            # which is precisely the self-bit of the class join mask.
            stats.kernel_cbitset += 1
            class_of = comp.class_of
            join_mask = comp.class_join_mask
            mask = -1
            for v2 in matched:
                mask &= join_mask(class_of[v2])
            used = self._used
            return lambda v: v not in used and (mask >> class_of[v]) & 1
        if len(matched) >= 2:
            stats.kernel_bitset += 1
            adj_mask = self._cache.adjacency_mask
            mask = -1
            for v2 in matched:
                mask &= adj_mask(v2)
            used = self._used
            return lambda v: v not in used and (mask >> v) & 1
        stats.kernel_scalar += 1
        if matched:
            return None
        used = self._used
        return lambda v: v not in used

    # ------------------------------------------------------------------
    # Conflict tables (Section 5.3)
    # ------------------------------------------------------------------
    def _conflict_set(self, u: int) -> Set[int]:
        """``CT(u, *) ∪ CT(u, beta)`` for a failure at node ``u``.

        Static part: query neighbors of ``u``. Dynamic part: assigned nodes
        whose matched vertex would pass ``u``'s label/degree/signature
        filters (it may be exactly the vertex ``u`` needed).
        """
        conflicts: Set[int] = set(self.query.neighbors(u))
        full_check = self.candidates.full_check
        for u2, v2 in enumerate(self._assignment):
            if u2 != u and v2 != UNMATCHED and u2 not in conflicts:
                if full_check(u, v2):
                    conflicts.add(u2)
        return conflicts

    def _handle_child_failure(
        self, depth: int, u: int, v: int, conflict: Set[int]
    ) -> bool:
        """Shared failure bookkeeping; returns ``True`` to backjump past ``u``.

        Implements the Section 5.3 skip test and the Section 5.4 bad-vertex
        marking (with the Appendix B.3 relaxation when configured). Call with
        ``(u, v)`` still assigned; the caller unassigns afterwards.
        """
        cfg = self.config
        if cfg.conflict_skipping and u not in conflict:
            self.stats.conflict_skips += 1
            return True
        if cfg.bad_vertex_skipping:
            prev_ok = cfg.relaxed_bad_vertices
            if not prev_ok and depth > 0:
                prev_node = self._qf.entries[depth - 1].node
                prev_ok = prev_node not in conflict
            if prev_ok:
                self._bad[depth][v] = set(conflict)
                self.stats.bad_vertices_marked += 1
        return False

    # ------------------------------------------------------------------
    # Multi-embedding frames (Q1iSearch)
    # ------------------------------------------------------------------
    def _multi_frame(self, depth: int) -> Tuple[bool, Optional[Set[int]]]:
        """Enumerate over the overlap prefix; returns ``(stop, carry)``.

        ``stop`` propagates a global stop requested by the acceptance
        callback. ``carry`` propagates a conflict set upward when
        conflict-directed skipping abandons this frame.
        """
        qf = self._qf
        entry = qf.entries[depth]
        u, father = entry.node, entry.father
        self._bad[depth + 1].clear()

        if u in self._qovp:
            return self._multi_overlap(depth, u, father)
        return self._multi_anchor(depth, u, father)

    def _multi_overlap(
        self, depth: int, u: int, father: int
    ) -> Tuple[bool, Optional[Set[int]]]:
        """Overlap node inside the multi regime: recurse per candidate."""
        assignment, used = self._assignment, self._used
        bad = self._bad[depth]
        rcand = self._rcand(u, father, is_overlap=True)
        kj = self._kernel_join_test(u)
        for v in rcand:
            self._charge()
            if v in bad:
                self.stats.bad_vertex_skips += 1
                continue
            if kj is not None:
                if not kj(v):
                    continue
            elif not self._joinable(u, v):
                continue
            assignment[u] = v
            used.add(v)
            stop, carry = self._multi_frame(depth + 1)
            if stop:
                return True, None
            if carry is not None:
                skip = self._handle_child_failure(depth, u, v, carry)
                assignment[u] = UNMATCHED
                used.discard(v)
                if skip:
                    return False, carry
                continue
            assignment[u] = UNMATCHED
            used.discard(v)
        return False, None

    def _multi_anchor(
        self, depth: int, u: int, father: int
    ) -> Tuple[bool, Optional[Set[int]]]:
        """The first non-overlap node: each candidate may seed one embedding."""
        assignment, used = self._assignment, self._used
        matched = self.matched
        bad = self._bad[depth]
        rcand = self._rcand(u, father, is_overlap=False)
        kj = self._kernel_join_test(u)
        for v in rcand:
            self._charge()
            if v in matched:
                continue
            if v in bad:
                self.stats.bad_vertex_skips += 1
                continue
            if kj is not None:
                if not kj(v):
                    continue
            elif not self._joinable(u, v):
                continue
            assignment[u] = v
            used.add(v)
            conflict = self._single_frame(depth + 1)
            if conflict is None:
                embedding = tuple(assignment)
                self._clear_suffix(depth + 1)
                matched.update(embedding)
                assignment[u] = UNMATCHED
                used.discard(v)
                keep = self._on_embedding(embedding)
                if not keep:
                    return True, None
                continue
            skip = self._handle_child_failure(depth, u, v, conflict)
            assignment[u] = UNMATCHED
            used.discard(v)
            if skip:
                return False, conflict
        return False, None

    def _clear_suffix(self, start_depth: int) -> None:
        """Unassign every node from ``start_depth`` onward (post-acceptance)."""
        assignment, used = self._assignment, self._used
        for entry in self._qf.entries[start_depth:]:
            v = assignment[entry.node]
            if v != UNMATCHED:
                used.discard(v)
                assignment[entry.node] = UNMATCHED

    # ------------------------------------------------------------------
    # Single-embedding frames (QSearchD, Section 5.2)
    # ------------------------------------------------------------------
    def _single_frame(self, depth: int) -> Optional[Set[int]]:
        """Complete one embedding; ``None`` on success, conflict set on failure.

        On success the suffix assignments are left in place for the caller to
        read; on failure everything at or below ``depth`` is unassigned.
        """
        if depth == self.query.size:
            return None
        qf = self._qf
        entry = qf.entries[depth]
        u, father = entry.node, entry.father
        self._bad[depth + 1].clear()
        is_overlap = u in self._qovp

        rcand = self._rcand(u, father, is_overlap=is_overlap)
        cap: Optional[int] = None
        if (
            self.config.single_embedding_mode
            and not is_overlap
            and qf.neighbor_rm[u] == 0
        ):
            cap = qf.label_rm[u] + 1
            self.rng.shuffle(rcand)

        assignment, used = self._assignment, self._used
        matched = self.matched
        bad = self._bad[depth]
        kj = self._kernel_join_test(u)
        tried_valid = 0
        inherited: Set[int] = set()
        for v in rcand:
            self._charge()
            if not is_overlap and v in matched:
                continue
            mark = bad.get(v)
            if mark is not None:
                self.stats.bad_vertex_skips += 1
                inherited |= mark
                continue
            if kj is not None:
                if not kj(v):
                    continue
            elif not self._joinable(u, v):
                continue
            tried_valid += 1
            assignment[u] = v
            used.add(v)
            conflict = self._single_frame(depth + 1)
            if conflict is None:
                return None
            skip = self._handle_child_failure(depth, u, v, conflict)
            assignment[u] = UNMATCHED
            used.discard(v)
            if skip:
                return conflict
            # Conflict-directed backjumping soundness: a node that exhausts
            # its candidates must carry its children's conflicts upward too,
            # otherwise an ancestor responsible for a deeper failure could be
            # skipped and its alternatives never explored.
            inherited |= conflict
            if cap is not None and tried_valid >= cap:
                self.stats.candidate_cap_hits += 1
                break
        failure = self._conflict_set(u) | inherited
        failure.discard(u)
        return failure
