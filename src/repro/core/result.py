"""Result type of a diversified subgraph query."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Set, Tuple

from repro.core.state import SearchStats
from repro.isomorphism.match import Mapping


@dataclass(frozen=True)
class DSQResult:
    """Outcome of one DSQL run.

    Instances are immutable: the dataclass is frozen and ``embeddings`` is
    normalized to a tuple of tuples at construction. This is what makes the
    ``DSQL.query_many`` memo (and the parallel :class:`~repro.parallel.
    executor.BatchExecutor` sharing results across workers) safe — a cache
    hit can hand the stored result to any number of callers without a
    mutation by one of them corrupting every later hit.

    Attributes
    ----------
    embeddings:
        The selected embeddings, each a tuple indexed by query node.
    k, q:
        The query parameters (capacity and query-node count).
    coverage:
        ``|C(A)|`` — number of distinct data vertices covered.
    level:
        The DSQL level at which the search concluded.
    optimal:
        Whether the result is *provably* optimal (see ``optimal_reason``).
    optimal_reason:
        ``"disjoint"`` — ``k`` pairwise-disjoint embeddings (ratio 1);
        ``"exhausted"`` — all levels completed with fewer than ``k``
        embeddings (Theorem 3's ``|A| < k`` case); ``""`` otherwise.
    stats:
        Search counters for both phases. For a ``from_cache`` result these
        are a *copy* of the original search's counters — the search they
        describe ran when the entry was populated, not on this call.
    from_cache:
        ``True`` when this result was served from the ``query_many`` memo
        without running a search; timing/counter consumers must not
        attribute ``stats`` to the current call when set.
    objective:
        The diversity objective this result was computed under (see
        :mod:`repro.coverage.objectives`). ``coverage`` is a weighted
        element total under non-default objectives.
    coverage_bound:
        The objective's ``MAX`` upper bound on any solution's coverage.
        ``None`` (always the case for ``objective="vertex"``) means the
        paper's ``k * q`` — kept implicit so the default result is, field
        for field, the pre-seam result.
    """

    embeddings: Tuple[Mapping, ...]
    k: int
    q: int
    coverage: int
    level: int
    optimal: bool = False
    optimal_reason: str = ""
    stats: SearchStats = field(default_factory=SearchStats)
    from_cache: bool = False
    objective: str = "vertex"
    coverage_bound: object = None

    def __post_init__(self) -> None:
        # Accept any iterable of mappings but store an immutable snapshot.
        embeddings: Iterable[Mapping] = self.embeddings
        object.__setattr__(
            self, "embeddings", tuple(tuple(e) for e in embeddings)
        )

    def __len__(self) -> int:
        return len(self.embeddings)

    def cover_set(self) -> Set[int]:
        """``C(A)``: the union of the selected embeddings' vertices."""
        covered: Set[int] = set()
        for emb in self.embeddings:
            covered.update(emb)
        return covered

    def vertex_sets(self) -> List[FrozenSet[int]]:
        """The embeddings as vertex sets (the coverage view)."""
        return [frozenset(emb) for emb in self.embeddings]

    def max_value(self) -> int:
        """The ``MAX`` reference value of Section 7.3.

        ``|C(A)|`` when the solution is provably optimal, else the
        objective's upper bound on any solution's coverage (``k*q`` for the
        default vertex objective).
        """
        if self.optimal:
            return self.coverage
        return self.coverage_bound if self.coverage_bound is not None else self.k * self.q

    def approx_ratio_lower_bound(self) -> float:
        """``|C(A)| / MAX`` — a lower bound on the true approximation ratio.

        Equals 1.0 for provably optimal solutions; matches the paper's
        reported "approximation ratio" measurements otherwise.
        """
        max_value = self.max_value()
        return self.coverage / max_value if max_value else 1.0

    def is_disjoint(self) -> bool:
        """Whether the selected embeddings are pairwise vertex-disjoint.

        Computed from the vertex sets directly (not from ``coverage``, which
        is a weighted element total under non-default objectives).
        """
        return sum(len(set(e)) for e in self.embeddings) == len(self.cover_set())

    def summary(self) -> str:
        """One-line human-readable summary."""
        flag = f" optimal({self.optimal_reason})" if self.optimal else ""
        cached = " [cached]" if self.from_cache else ""
        return (
            f"{len(self.embeddings)}/{self.k} embeddings, coverage {self.coverage}"
            f" (ratio >= {self.approx_ratio_lower_bound():.3f}), level {self.level}"
            f"{flag}{cached}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation (embeddings, metrics, key stats)."""
        return {
            "embeddings": [list(e) for e in self.embeddings],
            "k": self.k,
            "q": self.q,
            "coverage": self.coverage,
            "objective": self.objective,
            "level": self.level,
            "optimal": self.optimal,
            "optimal_reason": self.optimal_reason,
            "ratio_lower_bound": self.approx_ratio_lower_bound(),
            "from_cache": self.from_cache,
            "stats": {
                "nodes_expanded": self.stats.nodes_expanded,
                "embeddings_found": self.stats.embeddings_found,
                "phase1_levels": self.stats.phase1_levels,
                "phase2_ran": self.stats.phase2_ran,
                "phase2_swaps": self.stats.phase2_swaps,
                "phase2_early_termination": self.stats.phase2_early_termination,
                "budget_exhausted": self.stats.budget_exhausted,
                "deadline_exhausted": self.stats.deadline_exhausted,
            },
        }
