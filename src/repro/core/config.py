"""DSQL configuration and the named variants of the paper's ablation study.

The four Section-5 optimization strategies are independently toggleable so
the Appendix B.4 ablation (Figure 9) can be reproduced:

===========  =====================================================
``DSQL0``    localized subgraph search only (Section 5.1)
``DSQL1``    DSQL0 + single-embedding candidate capping (Section 5.2)
``DSQL2``    DSQL0 + conflict-table node skipping (Section 5.3)
``DSQL3``    DSQL2 + "bad"-vertex skipping (Section 5.4)
``DSQL``     all strategies (the paper's default)
``DSQLh``    all strategies with the relaxed bad-vertex rule (App. B.3)
===========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.coverage.objectives import OBJECTIVE_NAMES
from repro.exceptions import ConfigError


@dataclass(frozen=True)
class DSQLConfig:
    """All knobs of the DSQL solver.

    Parameters
    ----------
    k:
        Maximum number of embeddings to return (the "top-k").
    localized_search:
        Section 5.1 — restrict each node's candidates to the neighborhood of
        its ``qfList`` father's matched vertex. Off = the plain Algorithm 3
        search over full candidate buckets (much slower; kept for testing).
    single_embedding_mode:
        Section 5.2 — in single-embedding search, nodes with
        ``neighborRm == 0`` try at most ``labelRm + 1`` joinable candidates.
    conflict_skipping:
        Section 5.3 — conflict-directed skipping of query nodes while
        backtracking.
    bad_vertex_skipping:
        Section 5.4 — mark-and-skip data vertices that provably cannot lead
        to an embedding under the current prefix.
    relaxed_bad_vertices:
        Appendix B.3 (``DSQLh``) — mark bad vertices without the
        no-conflict precondition. More skipping, possibly lower coverage.
    run_phase2:
        Run DSQL-P2 (swapping) when Phase 1's result is not provably good
        enough (Section 6.2's dispatch rules).
    alpha:
        The SWAPα parameter for Phase 2 (Inequality 2); the paper's analysis
        uses ``alpha = 1`` for the first (and usually only) pass.
    phase2_ratio_target:
        Skip/stop Phase 2 once ``coverage / (k*q)`` reaches this value
        (paper: 0.5, the asymptotic SWAPα bound).
    exhaustive_level:
        Re-run each Phase-1 level until it adds nothing, restoring strict
        Lemma-1 maximality (see DESIGN.md). Slower; off by default as in the
        paper.
    node_budget:
        Upper bound on candidate expansions across the whole query; ``None``
        disables. A tripped budget yields a valid truncated result with
        ``stats.budget_exhausted`` set.
    time_budget_ms:
        Wall-clock deadline for the whole query (both phases), in
        milliseconds; ``None`` disables. The paper caps its Table 2
        experiments by wall-clock time ("> 5 hours" rows); this is the
        per-query equivalent. Enforced on the expansion hot path by a
        stride-checked monotonic clock (one ``time.monotonic()`` call every
        :data:`repro.core.search.DEADLINE_CHECK_STRIDE` expansions), so the
        effective deadline overshoots by at most one stride. A tripped
        deadline yields a valid truncated result with
        ``stats.deadline_exhausted`` set, exactly like ``node_budget``.
    validate_results:
        Re-validate every returned embedding against the Section 2
        definition (cheap; useful in production pipelines).
    query_cache_size:
        LRU cap on the :meth:`repro.core.dsql.DSQL.query_many` result memo
        (keyed by :meth:`QueryGraph.canonical_key`). ``None`` means
        unbounded, ``0`` disables memoization.
    use_plans:
        Compile a :class:`~repro.indexes.plans.QueryPlan` per query and run
        the plan-driven engines (bitset/merge join kernels, precomputed
        search order). Results are bit-identical to the plan-free path; the
        toggle exists as an escape hatch and for the A/A benchmarks.
    plan_cache:
        Memoize compiled plans in the graph's shared
        :class:`~repro.indexes.plans.PlanCache`. Off = recompile per query
        (the ``--no-plan-cache`` CLI escape hatch); only meaningful when
        ``use_plans`` is on.
    use_compression:
        Compile plans against the graph's twin-class partition (BoostIso
        [24]-style structural equivalence — see :mod:`repro.isomorphism.
        compression`): class-level candidate pools, the ``cbitset`` join
        kernel over class ids, and the compressed per-frame join test in
        the level engine. Results are bit-identical with the toggle on or
        off (the compression analogue of the plans-on/off contract, pinned
        by ``tests/property/test_compression_equivalence.py``); the win is
        on structurally redundant graphs and the cost is bounded on
        redundancy-free ones by the per-depth
        :data:`~repro.kernels.CBITSET_MAX_RATIO` gate. Requires
        ``use_plans``. Off by default.
    seed:
        Seed for the random candidate retention of Section 5.2. Fixed by
        default so runs are reproducible; set ``None`` for entropy.
    objective:
        The diversity objective (see :mod:`repro.coverage.objectives`):
        ``"vertex"`` (the paper, default — bit-identical to the pre-seam
        pipeline), ``"edge"`` (TED-style covered data edges), or
        ``"weighted-vertex"`` (per-vertex weights). Part of the frozen
        config's identity, so the per-config session LRU of the service
        catalog and the ``query_many`` memo (which is per-session, hence
        per-config) never mix results across objectives. The
        :class:`~repro.indexes.plans.PlanCache` key deliberately excludes
        the objective: plans encode *generation* mechanics (search order,
        join kernels), which are objective-independent.
    vertex_weights:
        Optional ``(vertex, weight)`` pairs for ``objective=
        "weighted-vertex"``; unlisted vertices weigh 1. ``None`` (default)
        derives weights from the dataset as ``1 + degree(v)``. Normalized
        to a sorted tuple of pairs so the config stays hashable and two
        equal weightings compare equal.
    auto_time_budget:
        Derive a per-query deadline from the plan's cost estimate when
        ``time_budget_ms`` is unset (see :mod:`repro.cost`): runaway
        queries self-truncate through the existing ``DeadlineExceeded``
        machinery while normal queries never notice (the derived budget
        is the estimate's band-upper times a headroom factor, floored at
        :data:`repro.cost.DEFAULT_AUTO_BUDGET_FLOOR_MS`). An explicit
        ``time_budget_ms`` always wins. Requires ``use_plans``.
    work_unit_rate:
        Assumed engine throughput in work units (candidate expansions)
        per millisecond, used to convert cost estimates into auto time
        budgets and admission drain times. Measure with
        ``repro-dsql estimate --execute`` and tune per deployment.
    """

    k: int
    localized_search: bool = True
    single_embedding_mode: bool = True
    conflict_skipping: bool = True
    bad_vertex_skipping: bool = True
    relaxed_bad_vertices: bool = False
    run_phase2: bool = True
    alpha: float = 1.0
    phase2_ratio_target: float = 0.5
    exhaustive_level: bool = False
    node_budget: Optional[int] = 5_000_000
    time_budget_ms: Optional[float] = None
    validate_results: bool = False
    query_cache_size: Optional[int] = 128
    use_plans: bool = True
    plan_cache: bool = True
    use_compression: bool = False
    seed: Optional[int] = 0
    objective: str = "vertex"
    vertex_weights: Optional[Tuple[Tuple[int, float], ...]] = None
    auto_time_budget: bool = False
    work_unit_rate: float = 200.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.objective not in OBJECTIVE_NAMES:
            raise ConfigError(
                f"unknown objective {self.objective!r}; choose from "
                f"{sorted(OBJECTIVE_NAMES)}"
            )
        if self.vertex_weights is not None:
            if self.objective != "weighted-vertex":
                raise ConfigError(
                    "vertex_weights is only meaningful with "
                    f"objective='weighted-vertex', got {self.objective!r}"
                )
            items = (
                self.vertex_weights.items()
                if isinstance(self.vertex_weights, dict)
                else self.vertex_weights
            )
            normalized = []
            for pair in items:
                try:
                    v, w = pair
                except (TypeError, ValueError):
                    raise ConfigError(
                        f"vertex_weights entries must be (vertex, weight) pairs, got {pair!r}"
                    ) from None
                if isinstance(v, bool) or not isinstance(v, int) or v < 0:
                    raise ConfigError(
                        f"vertex_weights vertex ids must be non-negative ints, got {v!r}"
                    )
                if isinstance(w, bool) or not isinstance(w, (int, float)) or w <= 0:
                    raise ConfigError(
                        f"vertex_weights weights must be positive numbers, got {w!r}"
                    )
                normalized.append((v, w))
            normalized.sort()
            for (v1, _), (v2, _) in zip(normalized, normalized[1:]):
                if v1 == v2:
                    raise ConfigError(f"vertex_weights lists vertex {v1} twice")
            object.__setattr__(self, "vertex_weights", tuple(normalized))
        if self.alpha < 0:
            raise ConfigError(f"alpha must be >= 0, got {self.alpha}")
        if not 0.0 < self.phase2_ratio_target <= 1.0:
            raise ConfigError(
                f"phase2_ratio_target must be in (0, 1], got {self.phase2_ratio_target}"
            )
        if self.node_budget is not None and self.node_budget < 1:
            raise ConfigError(f"node_budget must be positive, got {self.node_budget}")
        if self.time_budget_ms is not None and self.time_budget_ms <= 0:
            raise ConfigError(
                f"time_budget_ms must be positive, got {self.time_budget_ms}"
            )
        if self.query_cache_size is not None and self.query_cache_size < 0:
            raise ConfigError(
                f"query_cache_size must be >= 0 or None, got {self.query_cache_size}"
            )
        if self.relaxed_bad_vertices and not self.bad_vertex_skipping:
            raise ConfigError(
                "relaxed_bad_vertices (DSQLh) requires bad_vertex_skipping"
            )
        if not isinstance(self.work_unit_rate, (int, float)) or isinstance(
            self.work_unit_rate, bool
        ):
            raise ConfigError(
                f"work_unit_rate must be a number, got {self.work_unit_rate!r}"
            )
        if self.work_unit_rate <= 0:
            raise ConfigError(
                f"work_unit_rate must be positive, got {self.work_unit_rate}"
            )
        if self.auto_time_budget and not self.use_plans:
            raise ConfigError(
                "auto_time_budget derives deadlines from compiled plans; "
                "it requires use_plans"
            )
        if self.use_compression and not self.use_plans:
            raise ConfigError(
                "use_compression rides on compiled plans (class pools, "
                "cbitset kernel); it requires use_plans"
            )

    # ------------------------------------------------------------------
    # Named variants (Appendix B.4)
    # ------------------------------------------------------------------
    @classmethod
    def dsql0(cls, k: int, **overrides) -> "DSQLConfig":
        """Localized search only."""
        return cls(
            k=k,
            single_embedding_mode=False,
            conflict_skipping=False,
            bad_vertex_skipping=False,
            **overrides,
        )

    @classmethod
    def dsql1(cls, k: int, **overrides) -> "DSQLConfig":
        """DSQL0 + single-embedding candidate capping."""
        return cls(
            k=k,
            single_embedding_mode=True,
            conflict_skipping=False,
            bad_vertex_skipping=False,
            **overrides,
        )

    @classmethod
    def dsql2(cls, k: int, **overrides) -> "DSQLConfig":
        """DSQL0 + conflict tables."""
        return cls(
            k=k,
            single_embedding_mode=False,
            conflict_skipping=True,
            bad_vertex_skipping=False,
            **overrides,
        )

    @classmethod
    def dsql3(cls, k: int, **overrides) -> "DSQLConfig":
        """DSQL2 + bad-vertex skipping."""
        return cls(
            k=k,
            single_embedding_mode=False,
            conflict_skipping=True,
            bad_vertex_skipping=True,
            **overrides,
        )

    @classmethod
    def full(cls, k: int, **overrides) -> "DSQLConfig":
        """The paper's default DSQL: all strategies on."""
        return cls(k=k, **overrides)

    @classmethod
    def dsqlh(cls, k: int, **overrides) -> "DSQLConfig":
        """DSQLh: all strategies plus the relaxed bad-vertex rule."""
        return cls(k=k, relaxed_bad_vertices=True, **overrides)

    def with_k(self, k: int) -> "DSQLConfig":
        """This configuration with a different ``k``."""
        return replace(self, k=k)


VARIANTS: Dict[str, staticmethod] = {
    "DSQL0": DSQLConfig.dsql0,
    "DSQL1": DSQLConfig.dsql1,
    "DSQL2": DSQLConfig.dsql2,
    "DSQL3": DSQLConfig.dsql3,
    "DSQL": DSQLConfig.full,
    "DSQLh": DSQLConfig.dsqlh,
}
"""Variant name -> config factory, as benchmarked in Figure 9."""


def variant_config(name: str, k: int, **overrides) -> DSQLConfig:
    """Build the named ablation variant (raises on unknown names)."""
    try:
        factory = VARIANTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown DSQL variant {name!r}; choose from {sorted(VARIANTS)}"
        ) from None
    return factory(k, **overrides)
