"""Public entry points for diversified top-k subgraph querying.

Typical use::

    from repro import LabeledGraph, QueryGraph, diversified_search

    result = diversified_search(graph, query, k=40)
    for embedding in result.embeddings:
        ...  # embedding[u] is the data vertex matched to query node u

:class:`DSQL` is the reusable *session* form: it pins a data graph, its
shared :class:`~repro.indexes.graph_cache.GraphIndexCache` (label inverted
index, signature table, degree arrays, candidate-pool memo), and a
configuration, then answers many queries without recomputing any per-graph
state. ``query_many`` additionally memoizes whole results for repeated
queries behind a bounded LRU (``config.query_cache_size``); session-level
hit/miss counters live on :attr:`DSQL.stats`.

The phase dispatch follows Section 6.2 exactly:

1. run DSQL-P1;
2. if P1 exhausted all levels with ``|T| < k`` — **optimal**, stop;
3. if the ``k`` embeddings are pairwise disjoint — **optimal**, stop;
4. if ``|C(T)| / (kq)`` already meets the 0.5 target — good enough
   (SWAPα cannot certify beyond 0.5), stop;
5. otherwise run DSQL-P2 (swapping with early termination).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.result import DSQResult
from repro.core.state import SearchStats
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import validate_embedding
from repro.indexes.candidates import CandidateIndex


class DSQL:
    """A diversified subgraph query *session* bound to one data graph.

    Construction pins the graph's shared index cache (label inverted index,
    neighborhood-signature table, degree arrays, candidate-pool memo) so
    per-graph state is computed once and reused by every :meth:`query` /
    :meth:`query_many` call. Sessions are cheap to create for a graph whose
    cache is already warm; keep one around to answer a query stream.

    Parameters
    ----------
    graph:
        The data graph.
    config:
        Full configuration; or pass ``k`` alone for the defaults.
    k:
        Shorthand for ``DSQLConfig(k=...)`` when ``config`` is omitted.

    Attributes
    ----------
    index_cache:
        The pinned per-graph :class:`~repro.indexes.graph_cache.GraphIndexCache`.
    stats:
        Session-level counters: ``query_cache_hits`` / ``query_cache_misses``
        for the ``query_many`` memo (per-query search counters are on each
        result's own ``stats``).
    """

    def __init__(
        self,
        graph: LabeledGraph,
        config: Optional[DSQLConfig] = None,
        k: Optional[int] = None,
    ) -> None:
        if config is None:
            if k is None:
                raise ValueError("provide either a DSQLConfig or k")
            config = DSQLConfig(k=k)
        elif k is not None and k != config.k:
            raise ValueError(f"conflicting k: config.k={config.k}, k={k}")
        self.graph = graph
        self.config = config
        self.index_cache = graph.index_cache()
        self.stats = SearchStats()
        self._query_cache: "OrderedDict[tuple, DSQResult]" = OrderedDict()

    def query(self, query: QueryGraph) -> DSQResult:
        """Answer one diversified top-k query."""
        config = self.config
        graph = self.graph
        stats = SearchStats()
        candidates = CandidateIndex(graph, query, cache=self.index_cache)

        phase1 = run_phase1(graph, query, config, candidates, stats)
        state = phase1.state
        k, q = config.k, query.size

        optimal = False
        reason = ""
        if (
            phase1.exhausted
            and len(state) < k
            and not config.relaxed_bad_vertices
            and not stats.budget_exhausted
        ):
            # Theorem 3's |A| < k case. The DSQLh relaxation skips vertices
            # that may still extend to embeddings, so it forfeits this claim.
            optimal, reason = True, "exhausted"
        elif len(state) == k and state.is_disjoint():
            optimal, reason = True, "disjoint"

        embeddings = list(state.embeddings)
        coverage = state.coverage
        level = phase1.level

        ratio = coverage / (k * q)
        if (
            not optimal
            and config.run_phase2
            and len(state) == k
            and ratio < config.phase2_ratio_target
            and not stats.budget_exhausted
        ):
            phase2 = run_phase2(graph, query, config, candidates, phase1, stats)
            embeddings = phase2.embeddings
            coverage = phase2.coverage

        result = DSQResult(
            embeddings=embeddings,
            k=k,
            q=q,
            coverage=coverage,
            level=level,
            optimal=optimal,
            optimal_reason=reason,
            stats=stats,
        )
        if config.validate_results:
            for emb in result.embeddings:
                validate_embedding(graph, query, emb)
        return result


    def query_many(self, queries) -> list:
        """Answer a sequence of queries, memoizing repeated query structure.

        Queries are memoized by :meth:`QueryGraph.canonical_key` — identical
        labeled structure returns the same (deterministic) result object
        without re-searching. The memo persists across ``query_many`` calls
        on this session and is bounded by ``config.query_cache_size`` with
        LRU eviction (``None`` = unbounded, ``0`` = disabled). Hits and
        misses accumulate on :attr:`stats`.
        """
        cache = self._query_cache
        cap = self.config.query_cache_size
        stats = self.stats
        results = []
        for query in queries:
            key = query.canonical_key()
            if cap == 0:
                stats.query_cache_misses += 1
                results.append(self.query(query))
                continue
            result = cache.get(key)
            if result is None:
                stats.query_cache_misses += 1
                result = self.query(query)
                cache[key] = result
                if cap is not None and len(cache) > cap:
                    cache.popitem(last=False)
            else:
                stats.query_cache_hits += 1
                cache.move_to_end(key)
            results.append(result)
        return results


def diversified_search(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    config: Optional[DSQLConfig] = None,
    **overrides,
) -> DSQResult:
    """One-shot convenience wrapper around :class:`DSQL`.

    Keyword overrides are forwarded to :class:`DSQLConfig`, e.g.
    ``diversified_search(g, q, k=40, run_phase2=False)``.
    """
    if config is None:
        config = DSQLConfig(k=k, **overrides)
    elif overrides:
        raise ValueError("pass either a config object or keyword overrides, not both")
    return DSQL(graph, config=config).query(query)
