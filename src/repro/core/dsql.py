"""Public entry points for diversified top-k subgraph querying.

Typical use::

    from repro import LabeledGraph, QueryGraph, diversified_search

    result = diversified_search(graph, query, k=40)
    for embedding in result.embeddings:
        ...  # embedding[u] is the data vertex matched to query node u

:class:`DSQL` is the reusable *session* form: it pins a data graph, its
shared :class:`~repro.indexes.graph_cache.GraphIndexCache` (label inverted
index, signature table, degree arrays, candidate-pool memo), and a
configuration, then answers many queries without recomputing any per-graph
state. ``query_many`` additionally memoizes whole results for repeated
queries behind a bounded LRU (``config.query_cache_size``); session-level
hit/miss counters live on :attr:`DSQL.stats`.

The phase dispatch follows Section 6.2 exactly:

1. run DSQL-P1;
2. if P1 exhausted all levels with ``|T| < k`` — **optimal**, stop;
3. if the ``k`` embeddings are pairwise disjoint — **optimal**, stop;
4. if ``|C(T)| / (kq)`` already meets the 0.5 target — good enough
   (SWAPα cannot certify beyond 0.5), stop;
5. otherwise run DSQL-P2 (swapping with early termination).

Every step is parameterized by ``config.objective`` (see
:mod:`repro.coverage.objectives`): coverage/benefit/loss become the
objective's weighted element quantities, ``kq`` becomes
``objective.max_coverage(k)``, and the optimality certificates of steps 2
and 3 only fire when the objective's flags say they are sound (``edge``
forfeits the exhausted certificate, ``weighted-vertex`` the disjoint one).
The default ``vertex`` objective is bit-identical to the pre-seam dispatch.
"""

from __future__ import annotations

import copy
import itertools
import logging
import time
from collections import OrderedDict
from contextlib import nullcontext as _nullcontext
from dataclasses import replace
from typing import Optional

from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.result import DSQResult
from repro.core.state import SearchStats
from repro.coverage.objectives import build_weight_profile, make_objective
from repro.exceptions import ConfigError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import validate_embedding
from repro.indexes.candidates import CandidateIndex
from repro.indexes.plans import compile_plan
from repro.observability import (
    Instrumentation,
    get_default_instrumentation,
    record_search_stats,
)

logger = logging.getLogger("repro.core.dsql")

# Reusable (and reentrant) stand-in for a span when instrumentation is off.
_NULL_CONTEXT = _nullcontext()


class DSQL:
    """A diversified subgraph query *session* bound to one data graph.

    Construction pins the graph's shared index cache (label inverted index,
    neighborhood-signature table, degree arrays, candidate-pool memo) so
    per-graph state is computed once and reused by every :meth:`query` /
    :meth:`query_many` call. Sessions are cheap to create for a graph whose
    cache is already warm; keep one around to answer a query stream.

    Parameters
    ----------
    graph:
        The data graph.
    config:
        Full configuration; or pass ``k`` alone for the defaults.
    k:
        Shorthand for ``DSQLConfig(k=...)`` when ``config`` is omitted.
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation`. When omitted
        the process default (``set_default_instrumentation``) is consulted;
        ``None`` (the usual case) disables all tracing/metrics/hooks at a
        cost of a few pointer checks per query.

    Attributes
    ----------
    index_cache:
        The pinned per-graph :class:`~repro.indexes.graph_cache.GraphIndexCache`.
    stats:
        Session-level counters: ``query_cache_hits`` / ``query_cache_misses``
        for the ``query_many`` memo (per-query search counters are on each
        result's own ``stats``).
    """

    def __init__(
        self,
        graph: LabeledGraph,
        config: Optional[DSQLConfig] = None,
        k: Optional[int] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if config is None:
            if k is None:
                raise ValueError("provide either a DSQLConfig or k")
            config = DSQLConfig(k=k)
        elif k is not None and k != config.k:
            raise ValueError(f"conflicting k: config.k={config.k}, k={k}")
        self.graph = graph
        self.config = config
        self.index_cache = graph.index_cache()
        # The weighted-vertex weight table is a per-graph artifact; build it
        # once per graph *version* so per-query objective binding stays O(q)
        # (degree-derived weights go stale under live mutation, so the
        # profile is stamped with the cache version and lazily refreshed).
        self._weight_profile = (
            build_weight_profile(graph, config.vertex_weights)
            if config.objective == "weighted-vertex"
            else None
        )
        self._weight_version = self.index_cache.version
        self.stats = SearchStats()
        self._query_cache: "OrderedDict[tuple, DSQResult]" = OrderedDict()
        if instrumentation is None:
            instrumentation = get_default_instrumentation()
        self.instrumentation = instrumentation
        # itertools.count.__next__ is atomic under the GIL, so thread-strategy
        # workers draw distinct ids without extra locking.
        self._query_ids = itertools.count()
        if instrumentation is not None:
            self.index_cache.attach_metrics(instrumentation.metrics)

    def query(self, query: QueryGraph) -> DSQResult:
        """Answer one diversified top-k query."""
        instr = self.instrumentation
        if instr is None:
            return self._query_impl(query, None, None)
        query_id = next(self._query_ids)
        with instr.span("query", query_id=query_id, q=query.size, k=self.config.k) as span:
            result = self._query_impl(query, instr, query_id)
            span["coverage"] = result.coverage
            span["embeddings"] = len(result)
            span["optimal"] = result.optimal
        record_search_stats(instr.metrics, result.stats)
        instr.metrics.histogram("query.coverage_ratio", (0.25, 0.5, 0.75, 0.9, 1.0)).observe(
            result.approx_ratio_lower_bound()
        )
        instr.metrics.counter(f"objective.{self.config.objective}.queries").inc()
        if result.stats.phase2_swaps:
            instr.metrics.counter(
                f"objective.{self.config.objective}.swap_accept"
            ).inc(result.stats.phase2_swaps)
        logger.debug(
            "query %d: %d/%d embeddings, coverage %d, %d expansions%s",
            query_id,
            len(result),
            self.config.k,
            result.coverage,
            result.stats.nodes_expanded,
            " [deadline]" if result.stats.deadline_exhausted else "",
        )
        return result

    def _weights(self):
        """The weighted-vertex profile at the graph's current version.

        Rebuilt lazily after a mutation: the profile may derive weights from
        degrees, which change under live mutation.
        """
        if self._weight_profile is not None and self._weight_version != self.index_cache.version:
            self._weight_profile = build_weight_profile(self.graph, self.config.vertex_weights)
            self._weight_version = self.index_cache.version
        return self._weight_profile

    def _query_impl(
        self, query: QueryGraph, instr: Optional[Instrumentation], query_id: Optional[int]
    ) -> DSQResult:
        config = self.config
        graph = self.graph
        stats = SearchStats()
        # Plan acquisition: memoized in the graph's shared PlanCache unless
        # the --no-plan-cache escape hatch asked for a per-query recompile.
        plan = None
        if config.use_plans:
            if config.plan_cache:
                plan = self.index_cache.plan_cache.get_or_compile(
                    query, self.index_cache, use_compression=config.use_compression
                )
            else:
                plan = compile_plan(
                    query, self.index_cache, use_compression=config.use_compression
                )
        if instr is not None:
            with instr.span("candidate_build", query_id=query_id):
                candidates = CandidateIndex(
                    graph, query, cache=self.index_cache, plan=plan
                )
        else:
            candidates = CandidateIndex(graph, query, cache=self.index_cache, plan=plan)
        # The wall-clock deadline is anchored once and shared by both phases:
        # time_budget_ms bounds the whole query, not each phase. With
        # auto_time_budget and no explicit budget, the deadline is derived
        # from the plan's cost estimate (see repro.cost) so runaway queries
        # self-truncate; the estimate is observed against actuals afterwards
        # to keep the per-graph calibration honest.
        deadline = None
        cost_estimate = None
        if config.time_budget_ms is not None:
            deadline = time.monotonic() + config.time_budget_ms / 1000.0
        elif config.auto_time_budget and plan is not None:
            from repro.cost.estimator import derive_time_budget_ms

            cost_estimate = self.index_cache.cost_estimator().estimate(plan, k=config.k)
            budget_ms = derive_time_budget_ms(cost_estimate, config.work_unit_rate)
            deadline = time.monotonic() + budget_ms / 1000.0

        with (
            instr.span("phase1", query_id=query_id)
            if instr is not None
            else _NULL_CONTEXT
        ):
            phase1 = run_phase1(
                graph,
                query,
                config,
                candidates,
                stats,
                deadline=deadline,
                instrumentation=instr,
                query_id=query_id,
                plan=plan,
            )
        state = phase1.state
        k, q = config.k, query.size
        truncated = stats.budget_exhausted or stats.deadline_exhausted
        objective = make_objective(
            config.objective, query=query, weight_profile=self._weights()
        )

        optimal = False
        reason = ""
        if (
            phase1.exhausted
            and len(state) < k
            and not config.relaxed_bad_vertices
            and not truncated
            and objective.certifies_exhausted_optimal
        ):
            # Theorem 3's |A| < k case. The DSQLh relaxation skips vertices
            # that may still extend to embeddings, so it forfeits this claim;
            # so do objectives whose elements outlive vertex exhaustion
            # (a vertex-covered embedding can still add fresh data edges).
            optimal, reason = True, "exhausted"
        elif (
            len(state) == k
            and state.is_disjoint()
            and objective.certifies_disjoint_optimal
        ):
            optimal, reason = True, "disjoint"

        embeddings = list(state.embeddings)
        is_vertex = config.objective == "vertex"
        coverage = (
            state.coverage if is_vertex else objective.collection_coverage(embeddings)
        )
        level = phase1.level

        max_cov = objective.max_coverage(k)
        ratio = coverage / max_cov if max_cov else 1.0
        if (
            not optimal
            and config.run_phase2
            and len(state) == k
            and ratio < config.phase2_ratio_target
            and not truncated
        ):
            with (
                instr.span("phase2", query_id=query_id)
                if instr is not None
                else _NULL_CONTEXT
            ):
                phase2 = run_phase2(
                    graph,
                    query,
                    config,
                    candidates,
                    phase1,
                    stats,
                    deadline=deadline,
                    instrumentation=instr,
                    query_id=query_id,
                    plan=plan,
                    objective=objective if not is_vertex else None,
                )
            embeddings = phase2.embeddings
            coverage = phase2.coverage

        if instr is not None and deadline is not None:
            instr.deadline_margin((deadline - time.monotonic()) * 1000.0, query_id)

        result = DSQResult(
            embeddings=embeddings,
            k=k,
            q=q,
            coverage=coverage,
            level=level,
            optimal=optimal,
            optimal_reason=reason,
            stats=stats,
            objective=config.objective,
            coverage_bound=None if is_vertex else max_cov,
        )
        if config.validate_results:
            for emb in result.embeddings:
                validate_embedding(graph, query, emb)
        if cost_estimate is not None:
            self.index_cache.cost_estimator().observe(
                cost_estimate, stats.nodes_expanded
            )
        return result

    def estimate(self, query: QueryGraph):
        """Calibrated cost estimate for ``query`` without running it.

        Compiles (or fetches from the shared plan cache) the same
        :class:`~repro.indexes.plans.QueryPlan` a real ``query()`` call
        would use, and folds the session's ``k`` into the plan's memoized
        cost profile — see :mod:`repro.cost`. Requires ``use_plans``.
        """
        config = self.config
        if not config.use_plans:
            raise ConfigError("cost estimation requires use_plans")
        if config.plan_cache:
            plan = self.index_cache.plan_cache.get_or_compile(
                query, self.index_cache, use_compression=config.use_compression
            )
        else:
            plan = compile_plan(
                query, self.index_cache, use_compression=config.use_compression
            )
        return self.index_cache.cost_estimator().estimate(plan, k=config.k)

    def memo_key(self, query: QueryGraph) -> tuple:
        """The ``query_many`` memo key: graph version + canonical structure.

        Qualifying the canonical key with the index cache's
        ``(epoch, delta_seq)`` version means a mutation never replays a
        pre-mutation answer — stale entries simply stop being addressable
        and age out of the LRU. :class:`~repro.parallel.executor.
        BatchExecutor` builds the identical key for its replay mirror.
        """
        return (self.index_cache.version, query.canonical_key())

    def query_many(self, queries) -> list:
        """Answer a sequence of queries, memoizing repeated query structure.

        Queries are memoized by :meth:`QueryGraph.canonical_key`, qualified
        by the graph's ``(epoch, delta_seq)`` version — identical labeled
        structure against an unmutated graph returns an equal
        (deterministic) result without re-searching. The memo persists
        across ``query_many`` calls on this session and is bounded by
        ``config.query_cache_size`` with LRU eviction (``None`` =
        unbounded, ``0`` = disabled). Hits and misses accumulate on
        :attr:`stats`.

        A hit returns a copy of the memoized result flagged
        ``from_cache=True`` (with its own ``stats`` copy), never the stored
        object itself: :class:`DSQResult` is frozen, but ``stats`` is a
        mutable counter bundle, and handing the cached instance out would let
        one caller's bookkeeping corrupt every later hit.
        """
        results = []
        for query in queries:
            results.append(
                self._memo_answer(self.memo_key(query), lambda q=query: self.query(q))
            )
        return results

    def _memo_answer(self, key, compute) -> DSQResult:
        """One memo step of :meth:`query_many`: hit, or ``compute()`` + store.

        Factored out so :class:`~repro.parallel.executor.BatchExecutor` can
        replay a batch through the *identical* memo logic (with ``compute``
        returning a result searched on a worker) — parallel runs then match
        serial ``query_many`` by construction, counters included.
        """
        cache = self._query_cache
        cap = self.config.query_cache_size
        stats = self.stats
        instr = self.instrumentation
        if cap == 0:
            stats.query_cache_misses += 1
            if instr is not None:
                instr.metrics.counter("cache.query.miss").inc()
            return compute()
        result = cache.get(key)
        if result is None:
            stats.query_cache_misses += 1
            if instr is not None:
                instr.metrics.counter("cache.query.miss").inc()
                instr.point("memo.lookup", hit=False)
            result = compute()
            # The cached entry owns a private stats copy: the object
            # returned to the caller shares nothing mutable with the memo.
            cache[key] = replace(result, stats=copy.deepcopy(result.stats))
            if cap is not None and len(cache) > cap:
                cache.popitem(last=False)
            return result
        stats.query_cache_hits += 1
        cache.move_to_end(key)
        if instr is not None:
            instr.metrics.counter("cache.query.hit").inc()
            instr.point("memo.lookup", hit=True)
        return replace(result, from_cache=True, stats=copy.deepcopy(result.stats))


def diversified_search(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    config: Optional[DSQLConfig] = None,
    **overrides,
) -> DSQResult:
    """One-shot convenience wrapper around :class:`DSQL`.

    Keyword overrides are forwarded to :class:`DSQLConfig`, e.g.
    ``diversified_search(g, q, k=40, run_phase2=False)``.
    """
    if config is None:
        config = DSQLConfig(k=k, **overrides)
    elif overrides:
        raise ValueError("pass either a config object or keyword overrides, not both")
    return DSQL(graph, config=config).query(query)
