"""Public entry points for diversified top-k subgraph querying.

Typical use::

    from repro import LabeledGraph, QueryGraph, diversified_search

    result = diversified_search(graph, query, k=40)
    for embedding in result.embeddings:
        ...  # embedding[u] is the data vertex matched to query node u

:class:`DSQL` is the reusable form: it pins a data graph and configuration
and answers many queries (candidate indexes are built per query).

The phase dispatch follows Section 6.2 exactly:

1. run DSQL-P1;
2. if P1 exhausted all levels with ``|T| < k`` — **optimal**, stop;
3. if the ``k`` embeddings are pairwise disjoint — **optimal**, stop;
4. if ``|C(T)| / (kq)`` already meets the 0.5 target — good enough
   (SWAPα cannot certify beyond 0.5), stop;
5. otherwise run DSQL-P2 (swapping with early termination).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1
from repro.core.phase2 import run_phase2
from repro.core.result import DSQResult
from repro.core.state import SearchStats
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.graph.validation import validate_embedding
from repro.indexes.candidates import CandidateIndex


class DSQL:
    """A diversified subgraph query solver bound to one data graph.

    Parameters
    ----------
    graph:
        The data graph.
    config:
        Full configuration; or pass ``k`` alone for the defaults.
    k:
        Shorthand for ``DSQLConfig(k=...)`` when ``config`` is omitted.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        config: Optional[DSQLConfig] = None,
        k: Optional[int] = None,
    ) -> None:
        if config is None:
            if k is None:
                raise ValueError("provide either a DSQLConfig or k")
            config = DSQLConfig(k=k)
        elif k is not None and k != config.k:
            raise ValueError(f"conflicting k: config.k={config.k}, k={k}")
        self.graph = graph
        self.config = config

    def query(self, query: QueryGraph) -> DSQResult:
        """Answer one diversified top-k query."""
        config = self.config
        graph = self.graph
        stats = SearchStats()
        candidates = CandidateIndex(graph, query)

        phase1 = run_phase1(graph, query, config, candidates, stats)
        state = phase1.state
        k, q = config.k, query.size

        optimal = False
        reason = ""
        if (
            phase1.exhausted
            and len(state) < k
            and not config.relaxed_bad_vertices
            and not stats.budget_exhausted
        ):
            # Theorem 3's |A| < k case. The DSQLh relaxation skips vertices
            # that may still extend to embeddings, so it forfeits this claim.
            optimal, reason = True, "exhausted"
        elif len(state) == k and state.is_disjoint():
            optimal, reason = True, "disjoint"

        embeddings = list(state.embeddings)
        coverage = state.coverage
        level = phase1.level

        ratio = coverage / (k * q)
        if (
            not optimal
            and config.run_phase2
            and len(state) == k
            and ratio < config.phase2_ratio_target
            and not stats.budget_exhausted
        ):
            phase2 = run_phase2(graph, query, config, candidates, phase1, stats)
            embeddings = phase2.embeddings
            coverage = phase2.coverage

        result = DSQResult(
            embeddings=embeddings,
            k=k,
            q=q,
            coverage=coverage,
            level=level,
            optimal=optimal,
            optimal_reason=reason,
            stats=stats,
        )
        if config.validate_results:
            for emb in result.embeddings:
                validate_embedding(graph, query, emb)
        return result


    def query_many(self, queries) -> list:
        """Answer a sequence of queries, memoizing repeated query objects.

        Queries are memoized by :meth:`QueryGraph.canonical_key` — identical
        labeled structure returns the same (deterministic) result object
        without re-searching. Useful for workload batches with duplicates.
        """
        cache: dict = {}
        results = []
        for query in queries:
            key = query.canonical_key()
            if key not in cache:
                cache[key] = self.query(query)
            results.append(cache[key])
        return results


def diversified_search(
    graph: LabeledGraph,
    query: QueryGraph,
    k: int,
    config: Optional[DSQLConfig] = None,
    **overrides,
) -> DSQResult:
    """One-shot convenience wrapper around :class:`DSQL`.

    Keyword overrides are forwarded to :class:`DSQLConfig`, e.g.
    ``diversified_search(g, q, k=40, run_phase2=False)``.
    """
    if config is None:
        config = DSQLConfig(k=k, **overrides)
    elif overrides:
        raise ValueError("pass either a config object or keyword overrides, not both")
    return DSQL(graph, config=config).query(query)
