"""DSQL Phase 2 — the swapping phase (Algorithm 5, Section 6.2).

Phase 2 resumes the level-wise generation at the level where Phase 1 stopped
and feeds every generated embedding ``h`` to the SWAPα criterion
(Inequality 2): ``h`` replaces the minimum-loss member ``f`` of the current
solution ``T`` when ``B(h, T) >= (1 + alpha) * L(f, T)``.

Two Phase-1 fidelity points carry over:

* ``TcandS`` is always derived from ``T1``, the Phase-1 solution snapshot,
  not from the evolving ``T`` (Algorithm 5 line 5);
* generation keeps consuming fresh vertices via the shared ``matched`` set,
  exactly "as in the first phase" — each prefix yields one candidate
  embedding and its fresh vertices are never re-proposed.

**Early termination (Lemma 4)** stops the phase when both hold:

1. ``V(T1) ⊆ V(T)`` — nothing of the generating snapshot has been lost, so
   every future embedding at level ``j`` overlaps ``V(T)`` at >= ``j``
   vertices and benefits at most ``q - j``;
2. every member's loss satisfies ``L(f, T) >= (q - j) / (1 + alpha)`` — so
   no future benefit can satisfy the swap criterion.

Both points generalize through the objective seam: benefit/loss are the
objective's weighted element quantities, and the ``q - j`` future-benefit
cap becomes :meth:`~repro.coverage.objectives.Objective.
future_benefit_bound` (``q - j`` for vertex, ``(q - j) * w_max`` for
weighted-vertex, the level-independent ``|E(Q)|`` for edge — and ``None``
forfeits early termination entirely). *Generation* stays vertex-structured
for every objective: levels, the ``matched`` set, and ``TcandS`` all count
vertex overlap, exactly as Phase 1 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.core.config import DSQLConfig
from repro.core.phase1 import Phase1Output, tcand_snapshot, tcand_snapshot_scan
from repro.core.search import LevelSearchEngine
from repro.core.state import SearchStats
from repro.coverage.core import CoverageTracker
from repro.coverage.objectives import Objective, VertexCoverage
from repro.exceptions import BudgetExceeded
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.match import Mapping


@dataclass
class Phase2Output:
    """Result of DSQL-P2: the final solution after swapping."""

    embeddings: List[Mapping]
    coverage: int
    early_terminated: bool = False
    swaps: int = 0
    levels_run: int = 0


def run_phase2(
    graph: LabeledGraph,
    query: QueryGraph,
    config: DSQLConfig,
    candidates: CandidateIndex,
    phase1: Phase1Output,
    stats: SearchStats,
    deadline: Optional[float] = None,
    instrumentation=None,
    query_id: Optional[int] = None,
    plan=None,
    objective: Optional[Objective] = None,
) -> Phase2Output:
    """Execute DSQL-P2 starting from the Phase-1 solution.

    Precondition (checked by the dispatcher): ``|T| == k`` — Phase 1 only
    hands over a full collection; undersized collections are already optimal.
    ``objective`` selects the coverage objective (``None`` = the paper's
    vertex coverage, bound to this query's ``q``).
    ``instrumentation`` brackets every level (``phase2.level`` spans and the
    ``phase2.level_expansions`` histogram) and reports every generated
    embedding (``on_embedding_emitted``) and every SWAPα decision on a
    positive-benefit candidate (``on_swap`` / ``phase2.swap_reject``).
    """
    stats.phase2_ran = True
    q = query.size
    alpha = config.alpha
    if objective is None:
        objective = VertexCoverage(q=q)
    t1_cover: FrozenSet[int] = frozenset(phase1.state.covered)
    instr = instrumentation

    tracker = CoverageTracker(objective=objective)
    slot_to_mapping: Dict[int, Mapping] = {}
    for mapping in phase1.state.embeddings:
        slot = tracker.add(mapping)
        slot_to_mapping[slot] = mapping

    engine = LevelSearchEngine(
        graph,
        query,
        candidates,
        config,
        stats,
        phase1.state.matched,
        deadline=deadline,
        instrumentation=instrumentation,
        query_id=query_id,
        plan=plan,
    )
    # TcandS comes from T1 for the entire phase (Algorithm 5 line 5).
    if plan is not None:
        tcand = tcand_snapshot_scan(plan, set(t1_cover), q)
    else:
        tcand = tcand_snapshot(candidates, set(t1_cover), q)

    out = Phase2Output(
        embeddings=list(phase1.state.embeddings), coverage=tracker.coverage
    )

    def termination_reached(level: int) -> bool:
        # The V(T1) ⊆ V(T) premise only types when the tracker's elements
        # *are* vertices; otherwise the bound must hold unconditionally
        # (edge objective) or early termination is off (bound = None).
        preserved = objective.vertex_elements and t1_cover <= tracker.cover_set()
        bound = objective.future_benefit_bound(level, preserved)
        if bound is None:
            return False
        threshold = bound / (1.0 + alpha)
        return all(tracker.loss(slot) >= threshold for slot in tracker.slots())

    current_level = phase1.level

    def on_embedding(mapping: Mapping) -> bool:
        stats.embeddings_generated_phase2 += 1
        if instr is not None:
            instr.embedding_emitted("phase2", current_level, mapping, query_id)
        b = tracker.benefit(mapping)
        if b > 0:
            slot, f_loss = tracker.min_loss_member()
            accepted = b >= (1.0 + alpha) * f_loss
            if accepted:
                tracker.remove(slot)
                del slot_to_mapping[slot]
                new_slot = tracker.add(mapping)
                slot_to_mapping[new_slot] = mapping
                stats.phase2_swaps += 1
                out.swaps += 1
            if instr is not None:
                instr.swap_decision(current_level, b, f_loss, accepted, query_id)
        if termination_reached(current_level):
            stats.phase2_early_termination = True
            out.early_terminated = True
            return False
        return True

    try:
        for level in range(phase1.level, q):
            current_level = level
            out.levels_run += 1
            stats.phase2_levels = out.levels_run
            if termination_reached(level):
                stats.phase2_early_termination = True
                out.early_terminated = True
                break
            if instr is not None:
                level_start_ms = instr.level_start("phase2", level, query_id)
                level_exp = stats.nodes_expanded
            try:
                keep = engine.run_level(level, phase1.qlist, tcand, on_embedding)
            finally:
                if instr is not None:
                    instr.level_end(
                        "phase2",
                        level,
                        query_id,
                        level_start_ms,
                        expansions=stats.nodes_expanded - level_exp,
                        added=out.swaps,
                    )
            if not keep:
                break
    except BudgetExceeded:
        pass

    out.embeddings = [slot_to_mapping[slot] for slot in tracker.slots()]
    out.coverage = tracker.coverage
    return out
