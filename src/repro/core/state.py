"""Shared mutable state and statistics of a DSQL run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.isomorphism.match import Mapping


@dataclass
class SearchStats:
    """Counters accumulated across both DSQL phases.

    These are the quantities the paper's efficiency discussion turns on —
    the optimization strategies (Section 5) exist precisely to shrink
    ``nodes_expanded`` — plus bookkeeping for the benchmarks.
    """

    nodes_expanded: int = 0
    embeddings_found: int = 0
    embeddings_generated_phase2: int = 0
    conflict_skips: int = 0
    bad_vertex_skips: int = 0
    bad_vertices_marked: int = 0
    candidate_cap_hits: int = 0
    phase1_levels: int = 0
    phase2_levels: int = 0
    phase2_swaps: int = 0
    phase2_ran: bool = False
    phase2_early_termination: bool = False
    budget_exhausted: bool = False
    deadline_exhausted: bool = False
    query_cache_hits: int = 0
    query_cache_misses: int = 0
    kernel_scan: int = 0
    kernel_merge: int = 0
    kernel_bitset: int = 0
    kernel_scalar: int = 0
    kernel_cbitset: int = 0
    per_level_added: Dict[int, int] = field(default_factory=dict)

    def record_added(self, level: int) -> None:
        """Count one embedding accepted at ``level``."""
        self.embeddings_found += 1
        self.per_level_added[level] = self.per_level_added.get(level, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict copy of every counter (JSON-serializable).

        This is the per-query metrics snapshot carried by
        :class:`~repro.experiments.measurement.QueryRecord` and flushed into
        the session :class:`~repro.observability.MetricsRegistry` by
        :func:`~repro.observability.record_search_stats`.
        """
        return {
            "nodes_expanded": self.nodes_expanded,
            "embeddings_found": self.embeddings_found,
            "embeddings_generated_phase2": self.embeddings_generated_phase2,
            "conflict_skips": self.conflict_skips,
            "bad_vertex_skips": self.bad_vertex_skips,
            "bad_vertices_marked": self.bad_vertices_marked,
            "candidate_cap_hits": self.candidate_cap_hits,
            "phase1_levels": self.phase1_levels,
            "phase2_levels": self.phase2_levels,
            "phase2_swaps": self.phase2_swaps,
            "phase2_ran": self.phase2_ran,
            "phase2_early_termination": self.phase2_early_termination,
            "budget_exhausted": self.budget_exhausted,
            "deadline_exhausted": self.deadline_exhausted,
            "kernel_scan": self.kernel_scan,
            "kernel_merge": self.kernel_merge,
            "kernel_bitset": self.kernel_bitset,
            "kernel_scalar": self.kernel_scalar,
            "kernel_cbitset": self.kernel_cbitset,
            "per_level_added": dict(self.per_level_added),
        }


@dataclass
class SolutionState:
    """The evolving solution ``T`` and the consumed-vertex bookkeeping.

    Attributes
    ----------
    embeddings:
        ``T`` — accepted embeddings, as query-node-indexed tuples.
    covered:
        ``V(T)`` — vertices of the current solution.
    matched:
        Vertices *consumed* by generation (Q1Search difference (3)). During
        Phase 1 this equals ``covered``; during Phase 2 it keeps growing with
        every generated embedding while ``covered`` follows the swaps.
    """

    embeddings: List[Mapping] = field(default_factory=list)
    covered: Set[int] = field(default_factory=set)
    matched: Set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.embeddings)

    def add(self, mapping: Mapping) -> None:
        """Accept an embedding into ``T``, consuming its vertices."""
        self.embeddings.append(mapping)
        self.covered.update(mapping)
        self.matched.update(mapping)

    @property
    def coverage(self) -> int:
        """``|C(T)|``."""
        return len(self.covered)

    def is_disjoint(self) -> bool:
        """Whether all embeddings are pairwise vertex-disjoint."""
        total = sum(len(set(m)) for m in self.embeddings)
        return total == len(self.covered)
