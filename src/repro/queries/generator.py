"""Random query workload generation (Section 7, "Query Set").

The paper's generator: "The generator begins with an empty Q, and randomly
picks a vertex u from G, puts it into Q, and continues to randomly choose an
edge e = (u, v) incident to a vertex u in Q from E, and adds v and e to Q,
until there are z edges in Q." Query *size* in the experiments is the edge
count ``z = |E_Q|`` (1..10, default 5).

:func:`random_query` reproduces that process; :func:`query_set` builds the
1000-query batches (parameterized down for Python-scale benchmarking).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Set, Tuple

from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph

_MAX_RESTARTS = 200


def random_query(
    graph: LabeledGraph,
    num_edges: int,
    rng: Optional[random.Random] = None,
) -> QueryGraph:
    """Sample a connected query subgraph of ``graph`` with ``num_edges`` edges.

    The walk grows an edge set: at each step a uniformly random vertex of the
    current query (degree-weighted through neighbor choice, as in the
    paper's edge-incident sampling) contributes a random incident data edge;
    the edge (and its possibly-new endpoint) joins the query. If the region
    around a seed vertex cannot supply ``num_edges`` distinct edges (e.g. a
    tiny component), the walk restarts from a new seed.

    Raises :class:`~repro.exceptions.DatasetError` if the graph cannot host
    any query of the requested size.
    """
    if num_edges < 1:
        raise DatasetError(f"query must have at least 1 edge, got {num_edges}")
    if graph.num_edges < num_edges:
        raise DatasetError(
            f"data graph has {graph.num_edges} edges; cannot sample a "
            f"{num_edges}-edge query"
        )
    rng = rng or random.Random()

    for _ in range(_MAX_RESTARTS):
        result = _grow_query(graph, num_edges, rng)
        if result is not None:
            vertices, edges = result
            return _densify(graph, vertices, edges)
    raise DatasetError(
        f"could not sample a connected {num_edges}-edge query after "
        f"{_MAX_RESTARTS} restarts; the graph's components may be too small"
    )


def _grow_query(
    graph: LabeledGraph,
    num_edges: int,
    rng: random.Random,
) -> Optional[Tuple[List[int], Set[Tuple[int, int]]]]:
    """One growth attempt; ``None`` when the seed's region is too small."""
    seed = rng.randrange(graph.num_vertices)
    if graph.degree(seed) == 0:
        return None
    vertices: List[int] = [seed]
    vertex_set: Set[int] = {seed}
    edges: Set[Tuple[int, int]] = set()

    # Per step, sample an incident edge not yet chosen. A bounded number of
    # rejection-sampling trials keeps this O(1) expected on normal graphs; a
    # final exhaustive sweep guarantees progress whenever progress is possible.
    while len(edges) < num_edges:
        added = False
        for _ in range(32):
            u = vertices[rng.randrange(len(vertices))]
            nbrs = graph.neighbors(u)
            if not nbrs:
                continue
            v = rng.choice(tuple(nbrs))
            key = (u, v) if u < v else (v, u)
            if key not in edges:
                edges.add(key)
                if v not in vertex_set:
                    vertex_set.add(v)
                    vertices.append(v)
                added = True
                break
        if not added:
            frontier = [
                (u, v)
                for u in vertices
                for v in graph.neighbors(u)
                if ((u, v) if u < v else (v, u)) not in edges
            ]
            if not frontier:
                return None
            u, v = frontier[rng.randrange(len(frontier))]
            edges.add((u, v) if u < v else (v, u))
            if v not in vertex_set:
                vertex_set.add(v)
                vertices.append(v)
    return vertices, edges


def _densify(
    graph: LabeledGraph,
    vertices: List[int],
    edges: Set[Tuple[int, int]],
) -> QueryGraph:
    """Map sampled data vertices to dense query node ids, keeping labels."""
    remap = {v: i for i, v in enumerate(vertices)}
    labels = [graph.label(v) for v in vertices]
    query_edges = [(remap[u], remap[v]) for u, v in edges]
    return QueryGraph(labels, query_edges)


def query_set(
    graph: LabeledGraph,
    num_edges: int,
    count: int,
    seed: Optional[int] = None,
) -> List[QueryGraph]:
    """A batch of ``count`` random queries of the same edge count.

    Mirrors the paper's "1000 query graphs in one query set with the same
    query size"; pass ``seed`` for reproducible batches.
    """
    rng = random.Random(seed)
    return [random_query(graph, num_edges, rng) for _ in range(count)]


def scenario_query_set(
    graph: LabeledGraph,
    objective: str,
    num_edges: int,
    count: int,
    seed: Optional[int] = None,
    oversample: int = 4,
) -> List[QueryGraph]:
    """A query batch biased toward stressing the given objective.

    Draws ``oversample * count`` candidates with :func:`random_query` and
    keeps the ``count`` that most exercise the objective's divergence from
    plain vertex coverage (docs/objectives.md):

    * ``edge`` — keeps the *densest* candidates (most edges per vertex):
      dense queries are where an embedding's edge count outruns its vertex
      count, so edge- and vertex-diverse answers can actually differ;
    * ``weighted-vertex`` — keeps the candidates whose sampled region has
      the highest total data-vertex degree, biasing toward hub-heavy
      matches under the degree-derived default weights;
    * ``vertex`` — no bias; identical to :func:`query_set` (same seed,
      same batch), so vertex baselines stay comparable.

    The selection is a stable sort over a deterministic candidate stream:
    fixed ``seed`` means a fixed batch.
    """
    if objective == "vertex":
        return query_set(graph, num_edges, count, seed=seed)
    if oversample < 1:
        raise DatasetError(f"oversample must be >= 1, got {oversample}")
    rng = random.Random(seed)
    candidates = [random_query(graph, num_edges, rng) for _ in range(oversample * count)]
    if objective == "edge":
        score = lambda q: len(q.edges()) / q.size  # noqa: E731 - local key
    elif objective == "weighted-vertex":
        label_degree = [0.0] * graph.num_vertices
        for v in range(graph.num_vertices):
            label_degree[v] = graph.degree(v)
        by_label: dict = {}
        for v in range(graph.num_vertices):
            lbl = graph.label(v)
            stats = by_label.setdefault(lbl, [0.0, 0])
            stats[0] += label_degree[v]
            stats[1] += 1
        # A query node's expected match weight ~ its label's mean degree.
        score = lambda q: sum(  # noqa: E731 - local key
            by_label[lbl][0] / by_label[lbl][1] for lbl in q.labels if lbl in by_label
        )
    else:
        raise DatasetError(f"unknown objective {objective!r} for scenario queries")
    ranked = sorted(enumerate(candidates), key=lambda iv: (-score(iv[1]), iv[0]))
    return [q for _, q in ranked[:count]]


def iter_query_sets(
    graph: LabeledGraph,
    sizes: List[int],
    count: int,
    seed: Optional[int] = None,
) -> Iterator[Tuple[int, List[QueryGraph]]]:
    """Yield ``(size, batch)`` pairs across several query sizes.

    Derives a distinct but deterministic seed per size so batches do not
    alias each other when ``seed`` is fixed.
    """
    for size in sizes:
        sub_seed = None if seed is None else seed * 1_000_003 + size
        yield size, query_set(graph, size, count, seed=sub_seed)
