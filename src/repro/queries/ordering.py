"""Query-node ranking (the ``qList`` of Section 4).

DSQL ranks query nodes by selectivity: the score of node ``u`` is
``|candS(u)| / degree(u)`` — few candidates and high degree both make a node
a good early anchor. The most selective node is searched first; ties break by
node id so results are deterministic for a fixed graph and query.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex


def selectivity_scores(query: QueryGraph, candidates: CandidateIndex) -> List[float]:
    """Per-node scores ``|candS(u)| / degree(u)``.

    Isolated nodes cannot occur (queries are connected with >= 1 node; a
    single-node query has degree 0 and gets score ``|candS(u)|``).
    """
    scores: List[float] = []
    for u in range(query.size):
        deg = query.degree(u)
        size = candidates.size(u)
        scores.append(size / deg if deg else float(size))
    return scores


def selectivity_order(query: QueryGraph, candidates: CandidateIndex) -> List[int]:
    """``qList``: query nodes sorted ascending by selectivity score.

    Lower score = more selective = searched earlier.
    """
    scores = selectivity_scores(query, candidates)
    return sorted(range(query.size), key=lambda u: (scores[u], u))


def rank_of(qlist: Sequence[int]) -> List[int]:
    """Inverse permutation: ``rank_of(qlist)[u]`` is the rank of node ``u``."""
    ranks = [0] * len(qlist)
    for r, u in enumerate(qlist):
        ranks[u] = r
    return ranks
