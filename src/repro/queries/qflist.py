"""Father-ordered query lists (``qfList``) and the Rm statistics (Section 5).

The localized-search optimization (Section 5.1) replaces the flat ``qList``
with ``qfList``: a list of ``(node, father)`` pairs in which every node except
the first has a **father** — a query node processed earlier and adjacent in
``Q``. Matching then proceeds father-first, so the candidates of a node can be
restricted to the neighborhood of its father's matched vertex.

This module also computes the two per-node statistics of Section 5.2 that
drive the single-embedding search mode:

* ``labelRm(u)``    — number of nodes ranked *after* ``u`` sharing its label;
* ``neighborRm(u)`` — number of nodes ranked *after* ``u`` adjacent to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.query_graph import QueryGraph
from repro.queries.ordering import rank_of

NO_FATHER = -1


@dataclass(frozen=True)
class QFEntry:
    """One ``qfList`` element: a query node and its designated father.

    ``father`` is :data:`NO_FATHER` (-1) for the root entry.
    """

    node: int
    father: int


@dataclass(frozen=True)
class QFList:
    """An ordered father list plus the derived per-node statistics.

    Attributes
    ----------
    entries:
        ``qfList`` in search order.
    rank:
        ``rank[u]`` is the position of node ``u`` in :attr:`entries`.
    label_rm, neighbor_rm:
        The Section 5.2 statistics, indexed by *query node id* (not rank).
    """

    entries: Tuple[QFEntry, ...]
    rank: Tuple[int, ...]
    label_rm: Tuple[int, ...]
    neighbor_rm: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def node_order(self) -> List[int]:
        """Just the node ids, in search order."""
        return [e.node for e in self.entries]


def resort(
    query: QueryGraph,
    qlist: Sequence[int],
    qovp: Set[int] = frozenset(),
) -> QFList:
    """Build a :class:`QFList` per the ``reSort`` subroutine (Section 5.1).

    The root is the first node of ``qlist`` that belongs to ``qovp`` (the
    overlap nodes, which are matched before the search starts), or simply the
    first node of ``qlist`` when ``qovp`` is empty. From the root we expand
    breadth-first: each unplaced neighbor of the current node gets the
    current node as father. Neighbors in ``qovp`` are placed before other
    neighbors (matched nodes deserve higher ranks), then by ``qlist`` rank.

    Finally, entries whose node has degree 1 in ``Q`` are shifted to the end
    of the list; a degree-1 node's only neighbor is its father, so the shift
    cannot orphan anyone, and deferring forced leaves lets the conflict and
    single-embedding machinery cut the search earlier.
    """
    ranks = rank_of(qlist)
    root = next((u for u in qlist if u in qovp), qlist[0])

    entries: List[QFEntry] = [QFEntry(root, NO_FATHER)]
    placed: Set[int] = {root}
    cursor = 0
    while len(entries) < query.size:
        u = entries[cursor].node
        neighbors = sorted(
            (w for w in query.neighbors(u) if w not in placed),
            key=lambda w: (w not in qovp, ranks[w], w),
        )
        for w in neighbors:
            entries.append(QFEntry(w, u))
            placed.add(w)
        cursor += 1

    # The root must stay first even when it has degree 1 — its children's
    # localization depends on the father being matched before them.
    trunk = [e for e in entries if e.father == NO_FATHER or query.degree(e.node) != 1]
    leaves = [e for e in entries if e.father != NO_FATHER and query.degree(e.node) == 1]
    ordered = tuple(trunk + leaves)

    return _with_statistics(query, ordered)


def _with_statistics(query: QueryGraph, entries: Tuple[QFEntry, ...]) -> QFList:
    """Attach rank, labelRm and neighborRm tables to an entry order."""
    q = query.size
    rank = [0] * q
    for r, entry in enumerate(entries):
        rank[entry.node] = r

    label_rm = [0] * q
    neighbor_rm = [0] * q
    for entry in entries:
        u = entry.node
        label_rm[u] = sum(
            1
            for other in range(q)
            if rank[other] > rank[u] and query.label(other) == query.label(u)
        )
        neighbor_rm[u] = sum(1 for w in query.neighbors(u) if rank[w] > rank[u])

    return QFList(
        entries=entries,
        rank=tuple(rank),
        label_rm=tuple(label_rm),
        neighbor_rm=tuple(neighbor_rm),
    )


def validate_qflist(query: QueryGraph, qf: QFList) -> None:
    """Assert structural invariants of a :class:`QFList` (used in tests).

    * every query node appears exactly once;
    * the first entry has no father; every other father precedes its child
      and is adjacent to it in ``Q``.
    """
    nodes = [e.node for e in qf.entries]
    if sorted(nodes) != list(range(query.size)):
        raise ValueError(f"qfList covers nodes {sorted(nodes)}, expected 0..{query.size - 1}")
    seen: Set[int] = set()
    for i, entry in enumerate(qf.entries):
        if i == 0:
            if entry.father != NO_FATHER:
                raise ValueError("first qfList entry must have father -1")
        else:
            if entry.father == NO_FATHER:
                raise ValueError(f"non-first entry {entry.node} lacks a father")
            if entry.father not in seen:
                raise ValueError(
                    f"father {entry.father} of node {entry.node} not processed earlier"
                )
            if not query.has_edge(entry.node, entry.father):
                raise ValueError(
                    f"father {entry.father} not adjacent to node {entry.node} in Q"
                )
        seen.add(entry.node)
