"""Query workloads: random generation, selectivity ordering, qfList."""

from repro.queries.generator import iter_query_sets, query_set, random_query
from repro.queries.ordering import rank_of, selectivity_order, selectivity_scores
from repro.queries.qflist import NO_FATHER, QFEntry, QFList, resort, validate_qflist

__all__ = [
    "random_query",
    "query_set",
    "iter_query_sets",
    "selectivity_order",
    "selectivity_scores",
    "rank_of",
    "QFEntry",
    "QFList",
    "NO_FATHER",
    "resort",
    "validate_qflist",
]
