"""Dataset substrate: synthetic topologies, label schemes, paper profiles."""

from repro.datasets.examples import dbpedia_flavor, figure1, figure2, imdb_flavor
from repro.datasets.paper_figures import figure3, figure4, figure5
from repro.datasets.labels import (
    label_names,
    relabel_to_density,
    skewed_labels,
    uniform_labels,
    zipf_labels,
)
from repro.datasets.registry import (
    PROFILES,
    DatasetProfile,
    dataset_names,
    get_profile,
    make_dataset,
)
from repro.datasets.synthetic import (
    bipartite_affiliation_graph,
    configuration_graph,
    erdos_renyi_graph,
    lognormal_graph,
    power_law_graph,
)

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "imdb_flavor",
    "dbpedia_flavor",
    "label_names",
    "uniform_labels",
    "zipf_labels",
    "skewed_labels",
    "relabel_to_density",
    "PROFILES",
    "DatasetProfile",
    "dataset_names",
    "get_profile",
    "make_dataset",
    "configuration_graph",
    "power_law_graph",
    "lognormal_graph",
    "bipartite_affiliation_graph",
    "erdos_renyi_graph",
]
