"""Profiles of the paper's nine datasets and their synthetic stand-ins.

Each :class:`DatasetProfile` records the published statistics of one real
dataset (Table 1) plus the topology/label recipe of its stand-in. Calling
:func:`make_dataset` builds a :class:`LabeledGraph` matched to those
statistics at an arbitrary ``scale`` (vertex-count multiplier); benchmark
defaults (``bench_scale``) keep the biggest graphs laptop-sized while the
full-scale parameters remain one argument away.

Substitution rationale (DESIGN.md §4): DSQL's behaviour is governed by label
selectivity, degree distribution, and density, which the stand-ins match;
four of the paper's datasets carried synthetic uniform labels to begin with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets import labels as label_schemes
from repro.datasets import synthetic
from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class DatasetProfile:
    """One dataset's published statistics plus its stand-in recipe.

    ``topology`` is one of ``"power_law"``, ``"lognormal"``, ``"bipartite"``.
    ``label_scheme`` is one of ``"uniform"``, ``"zipf"``, ``"skewed"``.
    ``synthetic_labels`` marks the datasets the paper itself labeled
    synthetically (the ``*`` rows of Table 1).
    """

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    avg_degree: float
    topology: str
    label_scheme: str
    synthetic_labels: bool
    bench_scale: float
    description: str

    def scaled_vertices(self, scale: float) -> int:
        """Vertex count at ``scale`` (minimum 50 to stay a usable graph)."""
        return max(50, int(self.num_vertices * scale))

    def scaled_labels(self, scale: float) -> int:
        """Label count at ``scale``.

        Label-set sizes shrink with the square root of the scale: halving
        the graph while halving the labels would keep per-label bucket sizes
        constant and make small graphs behave like dense forests of tiny
        buckets; the square-root compromise keeps *selectivity* (bucket size
        relative to graph size) drifting slowly, which is the regime the
        paper's queries live in.
        """
        if scale >= 1.0:
            return self.num_labels
        return max(2, int(round(self.num_labels * scale**0.5)))


PROFILES: Dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in [
        DatasetProfile(
            name="yeast",
            num_vertices=3101,
            num_edges=12519,
            num_labels=31,
            avg_degree=8.07,
            topology="lognormal",
            label_scheme="zipf",
            synthetic_labels=False,
            bench_scale=1.0,
            description="protein-protein interaction network",
        ),
        DatasetProfile(
            name="human",
            num_vertices=4675,
            num_edges=86282,
            num_labels=90,
            avg_degree=36.92,
            topology="lognormal",
            label_scheme="zipf",
            synthetic_labels=False,
            bench_scale=1.0,
            description="dense protein-protein interaction network",
        ),
        DatasetProfile(
            name="wordnet",
            num_vertices=76854,
            num_edges=213308,
            num_labels=5,
            avg_degree=5.55,
            topology="power_law",
            label_scheme="uniform",
            synthetic_labels=False,
            bench_scale=0.1,
            description="lexical network with only 5 labels",
        ),
        DatasetProfile(
            name="epinion",
            num_vertices=75879,
            num_edges=405741,
            num_labels=50,
            avg_degree=10.69,
            topology="power_law",
            label_scheme="uniform",
            synthetic_labels=True,
            bench_scale=0.1,
            description="who-trusts-whom social network",
        ),
        DatasetProfile(
            name="dblp",
            num_vertices=317080,
            num_edges=1049866,
            num_labels=50,
            avg_degree=6.62,
            topology="power_law",
            label_scheme="uniform",
            synthetic_labels=True,
            bench_scale=0.03,
            description="co-authorship network",
        ),
        DatasetProfile(
            name="youtube",
            num_vertices=1100000,
            num_edges=2900000,
            num_labels=100,
            avg_degree=5.26,
            topology="power_law",
            label_scheme="uniform",
            synthetic_labels=True,
            bench_scale=0.01,
            description="video social network",
        ),
        DatasetProfile(
            name="dbpedia",
            num_vertices=809597,
            num_edges=3720000,
            num_labels=100,
            avg_degree=9.19,
            topology="power_law",
            label_scheme="uniform",
            synthetic_labels=True,
            bench_scale=0.01,
            description="RDF person graph crawled from Wikipedia",
        ),
        DatasetProfile(
            name="imdb",
            num_vertices=4490000,
            num_edges=7490000,
            num_labels=123,
            avg_degree=3.34,
            topology="bipartite",
            label_scheme="skewed",
            synthetic_labels=False,
            bench_scale=0.002,
            description="movie/person affiliation graph, 90% of labels in 3 values",
        ),
        DatasetProfile(
            name="uspatent",
            num_vertices=3770000,
            num_edges=16500000,
            num_labels=388,
            avg_degree=8.75,
            topology="power_law",
            label_scheme="zipf",
            synthetic_labels=False,
            bench_scale=0.002,
            description="patent citation network",
        ),
    ]
}


def dataset_names() -> List[str]:
    """All registered dataset names."""
    return sorted(PROFILES)


def get_profile(name: str) -> DatasetProfile:
    """Profile lookup with a helpful error."""
    try:
        return PROFILES[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


def make_dataset(
    name: str,
    scale: Optional[float] = None,
    seed: int = 0,
    num_labels: Optional[int] = None,
) -> LabeledGraph:
    """Build the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    scale:
        Vertex-count multiplier; defaults to the profile's ``bench_scale``.
        Pass ``1.0`` for full published size.
    seed:
        Seed for both topology and labels (deterministic builds).
    num_labels:
        Override the label-set size — the lever of the Figure 7
        label-density experiment.
    """
    profile = get_profile(name)
    scale = profile.bench_scale if scale is None else scale
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    n = profile.scaled_vertices(scale)
    m_labels = num_labels if num_labels is not None else profile.scaled_labels(scale)

    if profile.topology == "power_law":
        edges = synthetic.power_law_graph(n, profile.avg_degree, seed=seed)
        total = n
    elif profile.topology == "lognormal":
        edges = synthetic.lognormal_graph(n, profile.avg_degree, seed=seed)
        total = n
    elif profile.topology == "bipartite":
        # 90% of IMDB vertices are people under 3 labels (actor/actress/
        # director); movies/series carry the remaining genre labels.
        num_people = int(n * 0.9)
        num_works = n - num_people
        total, edges = synthetic.bipartite_affiliation_graph(
            num_people, num_works, profile.avg_degree, seed=seed
        )
    else:  # pragma: no cover - profiles are statically defined
        raise DatasetError(f"unknown topology {profile.topology!r}")

    if profile.label_scheme == "uniform":
        labels = label_schemes.uniform_labels(total, m_labels, seed=seed + 1)
    elif profile.label_scheme == "zipf":
        labels = label_schemes.zipf_labels(total, m_labels, exponent=1.0, seed=seed + 1)
    elif profile.label_scheme == "skewed":
        # Two-mode labeling: the person partition takes the 3 dominant
        # labels, the work partition takes the rest of the alphabet. This
        # both realizes the 90% skew and keeps the affiliation structure
        # label-consistent (person labels never appear on works).
        num_people = int(n * 0.9)
        person_labels = label_schemes.uniform_labels(num_people, 3, seed=seed + 1)
        work_count = total - num_people
        work_labels = label_schemes.uniform_labels(
            work_count, max(1, m_labels - 3), seed=seed + 2, prefix="W"
        )
        labels = person_labels + work_labels
    else:  # pragma: no cover
        raise DatasetError(f"unknown label scheme {profile.label_scheme!r}")

    return LabeledGraph(labels, edges, name=f"{name}@{scale:g}")
