"""Hand-built example graphs from the paper's figures and case studies.

These fixtures pin the worked examples of the paper, used by the test suite
to check DSQL's behaviour against the paper's own traces and by the example
scripts for readable demos:

* :func:`figure1` — the motivating collaboration network and team query
  (project manager / programmer / DB developer / software tester);
* :func:`figure2` — the Example 2 walk-through of DSQL-P1 levels;
* :func:`imdb_flavor` — a movie/person affiliation graph with the Section
  7.2 query shape (people co-appearing in two series);
* :func:`dbpedia_flavor` — an occupation-labeled person graph with the
  Appendix B.1 politician/scientist/physicist query.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


def figure1() -> Tuple[LabeledGraph, QueryGraph]:
    """The Figure 1 collaboration network ``G'`` and team query ``Q``.

    Labels: ``a`` project manager, ``b`` programmer, ``c`` database
    developer, ``d`` software tester. Vertex ``vN`` of the paper is id
    ``N - 1``. The graph hosts (among others) the paper's embeddings
    ``(v1, v5, v4, v10)``, ``(v2, v6, v7, v12)``, ``(v3, v8, v7, v12)`` and
    ``(v3, v8, v9, v12)``.
    """
    labels = [
        "a",  # v1
        "a",  # v2
        "a",  # v3
        "c",  # v4
        "b",  # v5
        "b",  # v6
        "c",  # v7
        "b",  # v8
        "c",  # v9
        "d",  # v10
        "d",  # v11
        "d",  # v12
    ]

    def e(i: int, j: int) -> Tuple[int, int]:
        return (i - 1, j - 1)

    edges = [
        # embedding (v1, v5, v4, v10)
        e(1, 5), e(1, 4), e(5, 4), e(5, 10), e(4, 10),
        # embedding (v2, v6, v7, v12)
        e(2, 6), e(2, 7), e(6, 7), e(6, 12), e(7, 12),
        # embeddings (v3, v8, v7, v12) and (v3, v8, v9, v12)
        e(3, 8), e(3, 7), e(8, 7), e(8, 12),
        e(3, 9), e(8, 9), e(9, 12),
        # v11 (the graph-simulation extra of [10])
        e(6, 11), e(7, 11),
    ]
    graph = LabeledGraph(labels, edges, name="figure1")
    query = QueryGraph(
        ["a", "b", "c", "d"],
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)],
        name="team-query",
    )
    return graph, query


def figure2() -> Tuple[LabeledGraph, QueryGraph]:
    """The Example 2 graph and its path query ``a - b - c``.

    Hosts exactly the embeddings traced in the paper: ``(v1, v2, v3)``,
    ``(v7, v8, v9)``, ``(v1, v5, v6)``, ``(v14, v2, v15)``,
    ``(v16, v17, v3)`` and — at level 2 — ``(v1, v8, v13)``.
    """
    labels = [""] * 17
    for v in (1, 7, 14, 16):
        labels[v - 1] = "a"
    for v in (2, 5, 8, 17):
        labels[v - 1] = "b"
    for v in (3, 6, 9, 13, 15):
        labels[v - 1] = "c"

    def e(i: int, j: int) -> Tuple[int, int]:
        return (i - 1, j - 1)

    edges = [
        e(1, 2), e(2, 3),      # (v1, v2, v3)
        e(7, 8), e(8, 9),      # (v7, v8, v9)
        e(1, 5), e(5, 6),      # (v1, v5, v6)
        e(14, 2), e(2, 15),    # (v14, v2, v15)
        e(16, 17), e(17, 3),   # (v16, v17, v3)
        e(1, 8), e(8, 13),     # (v1, v8, v13)
    ]
    graph = LabeledGraph(labels, edges, name="figure2")
    query = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)], name="path-abc")
    return graph, query


def imdb_flavor(
    num_people: int = 600,
    num_series: int = 120,
    seed: int = 7,
) -> Tuple[LabeledGraph, QueryGraph]:
    """A small movie/person affiliation graph plus the Section 7.2 query.

    People carry ``Actor``/``Actress``/``Director`` labels (the 90% skew of
    IMDB); series carry genre-quality labels like ``Drama2``. The query asks
    for an actor, an actress and a director who all appear in the *same two*
    drama series — the team-like pattern of the paper's Prison Break / Lost
    case study.
    """
    rng = random.Random(seed)
    person_labels = ["Actor", "Actress", "Director"]
    genre_labels = [f"{g}{r}" for g in ("Drama", "Crime", "Adventure") for r in (1, 2, 3)]
    labels: List[str] = []
    for _ in range(num_people):
        labels.append(person_labels[rng.randrange(3)])
    for _ in range(num_series):
        labels.append(genre_labels[rng.randrange(len(genre_labels))])

    edges = set()
    for person in range(num_people):
        appearances = 1 + min(rng.randrange(6), rng.randrange(6))
        for _ in range(appearances):
            series = num_people + rng.randrange(num_series)
            edges.add((person, series))
    # Seed guaranteed matches: small casts sharing two Drama2 series.
    drama2 = [v for v in range(num_people, num_people + num_series) if labels[v] == "Drama2"]
    for i in range(0, max(0, len(drama2) - 1), 2):
        s1, s2 = drama2[i], drama2[i + 1]
        cast = rng.sample(range(num_people), 6)
        for person in cast:
            edges.add((person, s1))
            edges.add((person, s2))

    graph = LabeledGraph(labels, sorted(edges), name="imdb-flavor")
    query = QueryGraph(
        ["Actor", "Actress", "Director", "Drama2", "Drama2"],
        [(0, 3), (1, 3), (2, 3), (0, 4), (1, 4), (2, 4)],
        name="two-series-team",
    )
    return graph, query


def dbpedia_flavor(
    num_people: int = 800,
    seed: int = 11,
) -> Tuple[LabeledGraph, QueryGraph]:
    """An occupation-labeled person graph plus the Appendix B.1 query.

    Occupations skew toward ``Other`` as in the paper's 196-label extraction;
    the query asks for a politician connected to a scientist and a physicist
    who are also connected to each other.
    """
    rng = random.Random(seed)
    occupations = ["Politician", "Scientist", "Physicist", "Engineer", "Writer"]
    labels = [
        occupations[rng.randrange(len(occupations))] if rng.random() < 0.45 else "Other"
        for _ in range(num_people)
    ]
    edges = set()
    target_edges = num_people * 4
    while len(edges) < target_edges:
        u = rng.randrange(num_people)
        v = rng.randrange(num_people)
        if u != v:
            edges.add((u, v) if u < v else (v, u))
    # Seed triangles matching the query so results exist at every seed.
    politicians = [v for v in range(num_people) if labels[v] == "Politician"]
    scientists = [v for v in range(num_people) if labels[v] == "Scientist"]
    physicists = [v for v in range(num_people) if labels[v] == "Physicist"]
    for p, s, ph in zip(politicians[:80], scientists[:80], physicists[:80]):
        edges.add((min(p, s), max(p, s)))
        edges.add((min(p, ph), max(p, ph)))
        edges.add((min(s, ph), max(s, ph)))

    graph = LabeledGraph(labels, sorted(edges), name="dbpedia-flavor")
    query = QueryGraph(
        ["Politician", "Scientist", "Physicist"],
        [(0, 1), (0, 2), (1, 2)],
        name="politician-triangle",
    )
    return graph, query
