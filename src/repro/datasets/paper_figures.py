"""The remaining worked figures of the paper (Figures 3, 4 and 5).

These pin the Section 5 optimization examples:

* :func:`figure3` — the 7-node query and data graph used by Examples 3-5
  (localized search via ``qfList`` father nodes; ``labelRm``/``neighborRm``);
* :func:`figure4` — the conflict-table example (Example 6): a hub vertex
  whose ~1000 same-label neighbors all fail a degree filter, where node
  skipping saves the wasted backtracking;
* :func:`figure5` — the bad-vertex example (Example 7): many near-identical
  mid-layer vertices that fail the same way for every upstream choice.

The graphs are built at a configurable width so tests can keep them small
while benchmarks can reproduce the papers' ~1000-vertex fan-outs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


def figure3() -> Tuple[LabeledGraph, QueryGraph]:
    """Figure 3: the query used by Examples 3-5 and a matching data graph.

    Query nodes (0-indexed: ``uN`` of the paper is ``N - 1``):
    ``u1``:a is the hub adjacent to ``u2``:b, ``u3``:c, ``u4``:d, ``u5``:e;
    ``u5`` is adjacent to ``u6``:f and ``u7``:d — so ``u7`` shares its label
    with ``u4``, giving the Example 4 ``labelRm(u7) = 1``.

    The data graph hosts the Example 3 scenario: ``v1``:a has neighbors
    ``v5``:e, ``v4``:d, ``{v2, v12}``:b, ``{v3, v15}``:c; ``v5`` is adjacent
    to ``v6``:f and ``{v4, v7}``:d.
    """
    query = QueryGraph(
        ["a", "b", "c", "d", "e", "f", "d"],
        [(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (4, 6)],
        name="figure3-query",
    )
    b = GraphBuilder()
    v = {}
    for name, label in [
        ("v1", "a"), ("v2", "b"), ("v3", "c"), ("v4", "d"), ("v5", "e"),
        ("v6", "f"), ("v7", "d"), ("v12", "b"), ("v15", "c"),
    ]:
        v[name] = b.add_vertex(label)
    for x, y in [
        ("v1", "v5"), ("v1", "v4"), ("v1", "v2"), ("v1", "v12"),
        ("v1", "v3"), ("v1", "v15"), ("v5", "v6"), ("v5", "v4"), ("v5", "v7"),
    ]:
        b.add_edge(v[x], v[y])
    return b.build(name="figure3"), query


def figure4(width: int = 40) -> Tuple[LabeledGraph, QueryGraph]:
    """Figure 4: the Example 6 conflict-table scenario.

    Query (0-indexed): hub ``u0``:a adjacent to ``u1``:b, ``u2``:c and
    ``u3``:d; a triangle ``u0``-``u2``-``u3``-``u0``; and a pendant chain
    ``u1``-``u4``:e that keeps ``u1`` off the degree-1 tail of ``qfList``.

    Data: the bad root ``v1``:a fans out to ``width`` b-vertices (each with
    a private e-leaf so it passes the signature filter and can host the
    pendant) and ``width`` c-vertices whose private d-partner is *not*
    adjacent to ``v1`` — so every completion attempt dies at ``u3`` on the
    triangle-closing join. The failure's conflict set is ``{u0, u2}``;
    ``u1`` is not in it, so conflict-directed skipping abandons the b-fan
    after one pass instead of re-scanning the c-fan per b-vertex. The good
    root ``v6`` hosts the single completable match.
    """
    query = QueryGraph(
        ["a", "b", "c", "d", "e"],
        [(0, 1), (0, 2), (0, 3), (2, 3), (1, 4)],
        name="figure4-query",
    )
    b = GraphBuilder()
    v1 = b.add_vertex("a")
    # NS-fodder so v1 passes the root's signature filter ({b, c, d}): a
    # dangling d that itself fails u3's filters (no c neighbor).
    dangling_d = b.add_vertex("d")
    b.add_edge(v1, dangling_d)
    for _ in range(width):  # the b-fan; each b needs an e-neighbor for NS
        w = b.add_vertex("b")
        b.add_edge(v1, w)
        leaf = b.add_vertex("e")
        b.add_edge(w, leaf)
    a_decoy = b.add_vertex("a")  # NS-fodder for the dead d's; never a root
    for _ in range(width):  # the c-fan with non-closing d partners
        c = b.add_vertex("c")
        d = b.add_vertex("d")
        b.add_edge(v1, c)
        b.add_edge(c, d)
        b.add_edge(d, a_decoy)
    # The good region: one completable embedding rooted at v6.
    v6 = b.add_vertex("a")
    gb = b.add_vertex("b")
    ge = b.add_vertex("e")
    gc = b.add_vertex("c")
    gd = b.add_vertex("d")
    b.add_edges([(v6, gb), (gb, ge), (v6, gc), (v6, gd), (gc, gd)])
    return b.build(name="figure4"), query


def figure5(width: int = 30, teasers: int = 15) -> Tuple[LabeledGraph, QueryGraph]:
    """Figure 5: the Example 7 bad-vertex scenario.

    Query: triangle ``u0``:a - ``u1``:b - ``u2``:c plus ``u2``-``u3``:d,
    ``u3``-``u0`` (closing a second triangle) and the pendant ``u1``-``u4``:e.

    Data around the bad root ``v1``:a:

    * a b-fan and a c-fan, completely bi-connected so the b-c triangle
      always closes;
    * ``teasers`` d-vertices adjacent to ``v1`` (and to an isolated c for
      the signature filter) but never to any fan c — so matching ``u3``
      scans all of them and fails on the ``u2`` join *for every (b, c)
      combination*;
    * the failure's conflict set is ``{u0, u2}`` — the b-node ``u1`` *is*
      in the exhausted-``u2`` conflict (query edge b-c), so conflict
      skipping cannot cut the b-fan; only bad-vertex marks (each fan c is
      marked bad once) collapse the quadratic re-scan.

    The good root ``v6`` hosts the single completable embedding.
    """
    query = QueryGraph(
        ["a", "b", "c", "d", "e"],
        [(0, 1), (0, 2), (1, 2), (2, 3), (0, 3), (1, 4)],
        name="figure5-query",
    )
    b = GraphBuilder()
    v1 = b.add_vertex("a")
    bs: List[int] = []
    for _ in range(width):
        w = b.add_vertex("b")
        b.add_edge(v1, w)
        leaf = b.add_vertex("e")
        b.add_edge(w, leaf)
        bs.append(w)
    cs: List[int] = []
    for _ in range(width):
        c = b.add_vertex("c")
        b.add_edge(v1, c)
        cs.append(c)
    for w in bs:
        for c in cs:
            b.add_edge(w, c)
    # Fan c's need a d neighbor for the signature filter; their private d
    # hangs off a decoy a-vertex so the u3-u0 join can never close.
    a_decoy = b.add_vertex("a")
    for c in cs:
        d = b.add_vertex("d")
        b.add_edge(c, d)
        b.add_edge(d, a_decoy)
    # Teaser d's: valid u3 candidates local to v1 that fail the u2 join.
    c_iso = b.add_vertex("c")
    for _ in range(teasers):
        d = b.add_vertex("d")
        b.add_edge(v1, d)
        b.add_edge(d, c_iso)
    # The good region: v6 completes both triangles.
    v6 = b.add_vertex("a")
    gb = b.add_vertex("b")
    ge = b.add_vertex("e")
    gc = b.add_vertex("c")
    gd = b.add_vertex("d")
    b.add_edges(
        [(v6, gb), (gb, ge), (v6, gc), (gb, gc), (gc, gd), (v6, gd)]
    )
    return b.build(name="figure5"), query
