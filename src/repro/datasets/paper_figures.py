"""The remaining worked figures of the paper (Figures 3, 4 and 5).

These pin the Section 5 optimization examples:

* :func:`figure3` — the 7-node query and data graph used by Examples 3-5
  (localized search via ``qfList`` father nodes; ``labelRm``/``neighborRm``);
* :func:`figure4` — the conflict-table example (Example 6): a hub vertex
  whose ~1000 same-label neighbors all fail a degree filter, where node
  skipping saves the wasted backtracking;
* :func:`figure5` — the bad-vertex example (Example 7): many near-identical
  mid-layer vertices that fail the same way for every upstream choice.

The graphs are built at a configurable width so tests can keep them small
while benchmarks can reproduce the papers' ~1000-vertex fan-outs.

This module also hosts the **objective scenario packs**
(:data:`OBJECTIVE_PACKS`): small adversarial graph+query pairs on which a
non-default objective (docs/objectives.md) provably selects a *different*
answer than the paper's vertex objective — the fixtures behind the
objective divergence tests and ``benchmarks/bench_objectives.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


def figure3() -> Tuple[LabeledGraph, QueryGraph]:
    """Figure 3: the query used by Examples 3-5 and a matching data graph.

    Query nodes (0-indexed: ``uN`` of the paper is ``N - 1``):
    ``u1``:a is the hub adjacent to ``u2``:b, ``u3``:c, ``u4``:d, ``u5``:e;
    ``u5`` is adjacent to ``u6``:f and ``u7``:d — so ``u7`` shares its label
    with ``u4``, giving the Example 4 ``labelRm(u7) = 1``.

    The data graph hosts the Example 3 scenario: ``v1``:a has neighbors
    ``v5``:e, ``v4``:d, ``{v2, v12}``:b, ``{v3, v15}``:c; ``v5`` is adjacent
    to ``v6``:f and ``{v4, v7}``:d.
    """
    query = QueryGraph(
        ["a", "b", "c", "d", "e", "f", "d"],
        [(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (4, 6)],
        name="figure3-query",
    )
    b = GraphBuilder()
    v = {}
    for name, label in [
        ("v1", "a"), ("v2", "b"), ("v3", "c"), ("v4", "d"), ("v5", "e"),
        ("v6", "f"), ("v7", "d"), ("v12", "b"), ("v15", "c"),
    ]:
        v[name] = b.add_vertex(label)
    for x, y in [
        ("v1", "v5"), ("v1", "v4"), ("v1", "v2"), ("v1", "v12"),
        ("v1", "v3"), ("v1", "v15"), ("v5", "v6"), ("v5", "v4"), ("v5", "v7"),
    ]:
        b.add_edge(v[x], v[y])
    return b.build(name="figure3"), query


def figure4(width: int = 40) -> Tuple[LabeledGraph, QueryGraph]:
    """Figure 4: the Example 6 conflict-table scenario.

    Query (0-indexed): hub ``u0``:a adjacent to ``u1``:b, ``u2``:c and
    ``u3``:d; a triangle ``u0``-``u2``-``u3``-``u0``; and a pendant chain
    ``u1``-``u4``:e that keeps ``u1`` off the degree-1 tail of ``qfList``.

    Data: the bad root ``v1``:a fans out to ``width`` b-vertices (each with
    a private e-leaf so it passes the signature filter and can host the
    pendant) and ``width`` c-vertices whose private d-partner is *not*
    adjacent to ``v1`` — so every completion attempt dies at ``u3`` on the
    triangle-closing join. The failure's conflict set is ``{u0, u2}``;
    ``u1`` is not in it, so conflict-directed skipping abandons the b-fan
    after one pass instead of re-scanning the c-fan per b-vertex. The good
    root ``v6`` hosts the single completable match.
    """
    query = QueryGraph(
        ["a", "b", "c", "d", "e"],
        [(0, 1), (0, 2), (0, 3), (2, 3), (1, 4)],
        name="figure4-query",
    )
    b = GraphBuilder()
    v1 = b.add_vertex("a")
    # NS-fodder so v1 passes the root's signature filter ({b, c, d}): a
    # dangling d that itself fails u3's filters (no c neighbor).
    dangling_d = b.add_vertex("d")
    b.add_edge(v1, dangling_d)
    for _ in range(width):  # the b-fan; each b needs an e-neighbor for NS
        w = b.add_vertex("b")
        b.add_edge(v1, w)
        leaf = b.add_vertex("e")
        b.add_edge(w, leaf)
    a_decoy = b.add_vertex("a")  # NS-fodder for the dead d's; never a root
    for _ in range(width):  # the c-fan with non-closing d partners
        c = b.add_vertex("c")
        d = b.add_vertex("d")
        b.add_edge(v1, c)
        b.add_edge(c, d)
        b.add_edge(d, a_decoy)
    # The good region: one completable embedding rooted at v6.
    v6 = b.add_vertex("a")
    gb = b.add_vertex("b")
    ge = b.add_vertex("e")
    gc = b.add_vertex("c")
    gd = b.add_vertex("d")
    b.add_edges([(v6, gb), (gb, ge), (v6, gc), (v6, gd), (gc, gd)])
    return b.build(name="figure4"), query


def figure5(width: int = 30, teasers: int = 15) -> Tuple[LabeledGraph, QueryGraph]:
    """Figure 5: the Example 7 bad-vertex scenario.

    Query: triangle ``u0``:a - ``u1``:b - ``u2``:c plus ``u2``-``u3``:d,
    ``u3``-``u0`` (closing a second triangle) and the pendant ``u1``-``u4``:e.

    Data around the bad root ``v1``:a:

    * a b-fan and a c-fan, completely bi-connected so the b-c triangle
      always closes;
    * ``teasers`` d-vertices adjacent to ``v1`` (and to an isolated c for
      the signature filter) but never to any fan c — so matching ``u3``
      scans all of them and fails on the ``u2`` join *for every (b, c)
      combination*;
    * the failure's conflict set is ``{u0, u2}`` — the b-node ``u1`` *is*
      in the exhausted-``u2`` conflict (query edge b-c), so conflict
      skipping cannot cut the b-fan; only bad-vertex marks (each fan c is
      marked bad once) collapse the quadratic re-scan.

    The good root ``v6`` hosts the single completable embedding.
    """
    query = QueryGraph(
        ["a", "b", "c", "d", "e"],
        [(0, 1), (0, 2), (1, 2), (2, 3), (0, 3), (1, 4)],
        name="figure5-query",
    )
    b = GraphBuilder()
    v1 = b.add_vertex("a")
    bs: List[int] = []
    for _ in range(width):
        w = b.add_vertex("b")
        b.add_edge(v1, w)
        leaf = b.add_vertex("e")
        b.add_edge(w, leaf)
        bs.append(w)
    cs: List[int] = []
    for _ in range(width):
        c = b.add_vertex("c")
        b.add_edge(v1, c)
        cs.append(c)
    for w in bs:
        for c in cs:
            b.add_edge(w, c)
    # Fan c's need a d neighbor for the signature filter; their private d
    # hangs off a decoy a-vertex so the u3-u0 join can never close.
    a_decoy = b.add_vertex("a")
    for c in cs:
        d = b.add_vertex("d")
        b.add_edge(c, d)
        b.add_edge(d, a_decoy)
    # Teaser d's: valid u3 candidates local to v1 that fail the u2 join.
    c_iso = b.add_vertex("c")
    for _ in range(teasers):
        d = b.add_vertex("d")
        b.add_edge(v1, d)
        b.add_edge(d, c_iso)
    # The good region: v6 completes both triangles.
    v6 = b.add_vertex("a")
    gb = b.add_vertex("b")
    ge = b.add_vertex("e")
    gc = b.add_vertex("c")
    gd = b.add_vertex("d")
    b.add_edges(
        [(v6, gb), (gb, ge), (v6, gc), (gb, gc), (gc, gd), (v6, gd)]
    )
    return b.build(name="figure5"), query


# ----------------------------------------------------------------------
# Objective scenario packs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectivePack:
    """An adversarial fixture where one objective diverges from ``vertex``.

    Running DSQL on ``(graph, query, k)`` under ``objective`` (with
    ``vertex_weights`` when set) selects a provably different embedding set
    than the default vertex run — see each pack constructor's docstring for
    the mechanism. The packs are deliberately tiny and fully deterministic;
    the divergence they encode is pinned by
    ``tests/coverage/test_objectives.py``.
    """

    name: str
    objective: str
    graph: LabeledGraph
    query: QueryGraph
    k: int
    vertex_weights: Optional[Tuple[Tuple[int, float], ...]] = None


def edge_pack() -> ObjectivePack:
    """The two-spine "book": edge diversity keeps what vertex diversity swaps.

    Query: triangle ``a-b-c``. Data: spine ``a1-b1`` with eight pages
    (each page closes a triangle with the spine), plus a second spine
    ``a2-b2`` attached to one *shared* page — the page Phase 1's first
    embedding lands on under the default retention seed (Section 5.2 caps
    the page candidates randomly with ``seed = 0``; the attachment point is
    tuned to coincide, which is what makes this pack adversarial rather
    than generic).

    With ``k = 7``, Phase 1 collects the first spine-1 triangle at level 0,
    the spine-2 triangle at level 1 (it overlaps ``V(T)`` only at the shared
    page) and five more spine-1 triangles at level 2 — 10 distinct vertices,
    vertex ratio ``10/21 < 0.5``, so the **vertex** run enters Phase 2 and
    swaps: the first triangle has vertex loss 0 (``a1``/``b1`` live in every
    other spine-1 triangle, the shared page in the spine-2 one), so a spare
    page's triangle is accepted with benefit 1 against ``(1 + alpha) * 0``.
    The **edge** run covers 16 of ``k * |E(Q)| = 21`` data edges after
    Phase 1 — ratio above the 0.5 dispatch target — so it keeps the Phase-1
    answer with the loss-0 sharing structure intact: the two runs return
    different embedding sets, the vertex one strictly better in distinct
    vertices (11 vs 10), the edge one no worse in distinct edges (16 each).
    """
    query = QueryGraph(["a", "b", "c"], [(0, 1), (0, 2), (1, 2)], name="edge-pack-query")
    b = GraphBuilder()
    a1 = b.add_vertex("a")
    b1 = b.add_vertex("b")
    a2 = b.add_vertex("a")
    b2 = b.add_vertex("b")
    b.add_edge(a1, b1)
    b.add_edge(a2, b2)
    pages = [b.add_vertex("c") for _ in range(8)]
    for page in pages:
        b.add_edge(a1, page)
        b.add_edge(b1, page)
    # The second spine closes its triangle through the shared page (index
    # 4 = the first page retained by the seed-0 candidate cap).
    b.add_edge(a2, pages[4])
    b.add_edge(b2, pages[4])
    return ObjectivePack(
        name="edge-pack",
        objective="edge",
        graph=b.build(name="edge-pack"),
        query=query,
        k=7,
    )


def weighted_pack() -> ObjectivePack:
    """The heavy-vertex pair: weight mass overrules the disjoint certificate.

    Query: single edge ``a-b``. Data: two disjoint matches ``a1-b1`` and
    ``a2-b2`` plus ``a3-b4`` where ``b4`` carries explicit weight 100.

    With ``k = 2``, Phase 1 fills ``T`` with the two disjoint matches at
    level 0, and the **vertex** run stops right there: ``k`` pairwise
    disjoint embeddings are provably optimal (ratio 1). The
    **weighted-vertex** run forfeits that certificate — disjointness bounds
    *counts*, not weight mass — so it proceeds to Phase 2, where
    ``(a3, b4)`` arrives with benefit 101 against a minimum loss of 2 and is
    swapped in: the runs return different answers, and the weighted one has
    weighted coverage 103 against the vertex answer's 4.
    """
    query = QueryGraph(["a", "b"], [(0, 1)], name="weighted-pack-query")
    b = GraphBuilder()
    a1 = b.add_vertex("a")
    b1 = b.add_vertex("b")
    a2 = b.add_vertex("a")
    b2 = b.add_vertex("b")
    a3 = b.add_vertex("a")
    heavy = b.add_vertex("b")
    b.add_edges([(a1, b1), (a2, b2), (a3, heavy)])
    return ObjectivePack(
        name="weighted-pack",
        objective="weighted-vertex",
        graph=b.build(name="weighted-pack"),
        query=query,
        k=2,
        vertex_weights=((heavy, 100.0),),
    )


OBJECTIVE_PACKS: Dict[str, "ObjectivePack"] = {}
"""Objective name -> built pack; populated lazily by :func:`objective_packs`."""


def objective_packs() -> Dict[str, ObjectivePack]:
    """Build (and memoize) every objective scenario pack, keyed by objective."""
    if not OBJECTIVE_PACKS:
        for pack in (edge_pack(), weighted_pack()):
            OBJECTIVE_PACKS[pack.objective] = pack
    return OBJECTIVE_PACKS
