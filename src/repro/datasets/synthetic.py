"""Synthetic graph topologies standing in for the paper's real datasets.

The paper's datasets (Table 1) are protein networks, lexical networks, and
social/citation/collaboration networks. What drives DSQL's behaviour on them
is density (average degree), degree skew, and the label distribution — so
the stand-ins match those statistics:

* :func:`configuration_graph` — stub-pairing configuration model over an
  arbitrary expected degree sequence (the shared workhorse);
* :func:`power_law_graph` — heavy-tailed degrees for the social graphs
  (Epinion, DBLP, Youtube, Dbpedia, USpatent, Wordnet);
* :func:`lognormal_graph` — mild skew for the biological graphs
  (Yeast, Human);
* :func:`bipartite_affiliation_graph` — two-mode person/work topology for
  IMDB (people attach to movies/series; no person-person edges), which is
  what gives IMDB its low 3.34 average degree at 4.5M vertices.

All generators take a seed and return plain edge lists so labeling composes
independently (see :mod:`repro.datasets.labels`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError

Edge = Tuple[int, int]


def configuration_graph(
    degrees: Sequence[int],
    seed: Optional[int] = None,
) -> List[Edge]:
    """Simple graph from a degree sequence by stub pairing.

    Stubs are shuffled and paired; self-loops and duplicate edges are
    dropped, so realized degrees sit slightly below the request — an
    accepted property of the model, and irrelevant at our tolerances (the
    registry checks average degree within ~10%).
    """
    stubs: List[int] = []
    for v, d in enumerate(degrees):
        if d < 0:
            raise DatasetError(f"negative degree {d} for vertex {v}")
        stubs.extend([v] * d)
    rng = random.Random(seed)
    rng.shuffle(stubs)
    edges: set[Edge] = set()
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            edges.add((u, v) if u < v else (v, u))
    return sorted(edges)


def _scaled_integer_degrees(weights: np.ndarray, avg_degree: float) -> List[int]:
    """Scale positive weights to integers averaging ``avg_degree``.

    Stochastic rounding keeps the mean unbiased; every vertex gets degree
    >= 1 so the graph has no isolated vertices (matching the connected
    cores of the real datasets).
    """
    weights = np.asarray(weights, dtype=float)
    weights = weights * (avg_degree * len(weights) / weights.sum())
    floors = np.floor(weights)
    frac = weights - floors
    rng = np.random.default_rng(12345)
    bumps = rng.random(len(weights)) < frac
    degrees = (floors + bumps).astype(int)
    degrees[degrees < 1] = 1
    return degrees.tolist()


def power_law_graph(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.5,
    seed: Optional[int] = None,
) -> List[Edge]:
    """Heavy-tailed configuration graph (Pareto weights, tail ``exponent``)."""
    if num_vertices < 2:
        raise DatasetError(f"need >= 2 vertices, got {num_vertices}")
    if avg_degree <= 0:
        raise DatasetError(f"avg_degree must be positive, got {avg_degree}")
    if exponent <= 1:
        raise DatasetError(f"power-law exponent must be > 1, got {exponent}")
    rng = np.random.default_rng(seed)
    weights = (1.0 - rng.random(num_vertices)) ** (-1.0 / (exponent - 1.0))
    # Cap the tail so a single hub cannot demand more stubs than the graph has.
    weights = np.minimum(weights, np.sqrt(num_vertices * avg_degree))
    degrees = _scaled_integer_degrees(weights, avg_degree)
    return configuration_graph(degrees, seed=seed)


def lognormal_graph(
    num_vertices: int,
    avg_degree: float,
    sigma: float = 0.6,
    seed: Optional[int] = None,
) -> List[Edge]:
    """Mildly skewed configuration graph (lognormal weights)."""
    if num_vertices < 2:
        raise DatasetError(f"need >= 2 vertices, got {num_vertices}")
    if avg_degree <= 0:
        raise DatasetError(f"avg_degree must be positive, got {avg_degree}")
    rng = np.random.default_rng(seed)
    weights = rng.lognormal(mean=0.0, sigma=sigma, size=num_vertices)
    degrees = _scaled_integer_degrees(weights, avg_degree)
    return configuration_graph(degrees, seed=seed)


def bipartite_affiliation_graph(
    num_people: int,
    num_works: int,
    avg_degree: float,
    seed: Optional[int] = None,
) -> Tuple[int, List[Edge]]:
    """Two-mode topology: people ``0..num_people-1`` attach to works.

    Returns ``(num_vertices, edges)`` with works numbered after people.
    Credit counts per person follow a discrete power law (Zipf, exponent
    ~2.5): real affiliation graphs are dominated by one-credit careers with
    a thin prolific tail, and that one-credit mass is what gives popular
    works their large interchangeable casts — the structural redundancy the
    BoostIso-style twin compression collapses. Popular works attract
    proportionally more people (preferential attachment by work weight).
    """
    if num_people < 1 or num_works < 1:
        raise DatasetError("need at least one person and one work")
    total = num_people + num_works
    target_edges = int(avg_degree * total / 2)
    rng = np.random.default_rng(seed)
    work_weights = (1.0 - rng.random(num_works)) ** (-1.0 / 1.5)
    work_weights /= work_weights.sum()
    # Zipf(2.5) has mean ~1.95, matching the ~1.9 credits/person the IMDB
    # statistics imply (|E| / 0.9|V|); capped so one career cannot span a
    # material fraction of all works.
    credits = np.minimum(rng.zipf(2.5, size=num_people), max(2, num_works // 2))
    stubs = np.repeat(np.arange(num_people), credits)
    rng.shuffle(stubs)
    works = rng.choice(num_works, size=len(stubs), p=work_weights)
    edges: set[Edge] = set()
    for p, w in zip(stubs, works):
        edges.add((int(p), num_people + int(w)))
        if len(edges) >= target_edges:
            break
    while len(edges) < target_edges:  # top up duplicate-collision losses
        p = int(rng.integers(0, num_people))
        w = int(rng.choice(num_works, p=work_weights))
        edges.add((p, num_people + w))
    return total, sorted(edges)


def erdos_renyi_graph(
    num_vertices: int,
    avg_degree: float,
    seed: Optional[int] = None,
) -> List[Edge]:
    """G(n, m) uniform random graph with ``m = avg_degree * n / 2`` edges."""
    if num_vertices < 2:
        raise DatasetError(f"need >= 2 vertices, got {num_vertices}")
    target_edges = int(avg_degree * num_vertices / 2)
    max_edges = num_vertices * (num_vertices - 1) // 2
    if target_edges > max_edges:
        raise DatasetError(
            f"requested {target_edges} edges exceeds the simple-graph maximum {max_edges}"
        )
    rng = random.Random(seed)
    edges: set[Edge] = set()
    while len(edges) < target_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            edges.add((u, v) if u < v else (v, u))
    return sorted(edges)
