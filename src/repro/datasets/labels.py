"""Vertex-label assignment schemes.

The paper labels four of its datasets synthetically ("we have assigned a
label for each vertex from a synthetic label set of sizes 100, 50, 50, and
100, respectively, with a uniform random distribution") and notes IMDB's
real labels are highly skewed (90% of vertices under 3 labels). Both schemes
are reproduced here, plus a Zipf scheme for moderately skewed catalogs like
USpatent's 388 patent classes.

Labels are strings ``"L0" .. "L{m-1}"`` by default so they cannot collide
with integer vertex ids in logs and fixtures.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError


def label_names(num_labels: int, prefix: str = "L") -> List[str]:
    """The canonical label alphabet ``[L0, L1, ...]``."""
    if num_labels < 1:
        raise DatasetError(f"need at least one label, got {num_labels}")
    return [f"{prefix}{i}" for i in range(num_labels)]


def uniform_labels(
    num_vertices: int,
    num_labels: int,
    seed: Optional[int] = None,
    prefix: str = "L",
) -> List[str]:
    """Uniform random labels — the paper's synthetic scheme."""
    rng = random.Random(seed)
    names = label_names(num_labels, prefix)
    return [names[rng.randrange(num_labels)] for _ in range(num_vertices)]


def zipf_labels(
    num_vertices: int,
    num_labels: int,
    exponent: float = 1.0,
    seed: Optional[int] = None,
    prefix: str = "L",
) -> List[str]:
    """Zipf-distributed labels: label ``i`` has weight ``(i+1)^-exponent``."""
    if exponent < 0:
        raise DatasetError(f"zipf exponent must be >= 0, got {exponent}")
    rng = np.random.default_rng(seed)
    weights = np.arange(1, num_labels + 1, dtype=float) ** (-exponent)
    weights /= weights.sum()
    names = label_names(num_labels, prefix)
    draws = rng.choice(num_labels, size=num_vertices, p=weights)
    return [names[i] for i in draws]


def skewed_labels(
    num_vertices: int,
    num_labels: int,
    top_fraction: float = 0.9,
    top_count: int = 3,
    seed: Optional[int] = None,
    prefix: str = "L",
) -> List[str]:
    """IMDB-style skew: ``top_fraction`` of vertices in ``top_count`` labels.

    The remaining mass is spread uniformly over the other labels (IMDB's
    movie-genre/rank labels).
    """
    if not 0.0 < top_fraction < 1.0:
        raise DatasetError(f"top_fraction must be in (0, 1), got {top_fraction}")
    if not 0 < top_count < num_labels:
        raise DatasetError(
            f"top_count must be in (0, num_labels), got {top_count} of {num_labels}"
        )
    rng = np.random.default_rng(seed)
    weights = np.empty(num_labels, dtype=float)
    weights[:top_count] = top_fraction / top_count
    weights[top_count:] = (1.0 - top_fraction) / (num_labels - top_count)
    names = label_names(num_labels, prefix)
    draws = rng.choice(num_labels, size=num_vertices, p=weights)
    return [names[i] for i in draws]


def relabel_to_density(
    num_vertices: int,
    label_density: float,
    seed: Optional[int] = None,
    prefix: str = "L",
) -> List[str]:
    """Uniform labels sized to hit ``|Sigma| / |V| = label_density``.

    This is the knob of the Figure 7 experiment, which sweeps densities
    ``0.05e-3 .. 0.2e-3`` on fixed topologies. At least one label is used.
    """
    if label_density <= 0:
        raise DatasetError(f"label density must be positive, got {label_density}")
    num_labels = max(1, round(label_density * num_vertices))
    return uniform_labels(num_vertices, num_labels, seed=seed, prefix=prefix)
