"""Structured trace layer: span/point events with a JSONL sink.

A *trace event* is one flat JSON object per line (JSONL), so traces can be
grepped, streamed, and loaded with nothing but the stdlib. Two shapes share
one schema (:data:`TRACE_EVENT_SCHEMA`):

``span``
    A timed region — ``phase1``, ``phase2``, ``candidate_build``,
    ``phase1.level`` — carrying ``t_start_ms`` *and* ``duration_ms``.
``point``
    An instant — a memo lookup, a deadline tick — carrying ``t_start_ms``
    with ``duration_ms`` null.

Timestamps are ``time.monotonic()`` milliseconds: they order and measure
events within one process but are **not** wall-clock datetimes (monotonic
clocks have an arbitrary epoch). ``query_id`` is a per-session sequence
number assigned by :class:`~repro.core.dsql.DSQL`; ``level`` is the DSQL
level for level-scoped events and null otherwise. Everything
event-specific (expansion counts, hit flags, deadline margins) rides in the
open ``fields`` object.

The module also wires stdlib :mod:`logging`: the ``repro`` logger gets a
``NullHandler`` at import (library convention — silent unless the host
application configures logging) and :func:`configure_logging` attaches a
formatted stderr handler for CLI use (``--log-level``).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

logging.getLogger("repro").addHandler(logging.NullHandler())

TRACE_EVENT_SCHEMA: Dict[str, Tuple[Tuple[type, ...], bool]] = {
    # field -> (accepted types, required)
    "event": ((str,), True),  # "span" | "point"
    "name": ((str,), True),
    "query_id": ((int, type(None)), True),
    "level": ((int, type(None)), True),
    "t_start_ms": ((int, float), True),
    "duration_ms": ((int, float, type(None)), True),
    "fields": ((dict,), True),
}
"""The documented event schema: every emitted event has exactly these keys.

``validate_event`` enforces it; ``tests/observability/test_tracing.py``
round-trips every event kind the engines emit through it.
"""

EVENT_KINDS = ("span", "point")


def validate_event(event: object) -> Dict[str, object]:
    """Check ``event`` against :data:`TRACE_EVENT_SCHEMA`; return it.

    Raises ``ValueError`` describing the first violation: a missing key, an
    unknown key, a type mismatch, or an invalid ``event`` kind.
    """
    if not isinstance(event, dict):
        raise ValueError(f"trace event must be a dict, got {type(event).__name__}")
    for key, (types, required) in TRACE_EVENT_SCHEMA.items():
        if key not in event:
            if required:
                raise ValueError(f"trace event missing key {key!r}: {event}")
            continue
        if not isinstance(event[key], types):
            raise ValueError(
                f"trace event key {key!r} has type "
                f"{type(event[key]).__name__}, expected one of "
                f"{[t.__name__ for t in types]}"
            )
    unknown = set(event) - set(TRACE_EVENT_SCHEMA)
    if unknown:
        raise ValueError(f"trace event has unknown keys {sorted(unknown)}")
    if event["event"] not in EVENT_KINDS:
        raise ValueError(f"trace event kind {event['event']!r} not in {EVENT_KINDS}")
    if event["event"] == "span" and event["duration_ms"] is None:
        raise ValueError("span event requires a duration_ms")
    return event


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class ListSink:
    """In-memory sink (tests, programmatic inspection)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def write(self, event: Dict[str, object]) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Append one JSON line per event to ``path``.

    The file is opened in append mode (so POSIX positions each write at the
    current end even across fork-inherited descriptors — the ``process``
    strategy's workers share the parent's sink) and writes are line-buffered
    and serialized by a per-process lock.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = open(self.path, "a", buffering=1, encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"), sort_keys=True)
        with self._lock:
            self._file.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a trace file back into event dicts (validating each line)."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(validate_event(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class Tracer:
    """Emit schema-valid span/point events into a sink."""

    def __init__(self, sink) -> None:
        self.sink = sink

    @staticmethod
    def _now_ms() -> float:
        return time.monotonic() * 1000.0

    def _emit(
        self,
        event: str,
        name: str,
        query_id: Optional[int],
        level: Optional[int],
        t_start_ms: float,
        duration_ms: Optional[float],
        fields: Dict[str, object],
    ) -> None:
        self.sink.write(
            {
                "event": event,
                "name": name,
                "query_id": query_id,
                "level": level,
                "t_start_ms": t_start_ms,
                "duration_ms": duration_ms,
                "fields": fields,
            }
        )

    def point(
        self,
        name: str,
        query_id: Optional[int] = None,
        level: Optional[int] = None,
        **fields: object,
    ) -> None:
        """Record an instantaneous event."""
        self._emit("point", name, query_id, level, self._now_ms(), None, fields)

    def emit_span(
        self,
        name: str,
        t_start_ms: float,
        query_id: Optional[int] = None,
        level: Optional[int] = None,
        **fields: object,
    ) -> None:
        """Record a span that started at ``t_start_ms`` and ends now.

        The manual-span form: callers that already bracket a region (the
        per-level loops) grab ``time.monotonic()*1000`` at entry and emit
        once at exit, avoiding a context-manager frame in the loop.
        """
        now = self._now_ms()
        self._emit("span", name, query_id, level, t_start_ms, now - t_start_ms, fields)

    @contextmanager
    def span(
        self,
        name: str,
        query_id: Optional[int] = None,
        level: Optional[int] = None,
        **fields: object,
    ) -> Iterator[Dict[str, object]]:
        """Context-manager span; mutate the yielded dict to add exit fields."""
        start = self._now_ms()
        try:
            yield fields
        finally:
            self._emit(
                "span", name, query_id, level, start, self._now_ms() - start, fields
            )

    def close(self) -> None:
        self.sink.close()


# ----------------------------------------------------------------------
# Logging wiring
# ----------------------------------------------------------------------
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(level: Union[int, str] = "info") -> logging.Logger:
    """Attach a formatted stderr handler to the ``repro`` logger.

    Idempotent: a second call only adjusts the level. Library code never
    calls this — it is the CLI/application entry point behind
    ``--log-level``; without it the package stays silent (``NullHandler``).
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        logger.addHandler(handler)
    for handler in logger.handlers:
        if not isinstance(handler, logging.NullHandler):
            handler.setLevel(level)
    return logger
