"""Profiling hooks: an opt-in callback protocol into the engines.

Benchmarks and tests used to observe engine internals by monkeypatching
(``DEADLINE_CHECK_STRIDE``, ``on_embedding`` closures); the hook protocol
replaces that with supported extension points. Subclass
:class:`ProfilingHooks`, override what you need, and hand the instance to
:class:`~repro.core.dsql.DSQL` via
``Instrumentation(hooks=...)`` — every callback is a no-op by default, and
engines skip hook dispatch entirely when no instrumentation is attached.

Callback frequency (what you may do inside them):

* :meth:`on_level_start` — once per (phase, level); arbitrarily heavy.
* :meth:`on_embedding_emitted` — once per generated embedding; keep it
  light on embedding-dense workloads.
* :meth:`on_swap` — once per Phase-2 swap *decision* (a generated embedding
  with positive benefit), accepted or not.
* :meth:`on_deadline_tick` — once per deadline stride check, i.e. every
  :data:`~repro.core.search.DEADLINE_CHECK_STRIDE` expansions while a
  ``time_budget_ms`` is armed; this is the only hook on (a 1/stride
  fraction of) the hot path, so it must stay cheap.

Hooks observe; they must not mutate engine state. Raising from a hook
aborts the query with the raised exception (no swallowing), which makes
them usable as test tripwires.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ProfilingHooks:
    """No-op base class for engine observation callbacks."""

    def on_level_start(
        self, phase: str, level: int, query_id: Optional[int] = None
    ) -> None:
        """A DSQL level begins. ``phase`` is ``"phase1"`` or ``"phase2"``."""

    def on_embedding_emitted(
        self,
        phase: str,
        level: int,
        embedding: Sequence[int],
        query_id: Optional[int] = None,
    ) -> None:
        """An embedding was generated.

        In Phase 1 this is an *accepted* member of ``T``; in Phase 2 it is a
        swap candidate (accepted or not — pair with :meth:`on_swap`). For
        the plain-SQ :class:`~repro.isomorphism.optimized.
        OptimizedQSearchEngine`, ``phase`` is ``"sq"`` and ``level`` is -1.
        """

    def on_swap(
        self,
        level: int,
        benefit: int,
        loss: float,
        accepted: bool,
        query_id: Optional[int] = None,
    ) -> None:
        """Phase 2 evaluated the SWAPα criterion on a positive-benefit
        candidate: ``accepted`` is ``B(h,T) >= (1+alpha) * L(f,T)``."""

    def on_deadline_tick(
        self,
        nodes_expanded: int,
        remaining_ms: float,
        stride: int,
        query_id: Optional[int] = None,
    ) -> None:
        """A stride deadline check ran; ``remaining_ms`` may be negative
        (the tick that trips the deadline reports its overshoot)."""
