"""Observability: metrics registry, structured tracing, profiling hooks.

The package gives every layer of the reproduction — both search engines,
the :class:`~repro.core.dsql.DSQL` session, the per-graph
:class:`~repro.indexes.graph_cache.GraphIndexCache`, and the parallel
:class:`~repro.parallel.executor.BatchExecutor` — one shared way to report
what a query actually did:

* :class:`MetricsRegistry` — counters/gauges/histograms (zero-dependency);
* :class:`Tracer` — span/point events with a JSONL sink (``--trace-out``);
* :class:`ProfilingHooks` — opt-in callbacks (``on_level_start``,
  ``on_embedding_emitted``, ``on_swap``, ``on_deadline_tick``).

:class:`Instrumentation` bundles the three. Engines take an optional
instance and guard every touch with ``if instr is not None`` — **no
instrumentation code runs on a per-expansion path**, so the disabled
default costs nothing measurable (gated by
``benchmarks/bench_observability_overhead.py``).

A process-wide default (:func:`set_default_instrumentation`) lets entry
points like the CLI instrument every session created anywhere in the
process without threading a parameter through each layer; explicitly
passing ``instrumentation=`` to a constructor always wins. See
``docs/observability.md`` for the metric catalog and trace schema.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Iterator, Optional, Tuple

from repro.observability.hooks import ProfilingHooks
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counters_line,
    merge_snapshots,
    record_search_stats,
)
from repro.observability.tracing import (
    TRACE_EVENT_SCHEMA,
    JsonlSink,
    ListSink,
    Tracer,
    configure_logging,
    read_jsonl,
    validate_event,
)

EXPANSION_BUCKETS: Tuple[float, ...] = (
    8.0,
    32.0,
    128.0,
    512.0,
    2048.0,
    8192.0,
    32768.0,
    131072.0,
    524288.0,
    2097152.0,
)
"""Histogram bounds for per-level expansion counts (powers of 4)."""


class Instrumentation:
    """Bundle of (metrics, tracer, hooks) handed to engines.

    Any part may be omitted: ``metrics`` defaults to a fresh
    :class:`MetricsRegistry`; ``tracer``/``hooks`` default to ``None`` and
    their call sites degrade to no-ops. The helper methods below are the
    engines' entire surface, so the emission policy (which metric a level
    writes, which fields a tick carries) lives here rather than being
    scattered across the hot modules.
    """

    __slots__ = ("metrics", "tracer", "hooks")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        hooks: Optional[ProfilingHooks] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.hooks = hooks

    # -- tracing ------------------------------------------------------
    def span(self, name: str, query_id: Optional[int] = None, **fields):
        """Context-manager span (null context when no tracer is attached)."""
        if self.tracer is None:
            return nullcontext({})
        return self.tracer.span(name, query_id=query_id, **fields)

    def point(self, name: str, query_id: Optional[int] = None, **fields) -> None:
        if self.tracer is not None:
            self.tracer.point(name, query_id=query_id, **fields)

    # -- per-level bracket (both DSQL phases) -------------------------
    def level_start(
        self, phase: str, level: int, query_id: Optional[int] = None
    ) -> float:
        """Fire ``on_level_start``; return the level's start time (ms)."""
        if self.hooks is not None:
            self.hooks.on_level_start(phase, level, query_id)
        return time.monotonic() * 1000.0

    def level_end(
        self,
        phase: str,
        level: int,
        query_id: Optional[int],
        start_ms: float,
        expansions: int,
        added: int,
    ) -> None:
        """Close a level: per-level expansion histogram + a level span."""
        self.metrics.histogram(
            f"{phase}.level_expansions", EXPANSION_BUCKETS
        ).observe(expansions)
        if self.tracer is not None:
            self.tracer.emit_span(
                f"{phase}.level",
                start_ms,
                query_id=query_id,
                level=level,
                expansions=expansions,
                added=added,
            )

    # -- embedding / swap events --------------------------------------
    def embedding_emitted(
        self, phase: str, level: int, embedding, query_id: Optional[int] = None
    ) -> None:
        if self.hooks is not None:
            self.hooks.on_embedding_emitted(phase, level, embedding, query_id)

    def swap_decision(
        self,
        level: int,
        benefit: int,
        loss: float,
        accepted: bool,
        query_id: Optional[int] = None,
    ) -> None:
        if self.hooks is not None:
            self.hooks.on_swap(level, benefit, loss, accepted, query_id)
        if not accepted:
            # Accepts flush from SearchStats.phase2_swaps at query end.
            self.metrics.counter("phase2.swap_reject").inc()

    # -- deadline ------------------------------------------------------
    def deadline_tick(
        self,
        nodes_expanded: int,
        remaining_ms: float,
        stride: int,
        query_id: Optional[int] = None,
    ) -> None:
        """One stride deadline check (both engines call this)."""
        if self.hooks is not None:
            self.hooks.on_deadline_tick(nodes_expanded, remaining_ms, stride, query_id)
        self.metrics.counter("deadline.ticks").inc()
        self.metrics.gauge("deadline.check_stride").set(stride)

    def deadline_margin(self, remaining_ms: float, query_id: Optional[int] = None) -> None:
        """Record how much of ``time_budget_ms`` a finished query left over."""
        self.metrics.histogram("deadline.margin_ms").observe(max(remaining_ms, 0.0))
        self.point("deadline.margin", query_id=query_id, remaining_ms=remaining_ms)

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()


_default_instrumentation: Optional[Instrumentation] = None


def set_default_instrumentation(instr: Optional[Instrumentation]) -> None:
    """Install (or clear, with ``None``) the process-wide default.

    Sessions constructed *after* the call pick it up; existing sessions keep
    whatever they were built with.
    """
    global _default_instrumentation
    _default_instrumentation = instr


def get_default_instrumentation() -> Optional[Instrumentation]:
    """The process-wide default instrumentation, or ``None``."""
    return _default_instrumentation


@contextmanager
def default_instrumentation(instr: Instrumentation) -> Iterator[Instrumentation]:
    """Scoped form of :func:`set_default_instrumentation` (tests, scripts)."""
    previous = get_default_instrumentation()
    set_default_instrumentation(instr)
    try:
        yield instr
    finally:
        set_default_instrumentation(previous)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "JsonlSink",
    "ListSink",
    "ProfilingHooks",
    "Instrumentation",
    "TRACE_EVENT_SCHEMA",
    "DEFAULT_BUCKETS",
    "EXPANSION_BUCKETS",
    "validate_event",
    "read_jsonl",
    "configure_logging",
    "record_search_stats",
    "counters_line",
    "merge_snapshots",
    "set_default_instrumentation",
    "get_default_instrumentation",
    "default_instrumentation",
]
