"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the quantitative half of :mod:`repro.observability` — every
number the engines can report about *why* a query cost what it cost flows
through here: expansions per level (the quantity the paper's Section 5
optimizations exist to shrink), prunes per strategy, swap accept/reject
counts, cache hits, deadline margins. The qualitative half (ordering and
timing of events) is :mod:`repro.observability.tracing`.

Design constraints, in order:

1. **Cheap when absent.** Engines only touch a registry through an
   ``Instrumentation`` object that defaults to ``None``; none of the types
   here appear on a per-expansion path.
2. **Thread-safe.** The ``thread`` strategy of
   :class:`~repro.parallel.executor.BatchExecutor` has several workers
   flushing into one registry; every instrument serializes its updates with
   a lock (uncontended acquisition is tens of nanoseconds, and updates
   happen per-level / per-query, not per-expansion).
3. **Stdlib only.** No prometheus-client, no numpy; a registry snapshot is
   a plain dict that ``json.dumps`` accepts directly.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    2000.0,
    5000.0,
    10000.0,
)
"""Default histogram upper bounds — a 1/2/5 decade ladder.

Works for both millisecond latencies and small count distributions; callers
with a known range (e.g. per-level expansion counts) pass their own
boundaries at first use.
"""


class Counter:
    """A monotonically increasing count (resettable between runs)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Number:
        return self._value


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Number:
        return self._value


class Histogram:
    """Fixed-boundary histogram with cumulative-friendly bucket semantics.

    ``buckets`` are *upper bounds* (inclusive, Prometheus ``le`` semantics):
    an observation lands in the first bucket whose bound is >= the value; a
    value above every bound lands in the implicit overflow bucket. Bounds
    must be strictly increasing.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, buckets: Sequence[Number] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name}: at least one bucket bound required")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow (> last bound)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        """Record one observation."""
        idx = self._bucket_index(value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def _bucket_index(self, value: Number) -> int:
        # Linear scan: bucket lists are short (dozens at most) and this is
        # never on a per-expansion path; bisect would obscure the le rule.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts, overflow bucket last."""
        with self._lock:
            return list(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class MetricsRegistry:
    """Create-on-first-use instrument registry.

    Instruments are identified by name; asking for the same name twice
    returns the same object, so call sites never coordinate registration.
    A name is bound to one instrument kind for the registry's lifetime —
    asking for ``counter("x")`` after ``gauge("x")`` raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, factory) -> object:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[Number] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument, keeping identities (between queries/runs)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    def snapshot(self) -> Dict[str, object]:
        """Name -> value (counters/gauges) or bucket dict (histograms).

        The result is JSON-serializable as-is; names are sorted so repeated
        snapshots diff cleanly.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def counters_snapshot(self) -> Dict[str, Number]:
        """Non-zero :class:`Counter` values only, by name.

        The cross-process merge format: a process-strategy worker ships this
        back with its results and the parent replays it with
        :meth:`merge_counters`. Gauges and histograms are excluded on
        purpose — summing a gauge across processes is meaningless, and the
        counter subset is what keeps ``search.*`` / ``kernel.dispatch.*``
        truthful under the process strategy.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        return {
            name: instrument.value
            for name, instrument in items
            if isinstance(instrument, Counter) and instrument.value
        }

    def merge_counters(self, counters: Optional[Dict[str, Number]]) -> None:
        """Add a :meth:`counters_snapshot` from another process into this registry."""
        if not counters:
            return
        for name, value in counters.items():
            self.counter(name).inc(value)


# ----------------------------------------------------------------------
# SearchStats -> registry flush
# ----------------------------------------------------------------------

_STATS_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("nodes_expanded", "search.nodes_expanded"),
    ("embeddings_found", "search.embeddings_found"),
    ("conflict_skips", "prune.conflict_skip"),
    ("bad_vertex_skips", "prune.bad_vertex_skip"),
    ("bad_vertices_marked", "prune.bad_vertex_marked"),
    ("candidate_cap_hits", "prune.candidate_cap"),
    ("embeddings_generated_phase2", "phase2.generated"),
    ("phase2_swaps", "phase2.swap_accept"),
    ("kernel_scan", "kernel.dispatch.scan"),
    ("kernel_merge", "kernel.dispatch.merge"),
    ("kernel_bitset", "kernel.dispatch.bitset"),
    ("kernel_scalar", "kernel.dispatch.scalar"),
    ("kernel_cbitset", "kernel.dispatch.cbitset"),
    ("kernel_cbitset", "compression.class_frames"),
)
"""``SearchStats`` field -> metric name (see docs/observability.md)."""


def record_search_stats(registry: MetricsRegistry, stats) -> None:
    """Flush one query's :class:`~repro.core.state.SearchStats` counters.

    Called once per completed query (a per-query flush of per-query-object
    counters, so session metrics accumulate across queries); the per-level
    histograms and cache counters are written at their own call sites.
    """
    for attr, metric in _STATS_COUNTERS:
        value = getattr(stats, attr)
        if value:
            registry.counter(metric).inc(value)
    registry.counter("query.total").inc()
    if stats.budget_exhausted:
        registry.counter("deadline.node_budget_exhausted").inc()
    if stats.deadline_exhausted:
        registry.counter("deadline.exhausted").inc()
    if stats.phase2_ran:
        registry.counter("phase2.ran").inc()
        if stats.phase2_early_termination:
            registry.counter("phase2.early_termination").inc()


def counters_line(registry: MetricsRegistry, prefix: str = "metrics:") -> str:
    """One-line ``name=value`` summary of all non-zero counters and gauges."""
    parts: List[str] = []
    for name, value in registry.snapshot().items():
        if isinstance(value, dict):  # histogram: summarize as count/sum
            if value["count"]:
                parts.append(f"{name}.count={value['count']}")
        elif value:
            parts.append(f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}")
    return f"{prefix} " + (" ".join(parts) if parts else "(all zero)")


def merge_snapshots(snapshots: Iterable[Optional[Dict[str, object]]]) -> Dict[str, Number]:
    """Sum scalar metrics across snapshot dicts (histograms are skipped)."""
    total: Dict[str, Number] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total[name] = total.get(name, 0) + value
    return total
