"""Programmatic runners for every experiment in the paper's evaluation.

Each function regenerates the data behind one table or figure and returns
plain dictionaries/lists, so the same implementation serves the benchmark
suite (which renders and asserts shapes), the CLI ``experiment`` command,
and ad-hoc notebook use.

All runners take explicit graphs/batches where practical; the ``*_default``
helpers build the paper-configured workloads from the dataset registry.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.com import com_search
from repro.baselines.enumerate_then_cover import STRATEGIES, generate_all, select_top_k
from repro.baselines.firstk import first_k_baseline
from repro.core.config import DSQLConfig, variant_config
from repro.core.dsql import DSQL
from repro.coverage.core import coverage as coverage_of
from repro.experiments.measurement import BatchSummary, QueryRecord
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.qsearch import count_embeddings

DEFAULT_BUDGET = 300_000


# ----------------------------------------------------------------------
# Generic batch execution
# ----------------------------------------------------------------------
def run_dsql(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    config: DSQLConfig,
    label: str = "DSQL",
) -> BatchSummary:
    """Timed DSQL batch with Section 7.3 MAX bookkeeping."""
    solver = DSQL(graph, config=config)
    summary = BatchSummary(label=label)
    for query in queries:
        start = time.perf_counter()
        result = solver.query(query)
        summary.add(
            QueryRecord(
                seconds=time.perf_counter() - start,
                coverage=result.coverage,
                max_value=result.max_value(),
                num_embeddings=len(result),
                optimal=result.optimal,
                budget_exhausted=result.stats.budget_exhausted,
            )
        )
    return summary


def run_com(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    k: int,
    node_budget: int = DEFAULT_BUDGET,
) -> BatchSummary:
    """Timed COM batch."""
    summary = BatchSummary(label="COM")
    for query in queries:
        start = time.perf_counter()
        result = com_search(graph, query, k, node_budget=node_budget)
        summary.add(
            QueryRecord(
                seconds=time.perf_counter() - start,
                coverage=result.coverage,
                max_value=k * query.size,
                num_embeddings=len(result.embeddings),
                budget_exhausted=result.budget_exhausted,
            )
        )
    return summary


# ----------------------------------------------------------------------
# Table 2 — exhaustive embedding counts
# ----------------------------------------------------------------------
@dataclass
class EmbeddingCountRow:
    """One Table-2 row for a dataset."""

    dataset: str
    average: float
    worst: int
    mean_seconds: float
    completed: int
    total: int


def table2_counts(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    dataset: str = "",
    node_budget: int = 400_000,
) -> EmbeddingCountRow:
    """Count all embeddings per query (budget = the paper's time limit)."""
    counts, times, completed = [], [], 0
    for query in queries:
        start = time.perf_counter()
        count, finished = count_embeddings(graph, query, node_budget=node_budget)
        times.append(time.perf_counter() - start)
        counts.append(count)
        completed += finished
    return EmbeddingCountRow(
        dataset=dataset or graph.name,
        average=statistics.fmean(counts) if counts else 0.0,
        worst=max(counts, default=0),
        mean_seconds=statistics.fmean(times) if times else 0.0,
        completed=completed,
        total=len(queries),
    )


# ----------------------------------------------------------------------
# Table 3 — the first-k baseline
# ----------------------------------------------------------------------
def table3_firstk(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    k: int,
    node_budget: int = 200_000,
) -> BatchSummary:
    """First-k coverage/ratio batch (the Table-3 strawman)."""
    summary = BatchSummary(label="first-k")
    for query in queries:
        start = time.perf_counter()
        result = first_k_baseline(graph, query, k, node_budget=node_budget)
        summary.add(
            QueryRecord(
                seconds=time.perf_counter() - start,
                coverage=result.coverage,
                max_value=k * query.size,
                num_embeddings=len(result.embeddings),
            )
        )
    return summary


# ----------------------------------------------------------------------
# Table 4 — enumerate-then-cover vs DSQL
# ----------------------------------------------------------------------
@dataclass
class StrategyOutcome:
    """Mean selection time and coverage of one strategy across a batch."""

    strategy: str
    mean_millis: float
    mean_coverage: float
    includes_generation: bool


@dataclass
class Table4Result:
    """All Table-4 columns for one dataset/batch."""

    outcomes: List[StrategyOutcome] = field(default_factory=list)
    generation_millis: float = 0.0

    def coverage_of(self, strategy: str) -> float:
        for o in self.outcomes:
            if o.strategy == strategy:
                return o.mean_coverage
        raise KeyError(strategy)

    def millis_of(self, strategy: str) -> float:
        for o in self.outcomes:
            if o.strategy == strategy:
                return o.mean_millis
        raise KeyError(strategy)


def table4_strategies(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    k: int,
    generation_budget: int = 150_000,
    dsql_config: Optional[DSQLConfig] = None,
) -> Table4Result:
    """Shared-generation pipeline for all strategies plus DSQL."""
    per = {s: {"cov": [], "ms": []} for s in STRATEGIES}
    gen_times: List[float] = []
    dsql_cov: List[float] = []
    dsql_ms: List[float] = []
    solver = DSQL(
        graph, config=dsql_config or DSQLConfig(k=k, node_budget=DEFAULT_BUDGET)
    )
    for query in queries:
        start = time.perf_counter()
        embeddings = generate_all(graph, query, node_budget=generation_budget)
        gen_times.append(time.perf_counter() - start)
        for strategy in STRATEGIES:
            start = time.perf_counter()
            members = select_top_k(embeddings, k, strategy)
            per[strategy]["ms"].append((time.perf_counter() - start) * 1000)
            per[strategy]["cov"].append(coverage_of(members))
        start = time.perf_counter()
        result = solver.query(query)
        dsql_ms.append((time.perf_counter() - start) * 1000)
        dsql_cov.append(result.coverage)

    outcomes = [
        StrategyOutcome(
            strategy=s,
            mean_millis=statistics.fmean(per[s]["ms"]),
            mean_coverage=statistics.fmean(per[s]["cov"]),
            includes_generation=True,
        )
        for s in STRATEGIES
    ]
    outcomes.append(
        StrategyOutcome(
            strategy="DSQL",
            mean_millis=statistics.fmean(dsql_ms),
            mean_coverage=statistics.fmean(dsql_cov),
            includes_generation=False,
        )
    )
    return Table4Result(
        outcomes=outcomes, generation_millis=statistics.fmean(gen_times) * 1000
    )


# ----------------------------------------------------------------------
# Figures 6 / 8 — DSQL vs COM sweeps
# ----------------------------------------------------------------------
def sweep_k(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    k_values: Sequence[int],
    solvers: Optional[Dict[str, Callable[[int], Callable]]] = None,
    node_budget: int = DEFAULT_BUDGET,
) -> Dict[str, List[float]]:
    """Coverage/runtime series over ``k`` for DSQL, COM and optionally more.

    ``solvers`` maps extra labels to ``k -> DSQLConfig`` factories (used by
    Figure 8's DSQLh line). Returns per-series value lists aligned with
    ``k_values``; keys: ``"<label> cov"``, ``"<label> ms"``, plus ``"MAX"``.
    """
    extra = solvers or {}
    series: Dict[str, List[float]] = {"DSQL cov": [], "COM cov": [], "MAX": [],
                                      "DSQL ms": [], "COM ms": []}
    for label in extra:
        series[f"{label} cov"] = []
        series[f"{label} ms"] = []
    for k in k_values:
        dsql = run_dsql(graph, queries, DSQLConfig(k=k, node_budget=node_budget))
        com = run_com(graph, queries, k, node_budget=node_budget)
        series["DSQL cov"].append(dsql.mean_coverage)
        series["COM cov"].append(com.mean_coverage)
        series["MAX"].append(dsql.mean_max)
        series["DSQL ms"].append(dsql.mean_millis)
        series["COM ms"].append(com.mean_millis)
        for label, factory in extra.items():
            summary = run_dsql(graph, queries, factory(k), label=label)
            series[f"{label} cov"].append(summary.mean_coverage)
            series[f"{label} ms"].append(summary.mean_millis)
    return series


def sweep_query_size(
    graph: LabeledGraph,
    batches: Dict[int, Sequence[QueryGraph]],
    k: int,
    node_budget: int = DEFAULT_BUDGET,
) -> Dict[str, List[float]]:
    """Coverage/runtime series over |E_Q| for DSQL and COM.

    ``batches`` maps query-edge-count to its query batch (ascending keys).
    """
    series: Dict[str, List[float]] = {"DSQL cov": [], "COM cov": [], "MAX": [],
                                      "DSQL ms": [], "COM ms": []}
    for size in sorted(batches):
        queries = batches[size]
        dsql = run_dsql(graph, queries, DSQLConfig(k=k, node_budget=node_budget))
        com = run_com(graph, queries, k, node_budget=node_budget)
        series["DSQL cov"].append(dsql.mean_coverage)
        series["COM cov"].append(com.mean_coverage)
        series["MAX"].append(dsql.mean_max)
        series["DSQL ms"].append(dsql.mean_millis)
        series["COM ms"].append(com.mean_millis)
    return series


# ----------------------------------------------------------------------
# Figure 9 — strategy ablation
# ----------------------------------------------------------------------
def ablation(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    k: int,
    variants: Sequence[str] = ("DSQL0", "DSQL1", "DSQL2", "DSQL3", "DSQL", "DSQLh"),
    node_budget: int = 400_000,
) -> Dict[str, BatchSummary]:
    """Run every named variant over the same batch."""
    out: Dict[str, BatchSummary] = {}
    for variant in variants:
        config = variant_config(variant, k, node_budget=node_budget)
        out[variant] = run_dsql(graph, queries, config, label=variant)
    return out
