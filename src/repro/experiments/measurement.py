"""Per-query measurement records and their aggregation.

The paper reports, per query-set: mean runtime, mean coverage (``# Nodes``),
mean approximation ratio, and a ``MAX`` reference (the coverage when the
solution is provably optimal, else the ``k*q`` bound). These records carry
exactly those quantities.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class QueryRecord:
    """One query's measured outcome.

    ``metrics`` is the query's :meth:`~repro.core.state.SearchStats.snapshot`
    (expansion/prune/swap counters) when the solver exposes one — DSQL
    always does; baselines leave it ``None``. For ``from_cache`` records the
    snapshot describes the *original* search that populated the memo entry.
    """

    seconds: float
    coverage: int
    max_value: int
    num_embeddings: int
    optimal: bool = False
    budget_exhausted: bool = False
    deadline_exhausted: bool = False
    from_cache: bool = False
    metrics: Optional[Dict[str, object]] = None

    @property
    def ratio(self) -> float:
        """``coverage / max_value`` (1.0 when nothing could be covered)."""
        return self.coverage / self.max_value if self.max_value else 1.0


@dataclass
class BatchSummary:
    """Aggregate of a query batch (one point of a paper figure)."""

    label: str
    records: List[QueryRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def add(self, record: QueryRecord) -> None:
        """Append one query's record."""
        self.records.append(record)

    @property
    def mean_seconds(self) -> float:
        """Average per-query runtime in seconds."""
        return statistics.fmean(r.seconds for r in self.records) if self.records else 0.0

    @property
    def mean_millis(self) -> float:
        """Average per-query runtime in milliseconds (the paper's unit)."""
        return self.mean_seconds * 1000.0

    @property
    def mean_coverage(self) -> float:
        """Average ``|C(A)|`` — the "# Nodes" axis of Figures 6 and 8."""
        return statistics.fmean(r.coverage for r in self.records) if self.records else 0.0

    @property
    def mean_max(self) -> float:
        """Average MAX reference value."""
        return statistics.fmean(r.max_value for r in self.records) if self.records else 0.0

    @property
    def mean_ratio(self) -> float:
        """Average per-query approximation-ratio lower bound."""
        return statistics.fmean(r.ratio for r in self.records) if self.records else 1.0

    @property
    def optimal_fraction(self) -> float:
        """Fraction of queries solved provably optimally."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.optimal) / len(self.records)

    @property
    def mean_embeddings(self) -> float:
        """Average number of returned embeddings."""
        return (
            statistics.fmean(r.num_embeddings for r in self.records)
            if self.records
            else 0.0
        )

    @property
    def any_budget_exhausted(self) -> bool:
        """Whether any query tripped its search budget (paper: the 5h rows)."""
        return any(r.budget_exhausted for r in self.records)

    @property
    def any_deadline_exhausted(self) -> bool:
        """Whether any query was truncated by its wall-clock time budget."""
        return any(r.deadline_exhausted for r in self.records)

    @property
    def cache_hits(self) -> int:
        """How many queries were answered from the session's result memo."""
        return sum(1 for r in self.records if r.from_cache)

    def total_metrics(self) -> Dict[str, float]:
        """Scalar metric totals summed over every record's snapshot.

        Cache-hit records repeat their originating search's counters, so on
        memo-heavy batches the totals describe *attributed* work (what the
        answers cost to produce), not work done during this batch.
        """
        from repro.observability import merge_snapshots

        return merge_snapshots(r.metrics for r in self.records)
