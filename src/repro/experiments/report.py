"""Plain-text rendering of experiment tables and figure series.

The benchmarks print the same rows/series the paper tabulates or plots;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.experiments.measurement import BatchSummary


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table with right-aligned numeric-looking cells."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True


def summary_row(summary: BatchSummary) -> List[object]:
    """The standard columns for one batch: label, time, coverage, MAX, ratio."""
    return [
        summary.label,
        f"{summary.mean_millis:.2f}",
        f"{summary.mean_coverage:.1f}",
        f"{summary.mean_max:.1f}",
        f"{summary.mean_ratio:.3f}",
        f"{summary.optimal_fraction:.2f}",
    ]


SUMMARY_HEADERS = ["config", "ms/query", "coverage", "MAX", "ratio", "optimal%"]
"""Headers matching :func:`summary_row`."""


def render_summaries(summaries: Iterable[BatchSummary], title: str = "") -> str:
    """A full comparison table for several batches."""
    body = render_table(SUMMARY_HEADERS, (summary_row(s) for s in summaries))
    return f"{title}\n{body}" if title else body


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: dict,
    value_format: str = "{:.1f}",
) -> str:
    """A figure-style block: one row per named series across x values.

    ``series`` maps name -> list of values aligned with ``xs``.
    """
    headers = [x_label] + [str(x) for x in xs]
    rows = [
        [name] + [value_format.format(v) if isinstance(v, float) else str(v) for v in values]
        for name, values in series.items()
    ]
    return render_table(headers, rows)
