"""Default experiment parameter grids (Section 7 settings, Python-scaled).

The paper runs 1000 random queries per configuration on a 3.4GHz C++ stack;
a pure-Python reproduction keeps the same *grids* (k ∈ 10..50,
|E_Q| ∈ 1..10, default |E_Q| = 5 and k = 40) but defaults to smaller query
batches. ``REPRO_QUERIES`` in the environment overrides the batch size —
set it to 1000 to run the paper-size batches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List

DEFAULT_K = 40
"""The paper's default k."""

DEFAULT_QUERY_EDGES = 5
"""The paper's default query size |E_Q|."""

K_GRID: List[int] = [10, 20, 30, 40, 50]
"""k sweep of Figures 6 and 8."""

QUERY_SIZE_GRID: List[int] = list(range(1, 11))
"""|E_Q| sweep of Figures 6 and 8."""

LABEL_DENSITY_GRID: List[float] = [0.05e-3, 0.1e-3, 0.15e-3, 0.2e-3]
"""Label-density sweep of Figure 7."""


def batch_size(default: int = 20) -> int:
    """Per-configuration query count (env ``REPRO_QUERIES`` overrides)."""
    raw = os.environ.get("REPRO_QUERIES", "")
    if raw:
        value = int(raw)
        if value < 1:
            raise ValueError(f"REPRO_QUERIES must be positive, got {value}")
        return value
    return default


def bench_scale_override() -> float:
    """Dataset scale multiplier (env ``REPRO_SCALE``, default 1.0).

    Applied on top of each profile's ``bench_scale``; e.g. ``REPRO_SCALE=10``
    runs the Figure 6 datasets 10x larger than the bench default.
    """
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return 1.0
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass(frozen=True)
class ExperimentGrid:
    """One experiment's parameter grid (used by the CLI and benches)."""

    datasets: List[str]
    k_values: List[int] = field(default_factory=lambda: list(K_GRID))
    query_sizes: List[int] = field(default_factory=lambda: list(QUERY_SIZE_GRID))
    default_k: int = DEFAULT_K
    default_query_edges: int = DEFAULT_QUERY_EDGES


FIG6_GRID = ExperimentGrid(
    datasets=["wordnet", "epinion", "dblp", "youtube", "dbpedia", "imdb"]
)
"""Figure 6's dataset panel."""

FIG8_GRID = ExperimentGrid(datasets=["yeast", "human", "uspatent"])
"""Figure 8's dataset panel."""

FIG9_DATASETS = ["youtube", "human"]
"""Figure 9's ablation datasets."""
