"""Query-batch execution for the paper's experiments.

A *solver* here is any callable ``(graph, query) -> SolverOutcome``;
adapters wrap DSQL, COM, and the other baselines into that interface so one
runner produces comparable :class:`BatchSummary` rows for every figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.baselines.com import com_search
from repro.baselines.firstk import first_k_baseline
from repro.baselines.random_start import random_start_search
from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.experiments.measurement import BatchSummary, QueryRecord
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph


@dataclass(frozen=True)
class SolverOutcome:
    """Normalized solver output for measurement.

    ``metrics`` is a :meth:`~repro.core.state.SearchStats.snapshot` when the
    solver exposes per-query counters (DSQL does); baselines leave it
    ``None``.
    """

    coverage: int
    max_value: int
    num_embeddings: int
    optimal: bool = False
    budget_exhausted: bool = False
    deadline_exhausted: bool = False
    from_cache: bool = False
    metrics: Optional[Dict[str, object]] = None


Solver = Callable[[LabeledGraph, QueryGraph], SolverOutcome]


def dsql_solver(config: DSQLConfig) -> Solver:
    """Adapter: DSQL with ``config``.

    ``MAX`` follows Section 7.3: the solution's own coverage when provably
    optimal, else ``k * q``. One DSQL session is kept per data graph, so a
    batch over the same graph shares the per-graph index cache instead of
    rebuilding it per query.
    """
    # Keyed by id() with the graph kept alive alongside the session, so a
    # recycled id can never alias a dead graph.
    sessions: dict = {}

    def solve(graph: LabeledGraph, query: QueryGraph) -> SolverOutcome:
        entry = sessions.get(id(graph))
        if entry is None or entry[0] is not graph:
            entry = (graph, DSQL(graph, config=config))
            sessions[id(graph)] = entry
        result = entry[1].query(query)
        return SolverOutcome(
            coverage=result.coverage,
            max_value=result.max_value(),
            num_embeddings=len(result),
            optimal=result.optimal,
            budget_exhausted=result.stats.budget_exhausted,
            deadline_exhausted=result.stats.deadline_exhausted,
            metrics=result.stats.snapshot(),
        )

    return solve


def com_solver(
    k: int, seed: Optional[int] = 0, node_budget: Optional[int] = 2_000_000
) -> Solver:
    """Adapter: the COM interleaving baseline."""

    def solve(graph: LabeledGraph, query: QueryGraph) -> SolverOutcome:
        result = com_search(graph, query, k, seed=seed, node_budget=node_budget)
        return SolverOutcome(
            coverage=result.coverage,
            max_value=k * query.size,
            num_embeddings=len(result.embeddings),
            budget_exhausted=result.budget_exhausted,
        )

    return solve


def first_k_solver(k: int, node_budget: Optional[int] = 2_000_000) -> Solver:
    """Adapter: the first-k baseline of Table 3."""

    def solve(graph: LabeledGraph, query: QueryGraph) -> SolverOutcome:
        result = first_k_baseline(graph, query, k, node_budget=node_budget)
        return SolverOutcome(
            coverage=result.coverage,
            max_value=k * query.size,
            num_embeddings=len(result.embeddings),
        )

    return solve


def random_start_solver(
    k: int, seed: Optional[int] = 0, node_budget: Optional[int] = 2_000_000
) -> Solver:
    """Adapter: the random-start baseline of Section 2.2."""

    def solve(graph: LabeledGraph, query: QueryGraph) -> SolverOutcome:
        result = random_start_search(graph, query, k, seed=seed, node_budget=node_budget)
        return SolverOutcome(
            coverage=result.coverage,
            max_value=k * query.size,
            num_embeddings=len(result.embeddings),
        )

    return solve


def run_batch(
    graph: LabeledGraph,
    queries: Iterable[QueryGraph],
    solver: Solver,
    label: str = "",
) -> BatchSummary:
    """Run ``solver`` over a query batch, timing each query individually."""
    summary = BatchSummary(label=label)
    for query in queries:
        start = time.perf_counter()
        outcome = solver(graph, query)
        elapsed = time.perf_counter() - start
        summary.add(
            QueryRecord(
                seconds=elapsed,
                coverage=outcome.coverage,
                max_value=outcome.max_value,
                num_embeddings=outcome.num_embeddings,
                optimal=outcome.optimal,
                budget_exhausted=outcome.budget_exhausted,
                deadline_exhausted=outcome.deadline_exhausted,
                from_cache=outcome.from_cache,
                metrics=outcome.metrics,
            )
        )
    return summary


def run_executor_batch(
    graph: LabeledGraph,
    queries: List[QueryGraph],
    config: DSQLConfig,
    *,
    strategy: str = "serial",
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    label: str = "",
) -> BatchSummary:
    """Run a DSQL batch through :class:`~repro.parallel.BatchExecutor`.

    Unlike :func:`run_batch`, the pool answers queries concurrently, so only
    the *batch* wall-clock is physically meaningful; each record's
    ``seconds`` is the batch time divided by the batch size. Result fields
    (coverage, optimality, truncation flags) are bit-identical to a serial
    run by the executor's replay guarantee.
    """
    from repro.parallel.executor import BatchExecutor

    queries = list(queries)
    with BatchExecutor(
        graph, config=config, strategy=strategy, jobs=jobs, chunk_size=chunk_size
    ) as executor:
        graph.index_cache()  # prewarm, matching run_batch's timing discipline
        start = time.perf_counter()
        results = executor.run(queries)
        elapsed = time.perf_counter() - start
    per_query = elapsed / len(queries) if queries else 0.0
    summary = BatchSummary(label=label)
    for result in results:
        summary.add(
            QueryRecord(
                seconds=per_query,
                coverage=result.coverage,
                max_value=result.max_value(),
                num_embeddings=len(result),
                optimal=result.optimal,
                budget_exhausted=result.stats.budget_exhausted,
                deadline_exhausted=result.stats.deadline_exhausted,
                from_cache=result.from_cache,
                metrics=result.stats.snapshot(),
            )
        )
    return summary


def compare_solvers(
    graph: LabeledGraph,
    queries: List[QueryGraph],
    solvers: dict,
) -> dict:
    """Run several named solvers over the same batch; returns name->summary."""
    return {
        name: run_batch(graph, queries, solver, label=name)
        for name, solver in solvers.items()
    }
