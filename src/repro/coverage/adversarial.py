"""The Lemma 5 adversarial stream (Appendix A.5).

The paper proves no deterministic *greedy online* algorithm (one that only
ever increases coverage while holding at most ``k`` embeddings) can
guarantee better than 0.5 of the optimum — which makes SWAPα's asymptotic
0.5 bound tight. The construction:

1. present ``k''`` embeddings ``R ∪ X_i`` sharing a common core ``R`` of
   size ``Δ - 1`` with distinct singletons ``X_i``;
2. once the algorithm has committed to ``k' <= k`` of them (discarding
   ``j >= k - ceil(k'/Δ)``), present embeddings made of Δ-groups of the
   *kept* singletons ``A_1 ∪ ... ∪ A_Δ`` — worthless to the algorithm
   (their elements are already covered) but combinable by the optimum.

The optimum covers ``Δ - 1 + k'(1 - 1/Δ) + k``; the algorithm covers
``Δ - 1 + k'``; the ratio tends to 1/2 as ``k`` grows.

:func:`lemma5_stream` materializes the instance for a *specific* greedy
algorithm by simulating phase 1 first; :func:`lemma5_ratio_bound` gives the
closed-form ceiling.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Sequence, Tuple

from repro.coverage.core import EmbeddingSet, coverage
from repro.exceptions import ConfigError


def lemma5_ratio_bound(k: int, delta: int) -> float:
    """The closed-form ratio ceiling ``(Δ-1+k) / (Δ-1+k(2-1/Δ))``.

    This is the ``k' = k`` (best) case of the proof; it approaches 0.5 from
    above as ``k`` grows.
    """
    if k < 1 or delta < 2:
        raise ConfigError(f"need k >= 1 and delta >= 2, got k={k}, delta={delta}")
    return (delta - 1 + k) / (delta - 1 + k * (2 - 1 / delta))


def lemma5_core_embeddings(
    k: int, delta: int, extra: int = 0
) -> Tuple[List[EmbeddingSet], FrozenSet[int]]:
    """Phase-1 embeddings ``R ∪ X_i`` and the shared core ``R``.

    ``k + extra`` embeddings are produced (the adversary needs more than the
    algorithm can keep). Elements are integers: ``0 .. delta-2`` form ``R``;
    singleton ``X_i`` is ``delta - 1 + i``.
    """
    if k < 1 or delta < 2:
        raise ConfigError(f"need k >= 1 and delta >= 2, got k={k}, delta={delta}")
    core = frozenset(range(delta - 1))
    total = k + extra
    embeddings = [core | {delta - 1 + i} for i in range(total)]
    return embeddings, core


def lemma5_phase2_embeddings(
    kept_singletons: Sequence[int], delta: int
) -> List[EmbeddingSet]:
    """Phase-2 embeddings: Δ-groups of the singletons the algorithm kept.

    These add nothing for the algorithm (all elements already covered) but
    let the optimum spend one slot per Δ singletons, freeing slots for the
    discarded ``R ∪ B_j`` embeddings.
    """
    groups: List[EmbeddingSet] = []
    singles = list(kept_singletons)
    for start in range(0, len(singles) - delta + 1, delta):
        groups.append(frozenset(singles[start : start + delta]))
    return groups


def adversarial_run(
    algorithm: Callable[[Sequence[EmbeddingSet]], Sequence[EmbeddingSet]],
    k: int,
    delta: int,
    extra: int = 0,
) -> Tuple[int, int]:
    """Drive ``algorithm`` through the two-phase adversary.

    ``algorithm`` maps a stream to its final collection (size <= k). Returns
    ``(algorithm_coverage, optimal_coverage)`` for the combined stream. The
    optimum is computed from the construction directly (not brute force):
    it keeps the phase-2 groups plus discarded core embeddings plus one core
    embedding.
    """
    phase1, core = lemma5_core_embeddings(k, delta, extra=extra)
    held = list(algorithm(phase1))
    held_singletons = sorted(
        next(iter(h - core)) for h in held if h - core and core <= h
    )
    phase2 = lemma5_phase2_embeddings(held_singletons, delta)
    full_stream = phase1 + phase2
    final = list(algorithm(full_stream))
    algo_cover = coverage(final)

    # Optimum: all phase-2 groups (covering the kept singletons), then fill
    # remaining slots with phase-1 embeddings — preferring the ones the
    # algorithm *discarded* (their singletons are not in any group, so each
    # contributes a fresh element; the first also contributes the core).
    grouped = set().union(*phase2) if phase2 else set()
    ordered = sorted(
        phase1, key=lambda emb: bool((emb - core) <= grouped)
    )
    slots_left = k - len(phase2)
    opt_sets: List[EmbeddingSet] = list(phase2)
    for emb in ordered:
        if slots_left <= 0:
            break
        opt_sets.append(emb)
        slots_left -= 1
    opt_cover = coverage(opt_sets)
    return algo_cover, max(opt_cover, algo_cover)
