"""Maximum k-coverage suite: primitives, greedy, streaming swaps, exact."""

from repro.coverage.bounds import (
    GAMMA_FIXED_POINT,
    alpha_gamma_schedule,
    coverage_upper_bound,
    greedy_ratio_bound,
    next_alpha,
    next_gamma,
    overall_ratio_bound,
    phase1_ratio_bound,
    single_scan_ratio,
)
from repro.coverage.core import (
    CoverageTracker,
    EmbeddingSet,
    as_vertex_set,
    benefit,
    cover_set,
    coverage,
    loss,
)
from repro.coverage.exact import exact_ratio, optimal_coverage
from repro.coverage.greedy import greedy_max_coverage
from repro.coverage.multiscan import MultiScanResult, dsq_ns, swap_alpha_multiscan
from repro.coverage.swap import (
    Swap0,
    Swap1,
    Swap2,
    SwapA,
    SwapAlpha,
    SwapRun,
    swap_stream,
)

__all__ = [
    "CoverageTracker",
    "EmbeddingSet",
    "as_vertex_set",
    "coverage",
    "cover_set",
    "benefit",
    "loss",
    "greedy_max_coverage",
    "Swap0",
    "Swap1",
    "Swap2",
    "SwapA",
    "SwapAlpha",
    "SwapRun",
    "swap_stream",
    "MultiScanResult",
    "dsq_ns",
    "swap_alpha_multiscan",
    "optimal_coverage",
    "exact_ratio",
    "GAMMA_FIXED_POINT",
    "next_alpha",
    "next_gamma",
    "alpha_gamma_schedule",
    "single_scan_ratio",
    "phase1_ratio_bound",
    "overall_ratio_bound",
    "greedy_ratio_bound",
    "coverage_upper_bound",
]
