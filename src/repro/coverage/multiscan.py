"""Multi-scan algorithms over stored embedding sets (Sections 3 and 6.1.2).

Two algorithms that assume the embeddings can be scanned repeatedly:

* :func:`dsq_ns` — ``DSQ_NS`` ("DSQ with No Swapping", Section 3): up to
  ``q`` scans; the scan with index ``i`` admits embeddings that still
  contribute at least ``q - i`` new vertices. Stops as soon as ``k``
  embeddings are collected. This is the conceptual ancestor of DSQL-P1.
* :func:`swap_alpha_multiscan` — SWAPα run for multiple passes with the
  Theorem 5 schedule ``alpha_t = 1 - 2*gamma_{t-1}``; the guarantee
  ``gamma_t`` improves toward 0.5. Each pass starts from the previous pass's
  collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.coverage.bounds import next_alpha, next_gamma
from repro.coverage.core import EmbeddingSet, as_vertex_set
from repro.coverage.objectives import Objective
from repro.coverage.swap import SwapAlpha, SwapRun, swap_stream
from repro.exceptions import ConfigError


@dataclass
class MultiScanResult:
    """Result of a multi-scan run.

    Attributes
    ----------
    members:
        Final collection of embeddings (vertex sets).
    coverage:
        ``|C(F)|`` of the final collection.
    scans:
        Number of passes actually performed.
    stop_level:
        For :func:`dsq_ns`: the scan index at which ``k`` was reached, or the
        last scan index when fewer than ``k`` embeddings exist.
    per_scan_coverage:
        Coverage after each pass (monotone non-decreasing for SWAPα with the
        schedule; strictly informative for convergence plots).
    """

    members: List[EmbeddingSet]
    coverage: int
    scans: int
    stop_level: int = -1
    per_scan_coverage: List[int] = field(default_factory=list)


def dsq_ns(
    embeddings: Sequence[Iterable[int]],
    k: int,
    q: int,
) -> MultiScanResult:
    """``DSQ_NS``: level-relaxing multi-scan selection (Section 3).

    Scan ``i`` (0-based) admits an embedding if it contributes at least
    ``q - i`` new vertices given everything selected so far. Early-terminates
    when ``|T| = k``. If the final scan (``i = q - 1``, i.e. "any new vertex")
    completes with ``|T| < k``, the result is *optimal* (every unselected
    embedding lies entirely inside the cover).
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if q < 1:
        raise ConfigError(f"q must be >= 1, got {q}")
    pool = [as_vertex_set(e) for e in embeddings]
    selected: List[EmbeddingSet] = []
    covered: set[int] = set()
    per_scan: List[int] = []
    level = 0
    for i in range(q):
        level = i
        for emb in pool:
            gain = sum(1 for v in emb if v not in covered)
            if gain >= q - i:
                selected.append(emb)
                covered.update(emb)
                if len(selected) >= k:
                    per_scan.append(len(covered))
                    return MultiScanResult(
                        members=selected,
                        coverage=len(covered),
                        scans=i + 1,
                        stop_level=i,
                        per_scan_coverage=per_scan,
                    )
        per_scan.append(len(covered))
    return MultiScanResult(
        members=selected,
        coverage=len(covered),
        scans=q,
        stop_level=level,
        per_scan_coverage=per_scan,
    )


def swap_alpha_multiscan(
    embeddings: Sequence[Iterable[int]],
    k: int,
    num_scans: int = 3,
    gamma0: float = 0.0,
    progressive_init: bool = True,
    objective: Optional[Objective] = None,
) -> MultiScanResult:
    """Multi-pass SWAPα with the Theorem 5 α schedule.

    Pass ``t`` uses ``alpha_t = 1 - 2*gamma_{t-1}``; after the pass the
    guarantee bookkeeping advances ``gamma_t = 0.25 / (1 - gamma_{t-1})``.
    Passes stop early when γ reaches 0.5 (no further provable gain) or when a
    pass performs no swap (the collection is stable, so later identical
    passes cannot change it either).

    ``objective`` selects the coverage objective for every pass (``None`` =
    the paper's vertex coverage; the Theorem 5 γ schedule is proven for
    unit weights only). :func:`dsq_ns` stays vertex-only by design: its
    ``q - i`` admission thresholds *are* vertex counts (Section 3).
    """
    if num_scans < 1:
        raise ConfigError(f"num_scans must be >= 1, got {num_scans}")
    gamma = gamma0
    members: List[EmbeddingSet] = []
    # Passes chain on the raw stream embeddings, not the element sets: a
    # non-vertex objective cannot re-project an element set.
    carry: List = []
    coverage_now = 0
    per_scan: List[int] = []
    scans_done = 0
    for t in range(num_scans):
        if gamma >= 0.5:
            break
        alpha = next_alpha(gamma)
        run: SwapRun = swap_stream(
            embeddings,
            k,
            SwapAlpha(alpha=alpha),
            initial=carry if t else None,
            progressive_init=progressive_init,
            objective=objective,
        )
        scans_done += 1
        members = run.members
        carry = run.embeddings
        coverage_now = run.coverage
        per_scan.append(run.coverage)
        gamma = next_gamma(gamma)
        if t > 0 and run.swaps == 0:
            break
    return MultiScanResult(
        members=members,
        coverage=coverage_now,
        scans=scans_done,
        per_scan_coverage=per_scan,
    )
