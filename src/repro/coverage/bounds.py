"""Approximation-bound arithmetic (Theorems 3–6 and the §6.1.2 schedule).

Pure functions over the paper's closed forms, used both by the algorithms
(the multi-scan α schedule) and by tests that assert the published constants
(α/γ progression 1, 0.25, 0.5, 1/3, ... converging to 0.5).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import ConfigError

GAMMA_FIXED_POINT = 0.5
"""Limit of the multi-scan guarantee sequence (Appendix A.4)."""


def next_alpha(gamma_prev: float) -> float:
    """Equation (3): ``alpha_t = 1 - 2 * gamma_{t-1}`` (requires γ < 0.5)."""
    if not 0.0 <= gamma_prev < 0.5:
        raise ConfigError(f"gamma must be in [0, 0.5) for the schedule, got {gamma_prev}")
    return 1.0 - 2.0 * gamma_prev


def next_gamma(gamma_prev: float) -> float:
    """Equation (4): ``gamma_t = 0.25 / (1 - gamma_{t-1})``."""
    if not 0.0 <= gamma_prev < 1.0:
        raise ConfigError(f"gamma must be in [0, 1), got {gamma_prev}")
    return 0.25 / (1.0 - gamma_prev)


def alpha_gamma_schedule(num_scans: int, gamma0: float = 0.0) -> List[Tuple[float, float]]:
    """The first ``num_scans`` pairs ``(alpha_t, gamma_t)`` of the §6.1.2 schedule.

    Starting from ``gamma0 = 0``: (1, 0.25), (0.5, 1/3), (1/3, 3/8),
    (0.25, 0.4), ... The γ sequence increases toward the 0.5 fixed point.
    """
    if num_scans < 0:
        raise ConfigError(f"num_scans must be >= 0, got {num_scans}")
    schedule: List[Tuple[float, float]] = []
    gamma = gamma0
    for _ in range(num_scans):
        if gamma >= 0.5:
            break  # the guarantee cannot be improved further by scanning
        alpha = next_alpha(gamma)
        gamma = next_gamma(gamma)
        schedule.append((alpha, gamma))
    return schedule


def single_scan_ratio(alpha: float, gamma0: float) -> float:
    """Inequality (6): lower bound ``(alpha + gamma) / (alpha + 1)^2``."""
    if alpha < 0:
        raise ConfigError(f"alpha must be >= 0, got {alpha}")
    return (alpha + gamma0) / (alpha + 1.0) ** 2


def phase1_ratio_bound(q: int, level: int, k: int) -> float:
    """Theorem 3: DSQL-P1 stopping at level ``i`` guarantees
    ``(q - i)/q + i/(k*q)`` (tight)."""
    if q < 1 or k < 1 or not 0 <= level < q:
        raise ConfigError(f"invalid (q={q}, level={level}, k={k})")
    return (q - level) / q + level / (k * q)


def overall_ratio_bound(k: int, q: int) -> float:
    """Theorem 4 / 6: ``max(0.25 * (1 + 1/k), 0.25 * (1 + 1/q))``."""
    if k < 1 or q < 1:
        raise ConfigError(f"k and q must be >= 1, got k={k}, q={q}")
    return max(0.25 * (1.0 + 1.0 / k), 0.25 * (1.0 + 1.0 / q))


def greedy_ratio_bound() -> float:
    """GreedyDSQ's classic ``1 - 1/e`` guarantee."""
    import math

    return 1.0 - 1.0 / math.e


def coverage_upper_bound(k: int, q: int) -> int:
    """``|C(OPT)| <= k * q`` — the MAX fallback of Section 7.3.

    This is the *vertex*-objective bound; :func:`objective_coverage_bound`
    generalizes it to any :class:`~repro.coverage.objectives.Objective`.
    """
    if k < 1 or q < 1:
        raise ConfigError(f"k and q must be >= 1, got k={k}, q={q}")
    return k * q


def edge_coverage_upper_bound(k: int, num_query_edges: int) -> int:
    """``|C(OPT)| <= k * |E(Q)|`` under the edge objective.

    Injectivity gives every embedding exactly ``|E(Q)|`` distinct data
    edges, so the no-overlap relaxation caps any ``k``-collection here.
    """
    if k < 1 or num_query_edges < 0:
        raise ConfigError(
            f"k must be >= 1 and |E(Q)| >= 0, got k={k}, |E(Q)|={num_query_edges}"
        )
    return k * num_query_edges


def weighted_coverage_upper_bound(k: int, top_q_weight_sum) -> float:
    """``|C(OPT)| <= k * (sum of the q largest vertex weights)``.

    One embedding covers at most ``q`` vertices, so its weight is at most
    the sum of the ``q`` heaviest vertices in the graph; ``k`` embeddings
    cap at ``k`` times that. Reduces to ``k * q`` on unit weights.
    """
    if k < 1 or top_q_weight_sum < 0:
        raise ConfigError(
            f"k must be >= 1 and the weight sum >= 0, got k={k}, "
            f"sum={top_q_weight_sum}"
        )
    return k * top_q_weight_sum


def objective_coverage_bound(objective, k: int):
    """``MAX`` for an arbitrary bound objective: ``objective.max_coverage(k)``.

    Theorem-survival note: the Theorem 3 Phase-1 ratio
    (:func:`phase1_ratio_bound`) and the Theorem 4/6 constants
    (:func:`overall_ratio_bound`) are proven for unit-weight vertex
    coverage; under other objectives the returned bound is still a valid
    ``MAX`` denominator, but those ratio guarantees do not transfer
    (see ``docs/objectives.md`` for the per-objective table).
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    return objective.max_coverage(k)
