"""Exact maximum k-coverage by branch and bound.

The paper can only *lower-bound* approximation ratios by ``|C(A)| / (kq)``
because the optimum is unknown on its datasets. On small instances we can do
better: this module computes the true optimum over an explicit embedding
set, enabling tests (and small-scale experiments) that measure real ratios
against Theorems 3, 4 and 6.

The solver is depth-first branch and bound: at every node it re-scores the
remaining sets by marginal gain, branches on the best one, and prunes with
the "current coverage + sum of the ``slots_left`` largest gains" upper
bound (exact on the no-overlap relaxation). Exponential in the worst case —
callers guard instance sizes, and both an input-size and a search-node
limit turn hopeless instances into explicit errors instead of hangs.

Both entry points accept an :class:`~repro.coverage.objectives.Objective`:
the search then runs over the objective's (weighted) element sets. The
bound stays exact for any non-negative weights, and subset domination stays
sound (a subset's weighted gain never exceeds its superset's).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.coverage.core import EmbeddingSet, as_vertex_set
from repro.coverage.objectives import Objective
from repro.exceptions import ConfigError

_DEFAULT_MAX_EMBEDDINGS = 4000


def optimal_coverage(
    embeddings: Sequence[Iterable[int]],
    k: int,
    max_embeddings: int = _DEFAULT_MAX_EMBEDDINGS,
    max_nodes: int = 2_000_000,
    objective: Optional[Objective] = None,
) -> Tuple[int, List[EmbeddingSet]]:
    """``(|C(OPT)|, OPT)`` for selecting at most ``k`` of ``embeddings``.

    ``OPT`` is returned as element sets (vertex sets under the default
    objective). Raises :class:`~repro.exceptions.ConfigError` when the
    instance exceeds ``max_embeddings`` candidates after deduplication, or
    when the search tree exceeds ``max_nodes`` — raise the limits explicitly
    if you really mean it (an exact answer on a hard instance can be
    exponential).
    """
    if k < 1:
        return 0, []
    weight = None
    if objective is not None and not objective.unit_weights:
        weight = objective.weight
    project = as_vertex_set if objective is None else objective.elements

    def measure_of(elems: Iterable) -> int:
        if weight is None:
            return len(elems) if hasattr(elems, "__len__") else sum(1 for _ in elems)
        return sum(weight(e) for e in elems)

    # Deduplicate by element set and drop dominated embeddings (subsets of
    # another embedding can never be strictly needed when a superset fits).
    unique: List[EmbeddingSet] = []
    seen: Set[EmbeddingSet] = set()
    for emb in embeddings:
        s = project(emb)
        if s not in seen:
            seen.add(s)
            unique.append(s)
    unique = _drop_dominated(unique)
    if len(unique) > max_embeddings:
        raise ConfigError(
            f"exact solver given {len(unique)} embeddings (> {max_embeddings}); "
            "raise max_embeddings to force it"
        )

    # Greedy seed: a strong incumbent makes the bound bite immediately.
    incumbent = _greedy_seed(unique, k, weight)
    best_cover = measure_of(set().union(*incumbent)) if incumbent else 0
    best_sel: List[EmbeddingSet] = list(incumbent)
    nodes_visited = 0

    def gain_of(emb: EmbeddingSet, covered: Set) -> int:
        if weight is None:
            return sum(1 for e in emb if e not in covered)
        return sum(weight(e) for e in emb if e not in covered)

    def dfs(pool: List[EmbeddingSet], covered: Set, covered_w, chosen: List[EmbeddingSet]) -> None:
        """Branch on the highest-gain remaining set with live gain bounds.

        Re-evaluating gains at every node is O(n*q) but collapses the node
        count: the bound ``covered weight + sum of top slots_left gains`` is
        exact on the relaxation where sets may overlap arbitrarily.
        """
        nonlocal best_cover, best_sel, nodes_visited
        nodes_visited += 1
        if nodes_visited > max_nodes:
            raise ConfigError(
                f"exact max-coverage search exceeded {max_nodes} nodes; "
                "the instance is too hard for an exact answer"
            )
        if covered_w > best_cover:
            best_cover = covered_w
            best_sel = list(chosen)
        slots_left = k - len(chosen)
        if slots_left == 0:
            return
        scored = sorted(
            ((gain_of(emb, covered), emb) for emb in pool),
            key=lambda t: -t[0],
        )
        scored = [(g, emb) for g, emb in scored if g > 0]
        if not scored:
            return
        if covered_w + sum(g for g, _ in scored[:slots_left]) <= best_cover:
            return
        gain, emb = scored[0]
        rest = [e for _, e in scored[1:]]
        # Branch 1: take the best set.
        added = [e for e in emb if e not in covered]
        covered.update(added)
        chosen.append(emb)
        dfs(rest, covered, covered_w + gain, chosen)
        chosen.pop()
        covered.difference_update(added)
        # Branch 2: exclude it entirely.
        dfs(rest, covered, covered_w, chosen)

    dfs(unique, set(), 0, [])
    return best_cover, best_sel


def _greedy_seed(
    pool: Sequence[EmbeddingSet], k: int, weight
) -> List[EmbeddingSet]:
    """Greedy incumbent over element sets (ties toward earliest, as [Feige])."""
    chosen: List[EmbeddingSet] = []
    covered: Set = set()
    remaining = list(range(len(pool)))
    while remaining and len(chosen) < k:
        best_index, best_gain = -1, 0
        for idx in remaining:
            if weight is None:
                gain = sum(1 for e in pool[idx] if e not in covered)
            else:
                gain = sum(weight(e) for e in pool[idx] if e not in covered)
            if gain > best_gain:
                best_gain, best_index = gain, idx
        if best_index < 0:
            break
        chosen.append(pool[best_index])
        covered.update(pool[best_index])
        remaining.remove(best_index)
    return chosen


def _drop_dominated(embeddings: List[EmbeddingSet]) -> List[EmbeddingSet]:
    """Remove embeddings that are strict subsets of another embedding.

    Safe for maximum coverage under any non-negative weights: any solution
    using a dominated set is at most as good with the dominating set
    substituted (duplicates were removed upstream, so substitution never
    collides).
    """
    by_size = sorted(embeddings, key=len, reverse=True)
    kept: List[EmbeddingSet] = []
    for emb in by_size:
        if not any(emb < other for other in kept):
            kept.append(emb)
    return kept


def exact_ratio(
    solution: Sequence[Iterable[int]],
    embeddings: Sequence[Iterable[int]],
    k: int,
    max_embeddings: int = _DEFAULT_MAX_EMBEDDINGS,
    objective: Optional[Objective] = None,
) -> float:
    """True approximation ratio of ``solution`` against the exact optimum.

    Returns 1.0 when the optimum covers nothing (then any solution is
    trivially optimal).
    """
    opt_cover, _ = optimal_coverage(
        embeddings, k, max_embeddings=max_embeddings, objective=objective
    )
    if opt_cover == 0:
        return 1.0
    if objective is None:
        achieved = (
            len(set().union(*(set(e) for e in solution))) if solution else 0
        )
    else:
        achieved = objective.collection_coverage(solution)
    return achieved / opt_cover
