"""Coverage algebra: ``C``, benefit ``B``, and loss ``L`` (Sections 2 and 6).

For a collection ``F`` of embeddings and an
:class:`~repro.coverage.objectives.Objective` mapping each embedding to a
set of weighted *coverage elements* (data vertices under the default
``vertex`` objective):

* coverage      ``|C(F)|``  — total weight of distinct covered elements;
* benefit       ``B(h, F) = |C(h) \\ C(F)|`` — weight ``h`` would add;
* loss          ``L(f, F) = |C(f) \\ C(F \\ f)|`` — weight lost if ``f``
  is removed (Equation 1). These are exactly the elements *privately*
  covered by ``f``;
* loss-plus     ``L+(f, h, F) = |C(f) \\ C(F ∪ h \\ f)|`` — the [25] loss
  used by SWAP1, which additionally credits elements that ``h`` would keep
  covered.

Under the default objective all weights are 1 and the elements are the
embedding's vertices, so every quantity is the paper's distinct-vertex
count, in exact integer arithmetic.

:class:`CoverageTracker` maintains per-element multiplicity counts so all
four quantities are O(q) per call instead of O(k·q); this is our adaptation
of the PNP ("private-neighbor") index of the diversified clique work [33]
that the paper says it adapts for the swapping phase.

**Duplicate members and slot semantics.** A collection may transiently hold
two members with the *same* element set (SWAP algorithms admit duplicates).
Identity therefore lives in the slot id, not the element set: the scratch
:func:`loss` / :func:`loss_plus` take the member's *index* in the collection
(slot-based semantics), matching :meth:`CoverageTracker.loss` which takes a
slot. An earlier revision matched ``f`` by set equality, which is ambiguous
under duplicates — both copies would report the (correct) loss of "remove
one of them", but the caller could not say *which* member it was charging.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.coverage.objectives import VERTEX, Objective

EmbeddingSet = FrozenSet[int]


def as_vertex_set(embedding: Iterable[int]) -> EmbeddingSet:
    """Normalize an embedding (tuple or set) to a frozen vertex set."""
    return embedding if isinstance(embedding, frozenset) else frozenset(embedding)


def coverage(
    collection: Iterable[Iterable[int]], objective: Optional[Objective] = None
) -> int:
    """``|C(F)|`` for an arbitrary iterable of embeddings."""
    if objective is None or objective.name == "vertex":
        covered: Set[int] = set()
        for emb in collection:
            covered.update(emb)
        return len(covered)
    return objective.collection_coverage(collection)


def cover_set(
    collection: Iterable[Iterable[int]], objective: Optional[Objective] = None
) -> Set:
    """``C(F)`` as a set (of vertices, or of the objective's elements)."""
    covered: Set = set()
    if objective is None:
        for emb in collection:
            covered.update(emb)
        return covered
    for emb in collection:
        covered.update(objective.elements(emb))
    return covered


def benefit(
    h: Iterable[int],
    collection: Iterable[Iterable[int]],
    objective: Optional[Objective] = None,
) -> int:
    """``B(h, F)`` computed from scratch (prefer :class:`CoverageTracker`)."""
    if objective is None:
        covered = cover_set(collection)
        return sum(1 for v in set(h) if v not in covered)
    covered = cover_set(collection, objective)
    weight = objective.weight
    return sum(weight(e) for e in objective.elements(h) if e not in covered)


def loss(
    collection: Sequence[Iterable[int]],
    index: int,
    objective: Optional[Objective] = None,
) -> int:
    """``L(f, F)`` computed from scratch, for the member at ``collection[index]``.

    Slot-based semantics: the member is identified by *position*, so
    duplicate element sets are unambiguous — removing one copy of a
    duplicated member always loses 0 (its twin still covers everything).
    """
    members = list(collection)
    if not 0 <= index < len(members):
        raise ValueError(
            f"loss(F, index) requires a valid member index; got {index} "
            f"for a collection of {len(members)}"
        )
    obj = objective if objective is not None else VERTEX
    f_elems = obj.elements(members[index])
    others: Set = set()
    for i, emb in enumerate(members):
        if i != index:
            others.update(obj.elements(emb))
    weight = obj.weight
    if obj.unit_weights:
        return sum(1 for e in f_elems if e not in others)
    return sum(weight(e) for e in f_elems if e not in others)


def loss_plus(
    collection: Sequence[Iterable[int]],
    index: int,
    h: Iterable[int],
    objective: Optional[Objective] = None,
) -> int:
    """``L+(f, h, F)`` computed from scratch ([25]); slot-based like :func:`loss`."""
    obj = objective if objective is not None else VERTEX
    h_elems = obj.elements(h)
    members = list(collection)
    if not 0 <= index < len(members):
        raise ValueError(
            f"loss_plus(F, index, h) requires a valid member index; got {index} "
            f"for a collection of {len(members)}"
        )
    f_elems = obj.elements(members[index])
    others: Set = set(h_elems)
    for i, emb in enumerate(members):
        if i != index:
            others.update(obj.elements(emb))
    weight = obj.weight
    if obj.unit_weights:
        return sum(1 for e in f_elems if e not in others)
    return sum(weight(e) for e in f_elems if e not in others)


class CoverageTracker:
    """Incremental coverage/benefit/loss over a mutable embedding collection.

    The tracker stores each member embedding with a unique slot id (so
    duplicate element sets, which SWAP algorithms may transiently hold, are
    handled correctly) and a global ``element -> multiplicity`` counter.
    Under the default :data:`~repro.coverage.objectives.VERTEX` objective
    the elements are the embedding's vertices and all arithmetic is the
    paper's integer vertex counting; other objectives project embeddings
    through :meth:`Objective.elements` and weigh through
    :meth:`Objective.weight`.

    All of :meth:`benefit`, :meth:`loss`, and :meth:`loss_plus` run in
    O(|elements|); :meth:`add` / :meth:`remove` are O(|elements|) too.
    """

    def __init__(
        self,
        members: Iterable[Iterable[int]] = (),
        objective: Optional[Objective] = None,
    ) -> None:
        self.objective = objective if objective is not None else VERTEX
        self._unit = self.objective.unit_weights
        self._counts: Dict[object, int] = {}
        self._members: Dict[int, FrozenSet] = {}
        self._raw: Dict[int, Iterable[int]] = {}
        self._total = 0  # total covered weight; only maintained when weighted
        self._next_slot = 0
        # Losses only change when the collection changes, so the min-loss
        # member is cached between mutations (the PNP-index effect of [33]):
        # streaming scans pay O(1) per non-swapping embedding.
        self._min_loss_cache: Tuple[int, int] | None = None
        for emb in members:
            self.add(emb)

    def __len__(self) -> int:
        return len(self._members)

    def project(self, embedding: Iterable[int]) -> FrozenSet:
        """The objective's element set for ``embedding``."""
        return self.objective.elements(embedding)

    def members(self) -> List[FrozenSet]:
        """Current members' *element sets* in slot order (vertex sets by default)."""
        return [self._members[slot] for slot in sorted(self._members)]

    def member_embeddings(self) -> List[Iterable[int]]:
        """The members exactly as they were added, in slot order."""
        return [self._raw[slot] for slot in sorted(self._raw)]

    def slots(self) -> List[int]:
        """Slot ids of the current members (stable handles for removal)."""
        return sorted(self._members)

    def member(self, slot: int) -> FrozenSet:
        """The element set stored under ``slot``."""
        return self._members[slot]

    def member_embedding(self, slot: int) -> Iterable[int]:
        """The raw embedding stored under ``slot``."""
        return self._raw[slot]

    @property
    def coverage(self) -> int:
        """``|C(F)|`` (total covered weight) in O(1)."""
        return len(self._counts) if self._unit else self._total

    def covers(self, elem) -> bool:
        """Whether element ``elem`` is covered by some member."""
        return elem in self._counts

    def cover_set(self) -> Set:
        """A copy of ``C(F)`` (an element set)."""
        return set(self._counts)

    def add(self, embedding: Iterable[int]) -> int:
        """Insert an embedding; returns its slot id."""
        return self.add_projected(self.objective.elements(embedding), embedding)

    def add_projected(self, elems: FrozenSet, embedding: Iterable[int]) -> int:
        """Insert a member whose element set was already computed."""
        slot = self._next_slot
        self._next_slot += 1
        self._members[slot] = elems
        self._raw[slot] = embedding
        counts = self._counts
        if self._unit:
            for e in elems:
                counts[e] = counts.get(e, 0) + 1
        else:
            weight = self.objective.weight
            for e in elems:
                c = counts.get(e, 0)
                if c == 0:
                    self._total += weight(e)
                counts[e] = c + 1
        self._min_loss_cache = None
        return slot

    def remove(self, slot: int) -> FrozenSet:
        """Remove the member at ``slot``; returns its element set."""
        elems = self._members.pop(slot)
        del self._raw[slot]
        counts = self._counts
        if self._unit:
            for e in elems:
                c = counts[e] - 1
                if c:
                    counts[e] = c
                else:
                    del counts[e]
        else:
            weight = self.objective.weight
            for e in elems:
                c = counts[e] - 1
                if c:
                    counts[e] = c
                else:
                    del counts[e]
                    self._total -= weight(e)
        self._min_loss_cache = None
        return elems

    def multiplicity(self, elem) -> int:
        """How many members cover element ``elem`` (0 when uncovered)."""
        return self._counts.get(elem, 0)

    def benefit(self, h: Iterable[int]) -> int:
        """``B(h, F)`` for a raw embedding (projected through the objective)."""
        return self.benefit_elements(self.objective.elements(h))

    def benefit_elements(self, elems: Iterable) -> int:
        """``B(h, F)`` for an already-projected element set."""
        counts = self._counts
        if self._unit:
            return sum(1 for e in elems if e not in counts)
        weight = self.objective.weight
        return sum(weight(e) for e in elems if e not in counts)

    def loss(self, slot: int) -> int:
        """``L(f, F)`` for the member at ``slot`` (Equation 1)."""
        counts = self._counts
        if self._unit:
            return sum(1 for e in self._members[slot] if counts[e] == 1)
        weight = self.objective.weight
        return sum(weight(e) for e in self._members[slot] if counts[e] == 1)

    def loss_plus(self, slot: int, h: Iterable) -> int:
        """``L+(f, h, F)`` ([25]); ``h`` is an *element set* (or vertex iterable
        under the default objective, where the two coincide)."""
        h_set = h if isinstance(h, frozenset) else frozenset(h)
        counts = self._counts
        if self._unit:
            return sum(
                1 for e in self._members[slot] if counts[e] == 1 and e not in h_set
            )
        weight = self.objective.weight
        return sum(
            weight(e)
            for e in self._members[slot]
            if counts[e] == 1 and e not in h_set
        )

    def min_loss_member(self) -> Tuple[int, int]:
        """``(slot, loss)`` of the member with the smallest ``L(f, F)``.

        O(1) between mutations thanks to the cached answer; O(k*q) to
        recompute after an add/remove.
        """
        if not self._members:
            raise ValueError("empty collection has no minimum-loss member")
        if self._min_loss_cache is None:
            best_slot = min(self._members, key=lambda s: (self.loss(s), s))
            self._min_loss_cache = (best_slot, self.loss(best_slot))
        return self._min_loss_cache

    def min_loss_plus_member(self, h: Iterable) -> Tuple[int, int]:
        """``(slot, loss_plus)`` minimizing ``L+(f, h, F)`` over members."""
        if not self._members:
            raise ValueError("empty collection has no minimum-loss member")
        h_set = h if isinstance(h, frozenset) else frozenset(h)
        best_slot = min(
            self._members, key=lambda s: (self.loss_plus(s, h_set), s)
        )
        return best_slot, self.loss_plus(best_slot, h_set)
