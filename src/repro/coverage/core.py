"""Coverage algebra: ``C``, benefit ``B``, and loss ``L`` (Sections 2 and 6).

For a collection ``F`` of embeddings (vertex sets):

* coverage      ``|C(F)|``  — number of distinct vertices covered;
* benefit       ``B(h, F) = |C(h) \\ C(F)|`` — new vertices ``h`` would add;
* loss          ``L(f, F) = |C(f) \\ C(F \\ f)|`` — vertices lost if ``f``
  is removed (Equation 1). These are exactly the vertices *privately*
  covered by ``f``;
* loss-plus     ``L+(f, h, F) = |C(f) \\ C(F ∪ h \\ f)|`` — the [25] loss
  used by SWAP1, which additionally credits vertices that ``h`` would keep
  covered.

:class:`CoverageTracker` maintains per-vertex multiplicity counts so all four
quantities are O(q) per call instead of O(k·q); this is our adaptation of the
PNP ("private-neighbor") index of the diversified clique work [33] that the
paper says it adapts for the swapping phase.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

EmbeddingSet = FrozenSet[int]


def as_vertex_set(embedding: Iterable[int]) -> EmbeddingSet:
    """Normalize an embedding (tuple or set) to a frozen vertex set."""
    return embedding if isinstance(embedding, frozenset) else frozenset(embedding)


def coverage(collection: Iterable[Iterable[int]]) -> int:
    """``|C(F)|`` for an arbitrary iterable of embeddings."""
    covered: Set[int] = set()
    for emb in collection:
        covered.update(emb)
    return len(covered)


def cover_set(collection: Iterable[Iterable[int]]) -> Set[int]:
    """``C(F)`` as a set."""
    covered: Set[int] = set()
    for emb in collection:
        covered.update(emb)
    return covered


def benefit(h: Iterable[int], collection: Iterable[Iterable[int]]) -> int:
    """``B(h, F)`` computed from scratch (prefer :class:`CoverageTracker`)."""
    covered = cover_set(collection)
    return sum(1 for v in set(h) if v not in covered)


def loss(f: Iterable[int], collection: Sequence[Iterable[int]]) -> int:
    """``L(f, F)`` computed from scratch; ``f`` must be a member of ``F``."""
    f_set = set(f)
    others: Set[int] = set()
    matched = False
    for emb in collection:
        if not matched and set(emb) == f_set:
            matched = True
            continue
        others.update(emb)
    if not matched:
        raise ValueError("loss(f, F) requires f to be an element of F")
    return sum(1 for v in f_set if v not in others)


class CoverageTracker:
    """Incremental coverage/benefit/loss over a mutable embedding collection.

    The tracker stores each member embedding with a unique slot id (so
    duplicate vertex sets, which SWAP algorithms may transiently hold, are
    handled correctly) and a global ``vertex -> multiplicity`` counter.

    All of :meth:`benefit`, :meth:`loss`, and :meth:`loss_plus` run in
    O(|embedding|); :meth:`add` / :meth:`remove` are O(|embedding|) too.
    """

    def __init__(self, members: Iterable[Iterable[int]] = ()) -> None:
        self._counts: Dict[int, int] = {}
        self._members: Dict[int, EmbeddingSet] = {}
        self._next_slot = 0
        # Losses only change when the collection changes, so the min-loss
        # member is cached between mutations (the PNP-index effect of [33]):
        # streaming scans pay O(1) per non-swapping embedding.
        self._min_loss_cache: Tuple[int, int] | None = None
        for emb in members:
            self.add(emb)

    def __len__(self) -> int:
        return len(self._members)

    def members(self) -> List[EmbeddingSet]:
        """Current member embeddings in insertion order of their slots."""
        return [self._members[slot] for slot in sorted(self._members)]

    def slots(self) -> List[int]:
        """Slot ids of the current members (stable handles for removal)."""
        return sorted(self._members)

    def member(self, slot: int) -> EmbeddingSet:
        """The embedding stored under ``slot``."""
        return self._members[slot]

    @property
    def coverage(self) -> int:
        """``|C(F)|`` in O(1)."""
        return len(self._counts)

    def covers(self, v: int) -> bool:
        """Whether vertex ``v`` is covered by some member."""
        return v in self._counts

    def cover_set(self) -> Set[int]:
        """A copy of ``C(F)``."""
        return set(self._counts)

    def add(self, embedding: Iterable[int]) -> int:
        """Insert an embedding; returns its slot id."""
        emb = as_vertex_set(embedding)
        slot = self._next_slot
        self._next_slot += 1
        self._members[slot] = emb
        counts = self._counts
        for v in emb:
            counts[v] = counts.get(v, 0) + 1
        self._min_loss_cache = None
        return slot

    def remove(self, slot: int) -> EmbeddingSet:
        """Remove the embedding at ``slot``; returns it."""
        emb = self._members.pop(slot)
        counts = self._counts
        for v in emb:
            c = counts[v] - 1
            if c:
                counts[v] = c
            else:
                del counts[v]
        self._min_loss_cache = None
        return emb

    def multiplicity(self, v: int) -> int:
        """How many members cover vertex ``v`` (0 when uncovered)."""
        return self._counts.get(v, 0)

    def benefit(self, h: Iterable[int]) -> int:
        """``B(h, F)``."""
        counts = self._counts
        return sum(1 for v in as_vertex_set(h) if v not in counts)

    def loss(self, slot: int) -> int:
        """``L(f, F)`` for the member at ``slot`` (Equation 1)."""
        counts = self._counts
        return sum(1 for v in self._members[slot] if counts[v] == 1)

    def loss_plus(self, slot: int, h: Iterable[int]) -> int:
        """``L+(f, h, F)``: loss of ``f`` w.r.t. ``F ∪ {h} \\ {f}`` ([25])."""
        h_set = as_vertex_set(h)
        counts = self._counts
        return sum(
            1 for v in self._members[slot] if counts[v] == 1 and v not in h_set
        )

    def min_loss_member(self) -> Tuple[int, int]:
        """``(slot, loss)`` of the member with the smallest ``L(f, F)``.

        O(1) between mutations thanks to the cached answer; O(k*q) to
        recompute after an add/remove.
        """
        if not self._members:
            raise ValueError("empty collection has no minimum-loss member")
        if self._min_loss_cache is None:
            best_slot = min(self._members, key=lambda s: (self.loss(s), s))
            self._min_loss_cache = (best_slot, self.loss(best_slot))
        return self._min_loss_cache

    def min_loss_plus_member(self, h: Iterable[int]) -> Tuple[int, int]:
        """``(slot, loss_plus)`` minimizing ``L+(f, h, F)`` over members."""
        if not self._members:
            raise ValueError("empty collection has no minimum-loss member")
        h_set = as_vertex_set(h)
        best_slot = min(
            self._members, key=lambda s: (self.loss_plus(s, h_set), s)
        )
        return best_slot, self.loss_plus(best_slot, h_set)
