"""Streaming maximum k-coverage: SWAP0, SWAP1, SWAP2, SWAP_A, SWAPα (§2.3, §6.1).

Each algorithm keeps a collection of at most ``k`` embeddings and scans an
embedding stream once, swapping a member out when its condition fires:

* **SWAP0** — swap whenever coverage strictly increases (no guarantee; the
  paper mentions it as the naive policy);
* **SWAP1** — [25] Saha & Getoor: swap ``f`` for ``h`` when the benefit is at
  least *twice* the [25]-loss ``L+(f, h, F)``; 0.25-approximate;
* **SWAP2** — [3] Ausiello et al.: swap when post-swap coverage is at least
  ``(1 + 1/k)`` times current coverage; 0.25-approximate;
* **SWAP_A** — [32]: a weighted hybrid of the SWAP1 and SWAP2 conditions
  (the paper gives no closed form, so we combine the two margins with weight
  ``hybrid_weight``; 0.5 recovers an even blend, 1.0 degenerates to SWAP1,
  0.0 to SWAP2);
* **SWAPα** — this paper's condition (Inequality 2):
  ``B(h, F) >= (1 + alpha) * L(f, F)`` with the *h-independent* loss of
  Equation (1), which is what enables DSQL-P2's early termination.

All conditions are written against the tracker's *element* algebra, so they
work unchanged under any :class:`~repro.coverage.objectives.Objective`: the
``h`` a condition receives is an already-projected element set, and every
benefit/loss is a weighted element quantity. Under the default ``vertex``
objective this is exactly the paper's vertex arithmetic. The streaming
*guarantees* of [25]/[3] are weighted-max-coverage guarantees and survive
any objective; the paper's Theorem 4/6 constants are proven for unit
weights (see ``docs/objectives.md``).

All algorithms support the **progressive initialization** of Section 6.1.3:
start from an empty collection and admit embeddings with non-zero benefit
(the fictitious swapped-out embedding has zero loss) until ``k`` members are
held. Theorem 6 lifts the one-pass guarantee to
``0.25 * max(1 + 1/k, 1 + 1/q)`` under this initialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Protocol

from repro.coverage.core import CoverageTracker
from repro.coverage.objectives import ElementSet, Objective
from repro.exceptions import ConfigError


class SwapCondition(Protocol):
    """Strategy interface: propose a member to evict for a scanned embedding.

    ``h`` is the scanned embedding's *element set* (its vertex set under the
    default objective), already projected by the caller.
    """

    name: str

    def propose(self, tracker: CoverageTracker, h: ElementSet, k: int) -> Optional[int]:
        """Slot id of the member to swap out for ``h``, or ``None`` to skip."""


@dataclass
class Swap0:
    """Swap whenever it strictly increases coverage (naive baseline).

    Evaluates the exact post-swap coverage for every member (crediting
    private elements that ``h`` re-covers) and evicts the member giving the
    largest strict improvement.
    """

    name: str = "SWAP0"

    def propose(self, tracker: CoverageTracker, h: ElementSet, k: int) -> Optional[int]:
        b = tracker.benefit_elements(h)
        if b <= 0:
            return None
        best_slot, best_after = None, tracker.coverage
        for slot in tracker.slots():
            after = (
                tracker.coverage
                - tracker.loss(slot)
                + b
                + _recovered_privates(tracker, slot, h)
            )
            if after > best_after:
                best_slot, best_after = slot, after
        return best_slot


@dataclass
class Swap1:
    """[25]: benefit at least twice the ``L+`` loss of the evicted member."""

    name: str = "SWAP1"

    def propose(self, tracker: CoverageTracker, h: ElementSet, k: int) -> Optional[int]:
        b = tracker.benefit_elements(h)
        if b <= 0:
            return None
        # Fast path: L+(f, h) <= L(f), so if the benefit already doubles the
        # (cached) minimum plain loss, that member satisfies the criterion
        # without the O(k*q) L+ scan.
        min_slot, min_loss = tracker.min_loss_member()
        if b >= 2 * min_loss:
            return min_slot
        slot, f_loss = tracker.min_loss_plus_member(h)
        if b >= 2 * f_loss:
            return slot
        return None


@dataclass
class Swap2:
    """[3]: post-swap coverage at least ``(1 + 1/k)`` times current coverage."""

    name: str = "SWAP2"

    def propose(self, tracker: CoverageTracker, h: ElementSet, k: int) -> Optional[int]:
        b = tracker.benefit_elements(h)
        if b <= 0:
            return None
        current = tracker.coverage
        slot, f_loss = tracker.min_loss_member()
        # Coverage after swapping out the min-loss f and adding h: the
        # private elements of f leave unless h re-covers them.
        after = current - f_loss + b + _recovered_privates(tracker, slot, h)
        if after * k >= (k + 1) * current:
            return slot
        return None


def _recovered_privates(tracker: CoverageTracker, slot: int, h_elems: ElementSet) -> int:
    """Total weight of member ``slot``'s private elements that ``h`` re-covers."""
    objective = tracker.objective
    if objective.unit_weights:
        return sum(
            1
            for e in tracker.member(slot)
            if e in h_elems and tracker.multiplicity(e) == 1
        )
    weight = objective.weight
    return sum(
        weight(e)
        for e in tracker.member(slot)
        if e in h_elems and tracker.multiplicity(e) == 1
    )


@dataclass
class SwapA:
    """[32]-style hybrid: weighted blend of the SWAP1 and SWAP2 margins.

    With weight ``w`` the condition accepts when
    ``w * (B - 2*L+) + (1 - w) * (k*after - (k+1)*current) / k >= 0``.
    """

    hybrid_weight: float = 0.5
    name: str = "SWAP_A"

    def propose(self, tracker: CoverageTracker, h: ElementSet, k: int) -> Optional[int]:
        b = tracker.benefit_elements(h)
        if b <= 0:
            return None
        slot, lplus = tracker.min_loss_plus_member(h)
        margin1 = b - 2 * lplus
        current = tracker.coverage
        after = current - tracker.loss(slot) + b + _recovered_privates(tracker, slot, h)
        margin2 = (k * after - (k + 1) * current) / k
        w = self.hybrid_weight
        if w * margin1 + (1.0 - w) * margin2 >= 0:
            return slot
        return None


@dataclass
class SwapAlpha:
    """This paper's condition: ``B(h, F) >= (1 + alpha) * L(f, F)`` (Ineq. 2).

    The loss is Equation (1)'s ``L(f, F)`` — independent of ``h`` — which is
    what allows the early-stopping test of DSQL-P2 (Lemma 4).
    """

    alpha: float = 1.0
    name: str = field(default="SWAPalpha")

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigError(f"alpha must be >= 0, got {self.alpha}")

    def propose(self, tracker: CoverageTracker, h: ElementSet, k: int) -> Optional[int]:
        b = tracker.benefit_elements(h)
        if b <= 0:
            return None
        slot, f_loss = tracker.min_loss_member()
        if b >= (1.0 + self.alpha) * f_loss:
            return slot
        return None


@dataclass
class SwapRun:
    """Outcome of one streaming pass.

    Attributes
    ----------
    members:
        Final collection as element sets (vertex sets by default).
    coverage:
        ``|C(F_final)|`` under the run's objective.
    examined, admitted, swaps:
        Stream statistics: embeddings scanned, admitted during progressive
        initialization, and swapped in after the collection filled.
    embeddings:
        The final members exactly as they arrived on the stream (needed to
        chain passes under non-vertex objectives, where an element set
        cannot be re-projected).
    """

    members: List[ElementSet]
    coverage: int
    examined: int = 0
    admitted: int = 0
    swaps: int = 0
    embeddings: List[Iterable[int]] = field(default_factory=list)


def swap_stream(
    stream: Iterable[Iterable[int]],
    k: int,
    condition: SwapCondition,
    initial: Optional[Iterable[Iterable[int]]] = None,
    progressive_init: bool = True,
    objective: Optional[Objective] = None,
) -> SwapRun:
    """Run one streaming pass of ``condition`` over ``stream``.

    Parameters
    ----------
    stream:
        Embeddings in arrival order: vertex iterables by default, or
        whatever ``objective.elements`` accepts (query-node-indexed mapping
        tuples for the edge objective).
    k:
        Collection capacity.
    condition:
        One of the condition strategies above.
    initial:
        Optional pre-filled collection (used by multi-pass scans, where pass
        ``t`` starts from pass ``t-1``'s result, and by DSQL-P2 which starts
        from the Phase-1 collection). Same embedding format as ``stream``.
    progressive_init:
        When the collection is not yet full: if ``True`` (Section 6.1.3),
        admit embeddings with positive benefit; if ``False``, admit the first
        ``k`` embeddings unconditionally (the plain [25]/[3] initialization).
    objective:
        The coverage objective; ``None`` means the paper's vertex coverage.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    tracker = CoverageTracker(initial or (), objective=objective)
    if len(tracker) > k:
        raise ConfigError(f"initial collection has {len(tracker)} > k = {k} members")
    run = SwapRun(members=[], coverage=0)

    for raw in stream:
        h = tracker.project(raw)
        run.examined += 1
        if len(tracker) < k:
            if not progressive_init or tracker.benefit_elements(h) > 0:
                tracker.add_projected(h, raw)
                run.admitted += 1
            continue
        slot = condition.propose(tracker, h, k)
        if slot is not None:
            tracker.remove(slot)
            tracker.add_projected(h, raw)
            run.swaps += 1

    run.members = tracker.members()
    run.embeddings = tracker.member_embeddings()
    run.coverage = tracker.coverage
    return run
