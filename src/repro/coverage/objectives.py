"""Pluggable diversity objectives: what an embedding *covers*.

The paper's coverage algebra (``C``, ``B``, ``L``, ``L+``; Sections 2 and 6)
is defined over *data vertices*: an embedding covers its matched vertices
and every quantity is a distinct-vertex count. That choice is baked into the
algorithms but not essential to them — TED (arXiv 2212.07612) diversifies by
covered data-graph **edges**, and volume-based diversity functions
(arXiv 2509.11929) show the same swap machinery applies to a family of
weighted coverage objectives.

This module is the seam: an :class:`Objective` maps an embedding to a set of
**coverage elements** plus a per-element weight, and everything downstream
(:class:`~repro.coverage.core.CoverageTracker`, the SWAP conditions, the
DSQL-P2 dispatch) speaks only in element terms. Three objectives ship:

=====================  ===========================================  =========
name                   elements of an embedding                      weights
=====================  ===========================================  =========
``vertex``             matched data vertices (the paper, default)   all 1
``edge``               matched data edges, one per query edge       all 1
``weighted-vertex``    matched data vertices                        per-vertex
=====================  ===========================================  =========

Guarantee survival (the full table lives in ``docs/objectives.md``):

* ``vertex`` — every claim of the paper holds; the default pipeline is
  bit-identical to the pre-seam implementation (equivalence-gated in
  ``tests/property/test_objective_equivalence.py``).
* ``edge`` — injectivity makes the per-embedding element count exactly
  ``|E(Q)|``, and vertex-disjoint solutions are edge-disjoint, so the
  *disjoint* optimality certificate survives; the *exhausted* certificate is
  forfeited (an embedding inside ``V(T)`` can still contribute fresh edges,
  but the level-wise generator never proposes vertex-covered embeddings).
  Lemma-4 early termination survives only through the weak unconditional
  bound ``B(h, T) <= |E(Q)|``.
* ``weighted-vertex`` — the *exhausted* certificate survives (a vertex-
  covered embedding has weighted benefit 0); the *disjoint* certificate is
  forfeited (disjointness no longer implies maximum weight), as are the
  Theorem 3/4/6 constants, which are proven for unit weights.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigError

Element = Union[int, Tuple[int, int]]
ElementSet = FrozenSet[Element]
Number = Union[int, float]

OBJECTIVE_NAMES: Tuple[str, ...] = ("vertex", "edge", "weighted-vertex")
"""The supported objective names, in documentation order."""


class Objective:
    """Base class for diversity objectives.

    Subclasses define what an embedding covers (:meth:`elements`) and how
    much each element is worth (:meth:`weight`); the flags tell the DSQL
    dispatcher which of the paper's shortcuts remain sound:

    Attributes
    ----------
    name:
        The registry name (one of :data:`OBJECTIVE_NAMES`).
    unit_weights:
        Every element weighs exactly 1. Enables the integer fast paths in
        :class:`~repro.coverage.core.CoverageTracker` — the default vertex
        objective must keep the paper's all-integer arithmetic.
    vertex_elements:
        Elements *are* data vertices. Required for the ``V(T1) ⊆ V(T)``
        premise of Lemma 4 (the tracker's cover set is a vertex set only
        when this holds).
    certifies_disjoint_optimal:
        ``k`` pairwise vertex-disjoint embeddings are provably optimal.
    certifies_exhausted_optimal:
        Exhausting all levels with ``|T| < k`` is provably optimal.
    """

    name: str = "abstract"
    unit_weights: bool = True
    vertex_elements: bool = True
    certifies_disjoint_optimal: bool = True
    certifies_exhausted_optimal: bool = True

    def elements(self, embedding: Iterable[int]) -> ElementSet:
        """The coverage elements of one embedding, as a frozen set."""
        raise NotImplementedError

    def weight(self, elem: Element) -> Number:
        """The weight of one element (1 unless the objective is weighted)."""
        return 1

    def measure(self, elems: Iterable[Element]) -> Number:
        """Total weight of an element set (``len`` on unit weights)."""
        if self.unit_weights:
            return len(elems) if hasattr(elems, "__len__") else sum(1 for _ in elems)
        weight = self.weight
        return sum(weight(e) for e in elems)

    def collection_coverage(self, collection: Iterable[Iterable[int]]) -> Number:
        """``|C(F)|`` under this objective: measure of the element union."""
        union: set = set()
        for emb in collection:
            union.update(self.elements(emb))
        return self.measure(union)

    def max_coverage(self, k: int) -> Number:
        """Upper bound on any ``k``-collection's coverage (replaces ``k*q``)."""
        raise NotImplementedError

    def future_benefit_bound(
        self, level: int, snapshot_preserved: bool
    ) -> Optional[Number]:
        """Lemma-4 bound on ``B(h, T)`` for embeddings generated at ``level``.

        ``snapshot_preserved`` is the dispatcher's ``V(T1) ⊆ V(T)`` test
        (always ``False`` when :attr:`vertex_elements` is unset — the
        tracker then has no vertex cover set to test against). ``None``
        means no usable bound: early termination is forfeited.
        """
        raise NotImplementedError


class VertexCoverage(Objective):
    """The paper's objective: distinct matched data vertices, unit weight.

    ``q`` (the query-node count) is only needed by the dispatch-side methods
    (:meth:`max_coverage`, :meth:`future_benefit_bound`); an unbound
    instance (``q=None``) still serves as a tracker/scratch-helper default.
    """

    name = "vertex"

    def __init__(self, q: Optional[int] = None) -> None:
        self.q = q

    @staticmethod
    def elements(embedding: Iterable[int]) -> ElementSet:
        return embedding if isinstance(embedding, frozenset) else frozenset(embedding)

    def max_coverage(self, k: int) -> int:
        self._require_q()
        return k * self.q

    def future_benefit_bound(
        self, level: int, snapshot_preserved: bool
    ) -> Optional[int]:
        self._require_q()
        return self.q - level if snapshot_preserved else None

    def _require_q(self) -> None:
        if self.q is None:
            raise ConfigError(
                "this VertexCoverage is not bound to a query; construct it "
                "with q=query.size for dispatch-side bounds"
            )


class EdgeCoverage(Objective):
    """TED-style objective: the data edges an embedding maps ``E(Q)`` onto.

    Each query edge ``(u, v)`` contributes the normalized data edge
    ``(min(m[u], m[v]), max(m[u], m[v]))``. Injectivity makes the per-
    embedding element count exactly ``|E(Q)|`` — which is why embeddings
    must be passed as query-node-indexed mappings (tuples), never as bare
    vertex sets: a set has forgotten which data edges were matched.
    """

    name = "edge"
    vertex_elements = False
    certifies_exhausted_optimal = False

    def __init__(self, query) -> None:
        self.query_edges: Tuple[Tuple[int, int], ...] = tuple(query.edges())
        self.num_edges = len(self.query_edges)

    def elements(self, embedding: Sequence[int]) -> ElementSet:
        try:
            return frozenset(
                (embedding[u], embedding[v])
                if embedding[u] < embedding[v]
                else (embedding[v], embedding[u])
                for u, v in self.query_edges
            )
        except TypeError:
            raise TypeError(
                "the edge objective needs query-node-indexed mappings "
                f"(tuples), not {type(embedding).__name__!r}: a vertex set "
                "has forgotten which data edges were matched"
            ) from None

    def max_coverage(self, k: int) -> int:
        return k * self.num_edges

    def future_benefit_bound(
        self, level: int, snapshot_preserved: bool
    ) -> Optional[int]:
        # Unconditional but weak: every embedding covers exactly |E(Q)|
        # edges, so B(h, T) <= |E(Q)| regardless of level or snapshot.
        return self.num_edges


class WeightedVertexCoverage(Objective):
    """Per-vertex-weighted coverage: elements are vertices, weights vary.

    Weights come from :func:`build_weight_profile` — either supplied
    explicitly (``DSQLConfig.vertex_weights``) or derived from the dataset
    as ``1 + degree(v)`` (hub vertices are worth more, a natural notion of
    "important" coverage that needs no side-channel data). Integer-valued
    weights keep the arithmetic exact.
    """

    name = "weighted-vertex"
    unit_weights = False
    certifies_disjoint_optimal = False

    def __init__(self, profile: "WeightProfile", q: int) -> None:
        self.profile = profile
        self.q = q
        self._weights = profile.weights
        self._default = profile.default

    elements = staticmethod(VertexCoverage.elements)

    def weight(self, elem: int) -> Number:
        return self._weights.get(elem, self._default)

    def max_coverage(self, k: int) -> Number:
        return k * self.profile.top_sum(self.q)

    def future_benefit_bound(
        self, level: int, snapshot_preserved: bool
    ) -> Optional[Number]:
        if not snapshot_preserved:
            return None
        return (self.q - level) * self.profile.max_weight


class WeightProfile:
    """A graph's vertex-weight table, precomputed once per DSQL session.

    ``top_sum(q)`` — the sum of the ``q`` largest weights — is what bounds a
    single embedding's coverage, so ``max_coverage(k) = k * top_sum(q)``.
    """

    def __init__(self, weights: Dict[int, Number], default: Number, num_vertices: int) -> None:
        self.weights = weights
        self.default = default
        full: List[Number] = [weights.get(v, default) for v in range(num_vertices)]
        full.sort(reverse=True)
        self._sorted_desc = full
        self.max_weight = full[0] if full else default

    def top_sum(self, q: int) -> Number:
        return sum(self._sorted_desc[:q])


def build_weight_profile(graph, vertex_weights=None) -> WeightProfile:
    """Build the weight table for ``graph``.

    ``vertex_weights`` is ``DSQLConfig.vertex_weights`` — an iterable of
    ``(vertex, weight)`` pairs overriding the default weight 1. When absent,
    weights are derived from the dataset: ``1 + degree(v)``, all integers.
    """
    if vertex_weights:
        weights: Dict[int, Number] = {}
        for v, w in vertex_weights:
            if not 0 <= v < graph.num_vertices:
                raise ConfigError(
                    f"vertex_weights names vertex {v}, but the graph has "
                    f"{graph.num_vertices} vertices"
                )
            weights[v] = w
        return WeightProfile(weights, default=1, num_vertices=graph.num_vertices)
    weights = {v: 1 + graph.degree(v) for v in range(graph.num_vertices)}
    return WeightProfile(weights, default=1, num_vertices=graph.num_vertices)


def make_objective(
    name: str,
    query=None,
    graph=None,
    vertex_weights=None,
    weight_profile: Optional[WeightProfile] = None,
) -> Objective:
    """Construct a bound objective by registry name.

    ``vertex`` needs ``query`` only for the dispatch-side bounds (it may be
    omitted for tracker-only use); ``edge`` needs ``query``;
    ``weighted-vertex`` needs either a prebuilt ``weight_profile`` or a
    ``graph`` (plus ``query`` for the bounds).
    """
    if name == "vertex":
        return VertexCoverage(q=query.size if query is not None else None)
    if name == "edge":
        if query is None:
            raise ConfigError("the edge objective requires the query graph")
        return EdgeCoverage(query)
    if name == "weighted-vertex":
        if query is None:
            raise ConfigError("the weighted-vertex objective requires the query graph")
        if weight_profile is None:
            if graph is None:
                raise ConfigError(
                    "the weighted-vertex objective requires the data graph "
                    "(or a prebuilt WeightProfile)"
                )
            weight_profile = build_weight_profile(graph, vertex_weights)
        return WeightedVertexCoverage(weight_profile, q=query.size)
    raise ConfigError(
        f"unknown objective {name!r}; choose from {sorted(OBJECTIVE_NAMES)}"
    )


VERTEX = VertexCoverage()
"""Unbound vertex objective: the default for trackers and scratch helpers."""
