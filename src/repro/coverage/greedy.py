"""GreedyDSQ — the classic greedy maximum k-coverage algorithm (Section 2.3).

Given the *complete* set of embeddings, repeatedly select the embedding with
the maximum coverage gain until ``k`` are chosen. Guarantee: ``1 - 1/e``
(~0.632), optimal for polynomial algorithms [Feige 1998]. Requires ``k``
scans over the whole embedding set — the cost the paper's DSQL avoids.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.coverage.core import EmbeddingSet, as_vertex_set
from repro.coverage.objectives import Objective


def greedy_max_coverage(
    embeddings: Sequence[Iterable[int]],
    k: int,
    objective: Optional[Objective] = None,
) -> List[EmbeddingSet]:
    """Select up to ``k`` embeddings greedily by marginal coverage gain.

    Ties break toward the earliest embedding in the input order, making the
    output deterministic. Selection stops early when no remaining embedding
    adds coverage — extra overlapping results would not increase diversity.

    With the default (vertex) objective, returns the selected embeddings as
    vertex sets, in selection order. With an explicit ``objective``, gains
    are weighted element gains and the selected embeddings are returned *as
    given* (element sets cannot stand in for mappings under, e.g., the edge
    objective). The ``1 - 1/e`` guarantee holds for any non-negative-weight
    coverage objective (weighted max coverage is still submodular).
    """
    if k < 1:
        return []
    if objective is None:
        pool: List[EmbeddingSet] = [as_vertex_set(e) for e in embeddings]
        returned: Sequence = pool
        weight = None
    else:
        pool = [objective.elements(e) for e in embeddings]
        returned = list(embeddings)
        weight = None if objective.unit_weights else objective.weight
    chosen: List = []
    covered: Set = set()
    remaining = list(range(len(pool)))

    while remaining and len(chosen) < k:
        best_index = -1
        best_gain = 0
        for idx in remaining:
            if weight is None:
                gain = sum(1 for e in pool[idx] if e not in covered)
            else:
                gain = sum(weight(e) for e in pool[idx] if e not in covered)
            if gain > best_gain:
                best_gain = gain
                best_index = idx
        if best_index < 0:
            break
        chosen.append(returned[best_index])
        covered.update(pool[best_index])
        remaining.remove(best_index)
    return chosen
