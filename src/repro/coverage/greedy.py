"""GreedyDSQ — the classic greedy maximum k-coverage algorithm (Section 2.3).

Given the *complete* set of embeddings, repeatedly select the embedding with
the maximum coverage gain until ``k`` are chosen. Guarantee: ``1 - 1/e``
(~0.632), optimal for polynomial algorithms [Feige 1998]. Requires ``k``
scans over the whole embedding set — the cost the paper's DSQL avoids.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.coverage.core import EmbeddingSet, as_vertex_set


def greedy_max_coverage(
    embeddings: Sequence[Iterable[int]],
    k: int,
) -> List[EmbeddingSet]:
    """Select up to ``k`` embeddings greedily by marginal coverage gain.

    Ties break toward the earliest embedding in the input order, making the
    output deterministic. Selection stops early when no remaining embedding
    adds coverage — extra overlapping results would not increase diversity.

    Returns the selected embeddings as vertex sets, in selection order.
    """
    if k < 1:
        return []
    pool: List[EmbeddingSet] = [as_vertex_set(e) for e in embeddings]
    chosen: List[EmbeddingSet] = []
    covered: Set[int] = set()
    remaining = list(range(len(pool)))

    while remaining and len(chosen) < k:
        best_index = -1
        best_gain = 0
        for idx in remaining:
            gain = sum(1 for v in pool[idx] if v not in covered)
            if gain > best_gain:
                best_gain = gain
                best_index = idx
        if best_index < 0:
            break
        chosen.append(pool[best_index])
        covered.update(pool[best_index])
        remaining.remove(best_index)
    return chosen
