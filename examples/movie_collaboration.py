"""Section 7.2 flavour: diversified casting teams in a movie/person graph.

Recreates the paper's IMDB case study on a synthetic affiliation graph: find
an actor, an actress and a director who all appear together in the *same
two* highly-rated drama series (the pattern behind the paper's Prison
Break / Lost result). Compares DSQL's coverage against the COM interleaving
baseline — the paper reports 150 vs 97 on real IMDB; the same gap direction
appears here.

Run: ``python examples/movie_collaboration.py``
"""

from __future__ import annotations

from repro import diversified_search
from repro.baselines import com_search
from repro.datasets import imdb_flavor


def main() -> None:
    graph, query = imdb_flavor(num_people=4000, num_series=700, seed=7)
    print(f"graph: {graph.num_vertices} vertices ({graph.name}), "
          f"{graph.num_edges} appearance edges")
    print(f"query: {query.size} nodes / {query.num_edges} edges "
          f"({', '.join(str(query.label(u)) for u in range(query.size))})\n")

    k = 40
    dsql = diversified_search(graph, query, k=k)
    com = com_search(graph, query, k)
    print(f"DSQL: {dsql.summary()}")
    print(f"COM : {len(com.embeddings)} embeddings, coverage {com.coverage}\n")

    print("three DSQL casting teams:")
    for team in dsql.embeddings[:3]:
        parts = [f"{graph.label(v)}#{v}" for v in team]
        print("  " + "  ".join(parts))

    gap = dsql.coverage / com.coverage if com.coverage else float("inf")
    print(f"\ncoverage gap DSQL/COM: {gap:.2f}x "
          "(the paper reports 150/97 = 1.55x on real IMDB)")


if __name__ == "__main__":
    main()
