"""Comparing maximum k-coverage strategies on one embedding stream.

Enumerates all embeddings of a query on the DBLP stand-in and feeds the same
stream to GreedyDSQ, each streaming SWAP algorithm, the DSQ_NS multi-scan,
and the exact branch-and-bound optimum — the Table 4 / Appendix B.2 setting
in miniature, with a real optimum to measure against.

Run: ``python examples/coverage_strategies.py``
"""

from __future__ import annotations

import time

from repro.baselines import generate_all, select_top_k, STRATEGIES
from repro.coverage import coverage, dsq_ns, optimal_coverage, swap_alpha_multiscan
from repro.datasets import make_dataset
from repro.queries import random_query
import random


def main() -> None:
    graph = make_dataset("dblp", scale=0.01, seed=3)
    rng = random.Random(5)
    query = random_query(graph, 5, rng=rng)
    k = 10

    # A truncated stream keeps GreedyDSQ and the exact solver interactive;
    # the relative ordering of the strategies is unaffected.
    embeddings = generate_all(graph, query, node_budget=20_000)
    print(f"stream: {len(embeddings)} distinct embeddings of a "
          f"{query.size}-node query; k = {k}\n")
    if not embeddings:
        print("query has no matches on this seed; re-run with another seed")
        return

    rows = []
    for strategy in STRATEGIES:
        start = time.perf_counter()
        members = select_top_k(embeddings, k, strategy)
        elapsed = (time.perf_counter() - start) * 1000
        rows.append((strategy, coverage(members), elapsed))

    ns = dsq_ns(embeddings, k, query.size)
    rows.append(("DSQ_NS", ns.coverage, float("nan")))
    multi = swap_alpha_multiscan(embeddings, k, num_scans=4)
    rows.append((f"SWAPa x{multi.scans} scans", multi.coverage, float("nan")))

    opt_cover = None
    if len(embeddings) <= 600:
        opt_cover, _ = optimal_coverage(embeddings, k, max_embeddings=600)
        rows.append(("OPTIMAL (exact B&B)", opt_cover, float("nan")))

    print(f"{'strategy':<22} {'coverage':>8} {'ms':>8}")
    for name, cov, ms in rows:
        ms_txt = f"{ms:8.2f}" if ms == ms else "       -"
        ratio = f"  ({cov / opt_cover:.3f} of optimal)" if opt_cover else ""
        print(f"{name:<22} {cov:>8}{ms_txt}{ratio}")


if __name__ == "__main__":
    main()
