"""Figure 7 in miniature: how label density shapes DSQL's behaviour.

Fixes one synthetic topology and relabels it at increasing label densities
(``|Sigma| / |V|``). The paper's finding: coverage stays close to MAX
everywhere; the approximation-ratio *bound* dips in the middle (queries get
selective enough that DSQL must climb levels, but matches are still
plentiful enough that optimality cannot be proven) and recovers at high
density (few matches -> DSQL exhausts its levels and proves optimality).

Run: ``python examples/label_density_study.py``
"""

from __future__ import annotations

import statistics

from repro.core import DSQL, DSQLConfig
from repro.datasets import make_dataset, relabel_to_density
from repro.graph import relabel
from repro.queries import query_set


def main() -> None:
    base = make_dataset("dblp", scale=0.02, seed=4)
    n = base.num_vertices
    k = 20
    densities = [0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3]

    print(f"topology: |V|={n}, |E|={base.num_edges}; k={k}, |E_Q|=4\n")
    print(f"{'density':>9} {'labels':>7} {'coverage':>9} {'ratio':>7} {'opt%':>6} {'ms/q':>8}")
    for density in densities:
        graph = relabel(base, relabel_to_density(n, density, seed=9))
        queries = query_set(graph, 4, 15, seed=2)
        solver = DSQL(graph, config=DSQLConfig(k=k))

        import time

        records = []
        for q in queries:
            start = time.perf_counter()
            r = solver.query(q)
            records.append((time.perf_counter() - start, r))
        ms = 1000 * statistics.fmean(t for t, _ in records)
        cov = statistics.fmean(r.coverage for _, r in records)
        ratio = statistics.fmean(r.approx_ratio_lower_bound() for _, r in records)
        opt = sum(1 for _, r in records if r.optimal) / len(records)
        labels = len(graph.label_set())
        print(f"{density:>9.1e} {labels:>7} {cov:>9.1f} {ratio:>7.3f} {opt:>6.0%} {ms:>8.2f}")


if __name__ == "__main__":
    main()
