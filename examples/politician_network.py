"""Appendix B.1 flavour: politicians connected to scientists and physicists.

Runs the paper's DBpedia case-study query — a politician linked to a
scientist and a physicist who are also linked to each other — on an
occupation-labeled synthetic person graph, and shows how the diversified
answer spreads across the graph instead of re-using the same hub people.

Run: ``python examples/politician_network.py``
"""

from __future__ import annotations

from collections import Counter

from repro import diversified_search
from repro.baselines import first_k_baseline
from repro.datasets import dbpedia_flavor


def main() -> None:
    graph, query = dbpedia_flavor(num_people=4000, seed=11)
    print(f"graph: {graph.num_vertices} people, {graph.num_edges} links")
    print("query: Politician - Scientist - Physicist triangle\n")

    k = 40
    dsql = diversified_search(graph, query, k=k)
    firstk = first_k_baseline(graph, query, k=k)

    print(f"DSQL   : {dsql.summary()}")
    print(f"first-k: {len(firstk.embeddings)} embeddings, coverage {firstk.coverage}\n")

    # How often is each person reused across the answers?
    def reuse(embeddings) -> float:
        counts = Counter(v for emb in embeddings for v in emb)
        return max(counts.values()) if counts else 0

    print(f"max person reuse — DSQL: {reuse(dsql.embeddings)}, "
          f"first-k: {reuse(firstk.embeddings)}")
    print("\nfive diversified triangles:")
    for emb in dsql.embeddings[:5]:
        print("  " + "  ".join(f"{graph.label(v)}#{v}" for v in emb))


if __name__ == "__main__":
    main()
