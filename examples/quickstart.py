"""Quickstart: diversified top-k subgraph querying in a few lines.

Builds the paper's motivating collaboration network (Figure 1), asks for two
diversified project teams, and contrasts the answer with the overlapping
teams a plain subgraph query would return first.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import diversified_search
from repro.baselines import first_k_baseline
from repro.datasets import figure1

ROLE = {"a": "project manager", "b": "programmer", "c": "DB developer", "d": "tester"}


def main() -> None:
    graph, query = figure1()
    print(f"data graph: {graph.num_vertices} people, {graph.num_edges} links")
    print(f"query: team of {query.size} roles, {query.num_edges} required links\n")

    result = diversified_search(graph, query, k=2)
    print(f"DSQL result: {result.summary()}")
    for i, team in enumerate(result.embeddings, 1):
        members = ", ".join(
            f"v{v + 1} ({ROLE[query.label(u)]})" for u, v in enumerate(team)
        )
        print(f"  team {i}: {members}")

    baseline = first_k_baseline(graph, query, k=2)
    print(
        f"\nfirst-2-matches baseline coverage: {baseline.coverage} vertices "
        f"(DSQL: {result.coverage})"
    )
    overlap = set(baseline.embeddings[0]) & set(baseline.embeddings[1])
    print(f"baseline teams share {len(overlap)} member(s): "
          f"{sorted('v%d' % (v + 1) for v in overlap)}")
    print("DSQL teams are disjoint:", result.is_disjoint())


if __name__ == "__main__":
    main()
