"""Comparing the three subgraph-querying engines on one workload.

The library ships three exhaustive SQ engines, mirroring the systems the
paper builds on:

* the plain Algorithm-1 backtracking engine (`QSearchEngine`);
* the conflict-directed engine (`OptimizedQSearchEngine`) — the Section
  5.3/5.4 strategies applied to plain SQ, per the paper's closing remark;
* the BoostIso-style twin-compression counter — the [24] substrate the
  paper generated its Table 2-4 embedding streams with.

This script runs all three on a twin-rich casting graph and on the paper's
Example 6 fixture, showing identical answers at very different costs.

Run: ``python examples/engine_comparison.py``
"""

from __future__ import annotations

import random
import time

from repro.datasets import figure4
from repro.graph import LabeledGraph, QueryGraph
from repro.isomorphism import (
    CompressedGraph,
    OptimizedQSearchEngine,
    QSearchEngine,
    count_embeddings_compressed,
)


def casting_graph(num_movies: int = 150, cast: int = 10, seed: int = 1) -> LabeledGraph:
    rng = random.Random(seed)
    labels, edges, vid = [], [], 0
    for _ in range(num_movies):
        movie = vid
        labels.append(f"Genre{rng.randrange(3)}")
        vid += 1
        for _ in range(cast):
            labels.append("Actor" if rng.random() < 0.7 else "Actress")
            edges.append((movie, vid))
            vid += 1
    return LabeledGraph(labels, edges, name="casting")


def compare(graph: LabeledGraph, query: QueryGraph, title: str) -> None:
    print(f"--- {title}: |V|={graph.num_vertices}, query {query.size} nodes")

    start = time.perf_counter()
    plain = QSearchEngine(graph, query, node_budget=500_000)
    plain_count = sum(1 for _ in plain.embeddings())
    plain_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    opt = OptimizedQSearchEngine(graph, query, node_budget=500_000)
    opt_count = sum(1 for _ in opt.embeddings())
    opt_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    comp_count, complete = count_embeddings_compressed(graph, query)
    comp_ms = (time.perf_counter() - start) * 1000
    ratio = CompressedGraph(graph).compression_ratio()

    print(f"  plain      : {plain_count:>8} embeddings  {plain_ms:8.1f} ms  "
          f"({plain.nodes_expanded} expansions)")
    print(f"  conflict   : {opt_count:>8} embeddings  {opt_ms:8.1f} ms  "
          f"({opt.nodes_expanded} expansions, {opt.conflict_skips} skips)")
    print(f"  compressed : {comp_count:>8} count       {comp_ms:8.1f} ms  "
          f"(ratio {ratio:.2f}, complete={complete})")
    assert plain_count == opt_count == comp_count
    print("  all engines agree.\n")


def main() -> None:
    graph = casting_graph()
    query = QueryGraph(
        ["Genre1", "Actor", "Actor", "Actress"],
        [(0, 1), (0, 2), (0, 3)],
    )
    compare(graph, query, "twin-rich casting graph")

    graph4, query4 = figure4(width=120)
    compare(graph4, query4, "Example 6 adversarial fixture")


if __name__ == "__main__":
    main()
