"""Figure 6 — DSQL vs COM vs MAX across k and |E_Q| on six datasets.

Paper panels (a)-(l): for wordnet/epinion/dblp/youtube/dbpedia/imdb,
coverage ("# Nodes") and runtime while varying k in {10..50} (|E_Q| = 5)
and |E_Q| in {1..10} (k = 40). Claims to reproduce:

* DSQL's coverage is close to MAX and well above COM's;
* coverage grows with both k and |E_Q| for DSQL;
* COM is fast on small queries but degrades (the paper's 5-hour timeouts
  appear here as budget exhaustion).
"""

from __future__ import annotations

import pytest

from common import (
    bench_graph,
    bench_queries,
    com_adapter,
    dsql_config,
    emit,
    queries_per_point,
    run_dsql_batch,
    run_solver_batch,
)
from repro.experiments.report import render_series
from repro.experiments.workloads import (
    DEFAULT_K,
    DEFAULT_QUERY_EDGES,
    K_GRID,
    QUERY_SIZE_GRID,
)

DATASETS = ["wordnet", "epinion", "dblp", "youtube", "dbpedia", "imdb"]


def sweep_k(name: str):
    graph = bench_graph(name)
    queries = bench_queries(name, DEFAULT_QUERY_EDGES, queries_per_point(5))
    series = {"DSQL cov": [], "COM cov": [], "MAX": [], "DSQL ms": [], "COM ms": []}
    for k in K_GRID:
        dsql = run_dsql_batch(graph, queries, dsql_config(k))
        com = run_solver_batch(graph, queries, com_adapter(k), k, "COM")
        series["DSQL cov"].append(dsql.mean_coverage)
        series["COM cov"].append(com.mean_coverage)
        series["MAX"].append(dsql.mean_max)
        series["DSQL ms"].append(dsql.mean_millis)
        series["COM ms"].append(com.mean_millis)
    return series


def sweep_query_size(name: str):
    graph = bench_graph(name)
    series = {"DSQL cov": [], "COM cov": [], "MAX": [], "DSQL ms": [], "COM ms": []}
    for z in QUERY_SIZE_GRID:
        queries = bench_queries(name, z, queries_per_point(4))
        dsql = run_dsql_batch(graph, queries, dsql_config(DEFAULT_K))
        com = run_solver_batch(graph, queries, com_adapter(DEFAULT_K), DEFAULT_K, "COM")
        series["DSQL cov"].append(dsql.mean_coverage)
        series["COM cov"].append(com.mean_coverage)
        series["MAX"].append(dsql.mean_max)
        series["DSQL ms"].append(dsql.mean_millis)
        series["COM ms"].append(com.mean_millis)
    return series


@pytest.mark.parametrize("name", DATASETS)
def test_fig6_vary_k(benchmark, name):
    series = benchmark.pedantic(sweep_k, args=(name,), rounds=1, iterations=1)
    emit(f"fig6_{name}_vary_k", render_series("k", K_GRID, series))
    # Shape: DSQL coverage >= COM coverage at every k.
    for d, c in zip(series["DSQL cov"], series["COM cov"]):
        assert d >= c - 1e-9
    # Shape: DSQL coverage non-decreasing in k (more slots, never less).
    cov = series["DSQL cov"]
    assert all(b >= a - 1.5 for a, b in zip(cov, cov[1:]))


@pytest.mark.parametrize("name", ["dblp", "youtube"])
def test_fig6_vary_query_size(benchmark, name):
    series = benchmark.pedantic(sweep_query_size, args=(name,), rounds=1, iterations=1)
    emit(f"fig6_{name}_vary_size", render_series("|E_Q|", QUERY_SIZE_GRID, series))
    # Shape: DSQL dominates COM on coverage for most sizes.
    wins = sum(
        1 for d, c in zip(series["DSQL cov"], series["COM cov"]) if d >= c - 1e-9
    )
    assert wins >= int(0.8 * len(QUERY_SIZE_GRID))
    # Shape: larger queries cover more vertices (coarse monotonicity:
    # the largest size beats the smallest).
    assert series["DSQL cov"][-1] > series["DSQL cov"][0]


def test_fig6_single_query_kernel(benchmark):
    """Timed kernel: one default-configuration DSQL query on dblp."""
    from repro.core.dsql import DSQL

    graph = bench_graph("dblp")
    query = bench_queries("dblp", DEFAULT_QUERY_EDGES, 1)[0]
    solver = DSQL(graph, config=dsql_config(DEFAULT_K))
    benchmark(lambda: solver.query(query))
