"""Join-kernel and plan-cache gates. Writes ``BENCH_join.json`` at repo root.

Three claims from the plan/kernel work are held to numbers here:

* ``kernel_speedup`` — on a dense synthetic graph, expanding a pool through
  one bitset AND (``joinable_kernel`` + ``bitset_members``) must be at least
  2x the throughput of the scalar per-neighbor ``has_edge`` loop it replaced.
* ``compile_speedup`` — a warm ``PlanCache.get_or_compile`` (dict probe on
  the memoized canonical key) must be at least 10x faster than a cold
  ``compile_plan``.
* ``aa_overhead_pct`` — an interleaved A/A run on the DBLP stand-in: plans
  enabled with a *cold* plan cache (cleared per run, so every query pays a
  fresh compile) vs the pre-PR path (``use_plans=False``) must stay within
  5%. Plan compilation may not tax single-shot queries.

Every timed comparison is also checked for result identity (``mismatches``
must be 0) so a fast-but-wrong kernel cannot pass.

Runs standalone (``python benchmarks/bench_join_kernels.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import random
import timeit
from dataclasses import replace
from pathlib import Path

from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.experiments.report import render_table
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.plans import PlanCache, compile_plan
from repro.kernels import bitset_members, bitset_of, joinable_kernel

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_join.json"

DATASET = "dblp"
NUM_QUERIES = 20
QUERY_EDGES = 4
K = 10
REPEATS = 5

DENSE_N = 3000
DENSE_EDGES = 60_000
DENSE_PAIRS = 200

KERNEL_GATE_X = 2.0
COMPILE_GATE_X = 10.0
AA_GATE_PCT = 5.0


def dense_graph() -> LabeledGraph:
    """A deterministic dense two-label graph (avg degree ~40)."""
    rng = random.Random(2016)
    labels = [("X", "Y")[rng.random() < 0.2] for _ in range(DENSE_N)]
    edges = set()
    while len(edges) < DENSE_EDGES:
        u, v = rng.randrange(DENSE_N), rng.randrange(DENSE_N)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return LabeledGraph(labels, sorted(edges), name="dense-synth")


def _kernel_vs_scalar(graph):
    """Time the two expansions of 'pool members adjacent to both w1 and w2'."""
    cache = graph.index_cache()
    pool = sorted(v for v in range(graph.num_vertices) if graph.label(v) == "X")
    pool_mask = bitset_of(pool)
    rng = random.Random(7)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(DENSE_PAIRS)
    ]

    def scalar():
        return [
            [v for v in pool if graph.has_edge(v, w1) and graph.has_edge(v, w2)]
            for w1, w2 in pairs
        ]

    def kernel():
        return [
            bitset_members(
                joinable_kernel(
                    (cache.adjacency_mask(w1), cache.adjacency_mask(w2))
                )
                & pool_mask
            )
            for w1, w2 in pairs
        ]

    mismatches = sum(a != b for a, b in zip(scalar(), kernel()))  # also warms masks
    scalar_s = min(timeit.repeat(scalar, number=1, repeat=REPEATS))
    kernel_s = min(timeit.repeat(kernel, number=1, repeat=REPEATS))
    tested = len(pool) * len(pairs)
    return {
        "pool_size": len(pool),
        "pairs": len(pairs),
        "scalar_seconds": scalar_s,
        "kernel_seconds": kernel_s,
        "scalar_candidates_per_s": tested / scalar_s,
        "kernel_candidates_per_s": tested / kernel_s,
        "kernel_speedup_x": scalar_s / kernel_s,
        "kernel_mismatches": mismatches,
    }


def _compile_cold_vs_warm(graph, queries):
    """Cold compile_plan vs warm PlanCache probe, same index cache."""
    cache = graph.index_cache()
    for query in queries:  # warm pools + canonical keys out of the timing
        compile_plan(query, cache)
    pc = PlanCache()
    for query in queries:
        pc.get_or_compile(query, cache)

    def cold():
        for query in queries:
            compile_plan(query, cache)

    def warm():
        for query in queries:
            pc.get_or_compile(query, cache)

    cold_s = min(timeit.repeat(cold, number=1, repeat=REPEATS))
    warm_s = min(timeit.repeat(warm, number=1, repeat=REPEATS))
    return {
        "compile_queries": len(queries),
        "compile_cold_us": 1e6 * cold_s / len(queries),
        "compile_warm_us": 1e6 * warm_s / len(queries),
        "compile_speedup_x": cold_s / warm_s,
    }


def _aa_overhead(graph, queries):
    """Interleaved A/A: plans on (cold cache each run) vs plans off."""
    config = dsql_config(K)
    off_config = replace(config, use_plans=False)
    plan_cache = graph.index_cache().plan_cache

    def run_off():
        session = DSQL(graph, config=off_config)
        for query in queries:
            session.query(query)

    def run_on_cold():
        plan_cache.clear()
        session = DSQL(graph, config=config)
        for query in queries:
            session.query(query)

    # Result identity on the exact benchmark workload.
    on = DSQL(graph, config=config)
    off = DSQL(graph, config=off_config)
    mismatches = 0
    for query in queries:
        r1, r2 = on.query(query), off.query(query)
        if (r1.embeddings, r1.coverage, r1.optimal, r1.level) != (
            r2.embeddings,
            r2.coverage,
            r2.optimal,
            r2.level,
        ):
            mismatches += 1

    run_off()
    run_on_cold()  # warm every code path before timing
    series_off, series_on = [], []
    for _ in range(REPEATS):
        series_off.append(timeit.timeit(run_off, number=1))
        series_on.append(timeit.timeit(run_on_cold, number=1))
    baseline = min(series_off)
    return {
        "aa_batch": len(queries),
        "aa_plans_off_seconds": baseline,
        "aa_plans_on_cold_seconds": min(series_on),
        "aa_overhead_pct": 100.0 * (min(series_on) - baseline) / baseline,
        "aa_mismatches": mismatches,
    }


def run_join_bench():
    graph = bench_graph(DATASET)
    graph.index_cache()
    queries = list(bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES))
    dense = dense_graph()

    payload = {
        "dataset": DATASET,
        "dense_vertices": dense.num_vertices,
        "dense_edges": dense.num_edges,
        "k": K,
        "repeats": REPEATS,
        "gate_kernel_speedup_x": KERNEL_GATE_X,
        "gate_compile_speedup_x": COMPILE_GATE_X,
        "gate_aa_overhead_pct": AA_GATE_PCT,
    }
    payload.update(_kernel_vs_scalar(dense))
    payload.update(_compile_cold_vs_warm(graph, queries))
    payload.update(_aa_overhead(graph, queries))
    payload["mismatches"] = payload["kernel_mismatches"] + payload["aa_mismatches"]
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    rows = [
        ["dense graph", f"{payload['dense_vertices']}v / {payload['dense_edges']}e"],
        ["kernel speedup", f"{payload['kernel_speedup_x']:.1f}x (gate >= 2x)"],
        [
            "kernel throughput",
            f"{payload['kernel_candidates_per_s']:,.0f} cand/s "
            f"(scalar {payload['scalar_candidates_per_s']:,.0f})",
        ],
        [
            "plan compile cold / warm",
            f"{payload['compile_cold_us']:.1f}us / {payload['compile_warm_us']:.1f}us",
        ],
        ["compile speedup", f"{payload['compile_speedup_x']:.1f}x (gate >= 10x)"],
        ["A/A cold-plan overhead", f"{payload['aa_overhead_pct']:+.2f}% (gate < 5%)"],
        ["mismatches", str(payload["mismatches"])],
    ]
    return render_table(["metric", "value"], rows)


def test_join_kernels(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_join_bench, rounds=1, iterations=1)
    emit("join_kernels", _report(payload))
    assert payload["mismatches"] == 0
    assert payload["kernel_speedup_x"] >= KERNEL_GATE_X
    assert payload["compile_speedup_x"] >= COMPILE_GATE_X
    assert payload["aa_overhead_pct"] < AA_GATE_PCT


if __name__ == "__main__":
    out = run_join_bench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
