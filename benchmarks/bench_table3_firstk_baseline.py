"""Table 3 — coverage of the best-known SQ method's first k matchings.

Paper: taking the first k = 40 embeddings gives coverage ~21-39 and
approximation ratios ~0.09-0.17 — the matchings are trapped in local areas.

Here: the same baseline on the stand-ins, side by side with DSQL to make
the gap explicit (the paper splits this across Tables 3 and Figure 6).
"""

from __future__ import annotations

from common import (
    bench_graph,
    bench_queries,
    dsql_config,
    emit,
    queries_per_point,
    run_dsql_batch,
    run_solver_batch,
)
from repro.baselines.firstk import first_k_baseline
from repro.experiments.report import render_table
from repro.experiments.workloads import DEFAULT_K, DEFAULT_QUERY_EDGES

DATASETS = ["yeast", "epinion", "dblp", "youtube"]


def firstk_adapter(k: int):
    def solve(graph, query):
        r = first_k_baseline(graph, query, k, node_budget=200_000)
        return r.coverage, len(r.embeddings), False

    return solve


def build_rows():
    rows = []
    for name in DATASETS:
        graph = bench_graph(name)
        queries = bench_queries(name, DEFAULT_QUERY_EDGES, queries_per_point(6))
        firstk = run_solver_batch(
            graph, queries, firstk_adapter(DEFAULT_K), DEFAULT_K, "firstk"
        )
        dsql = run_dsql_batch(graph, queries, dsql_config(DEFAULT_K))
        rows.append(
            [
                name,
                f"{firstk.mean_coverage:.1f}",
                f"{firstk.mean_ratio:.3f}",
                f"{dsql.mean_coverage:.1f}",
                f"{dsql.mean_ratio:.3f}",
            ]
        )
    return rows


def test_table3_firstk_coverage(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = render_table(
        ["dataset", "first-k coverage", "first-k ratio", "DSQL coverage", "DSQL ratio"],
        rows,
    )
    emit("table3_firstk_baseline", table)
    # Shape: on every dataset DSQL's mean coverage beats the first-k
    # baseline's (the paper's ratios 0.09-0.17 vs near-1 for DSQL).
    for row in rows:
        assert float(row[3]) >= float(row[1]), row[0]
    # And the baseline is far from optimal somewhere (paper: <= 0.17).
    assert min(float(r[2]) for r in rows) < 0.6
