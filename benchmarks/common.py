"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper. The
rendered report is printed (visible with ``pytest -s`` or in the benchmark
log) *and* written to ``benchmarks/out/<name>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the whole set of
paper-style artifacts on disk.

Environment knobs (see :mod:`repro.experiments.workloads`):

* ``REPRO_QUERIES`` — queries per configuration (default: small batches);
* ``REPRO_SCALE``   — multiplier on each dataset's bench scale.
"""

from __future__ import annotations

import functools
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.registry import get_profile, make_dataset
from repro.experiments.measurement import BatchSummary, QueryRecord
from repro.experiments.workloads import batch_size, bench_scale_override
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.queries.generator import query_set

OUT_DIR = Path(__file__).parent / "out"

DEFAULT_NODE_BUDGET = 300_000
"""Per-query search budget for benchmark runs (keeps tail queries bounded)."""


def emit(name: str, text: str) -> None:
    """Print a report block and persist it under ``benchmarks/out/``."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@functools.lru_cache(maxsize=None)
def bench_graph(name: str, seed: int = 0) -> LabeledGraph:
    """The dataset stand-in at its bench scale (cached per session)."""
    scale = get_profile(name).bench_scale * bench_scale_override()
    return make_dataset(name, scale=scale, seed=seed)


@functools.lru_cache(maxsize=None)
def bench_queries(name: str, num_edges: int, count: int, seed: int = 0):
    """A cached query batch on the named dataset's bench graph."""
    return tuple(query_set(bench_graph(name), num_edges, count, seed=seed))


def dsql_config(k: int, **overrides) -> DSQLConfig:
    """The default benchmark DSQL configuration (budgeted)."""
    overrides.setdefault("node_budget", DEFAULT_NODE_BUDGET)
    return DSQLConfig(k=k, **overrides)


def run_dsql_batch(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    config: DSQLConfig,
    label: str = "DSQL",
) -> BatchSummary:
    """Run DSQL over a batch, returning the measured summary.

    The per-graph index cache is prewarmed before timing starts, so the
    figures measure query latency rather than one-off index construction.
    """
    graph.index_cache()
    solver = DSQL(graph, config=config)
    summary = BatchSummary(label=label)
    for query in queries:
        start = time.perf_counter()
        result = solver.query(query)
        elapsed = time.perf_counter() - start
        summary.add(
            QueryRecord(
                seconds=elapsed,
                coverage=result.coverage,
                max_value=result.max_value(),
                num_embeddings=len(result),
                optimal=result.optimal,
                budget_exhausted=result.stats.budget_exhausted,
            )
        )
    return summary


def run_solver_batch(
    graph: LabeledGraph,
    queries: Sequence[QueryGraph],
    solve: Callable,
    k: int,
    label: str,
) -> BatchSummary:
    """Run an arbitrary ``solve(graph, query) -> (coverage, n, budget)``."""
    summary = BatchSummary(label=label)
    for query in queries:
        start = time.perf_counter()
        coverage, num, budget_hit = solve(graph, query)
        elapsed = time.perf_counter() - start
        summary.add(
            QueryRecord(
                seconds=elapsed,
                coverage=coverage,
                max_value=k * query.size,
                num_embeddings=num,
                budget_exhausted=budget_hit,
            )
        )
    return summary


def com_adapter(k: int, node_budget: int = DEFAULT_NODE_BUDGET) -> Callable:
    """COM as a ``run_solver_batch`` solve function."""
    from repro.baselines.com import com_search

    def solve(graph, query):
        r = com_search(graph, query, k, node_budget=node_budget)
        return r.coverage, len(r.embeddings), r.budget_exhausted

    return solve


def queries_per_point(default: int = 6) -> int:
    """Batch size per figure point (env-overridable)."""
    return batch_size(default)
