"""Section 5 micro-benchmarks — the optimization strategies on their own turf.

Complements the Figure 9 ablation with the paper's adversarial scenarios at
near-paper widths: Example 6's ~1000-wide useless fan (conflict tables) and
Example 7's quadratic re-scan (bad vertices), plus the §5.3/§5.4 strategies
applied to plain subgraph querying (the paper's closing remark of §5.4).
"""

from __future__ import annotations

from common import emit
from repro.core.config import DSQLConfig
from repro.core.phase1 import run_phase1
from repro.core.state import SearchStats
from repro.datasets.paper_figures import figure4, figure5
from repro.experiments.report import render_table
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.optimized import OptimizedQSearchEngine
from repro.isomorphism.qsearch import QSearchEngine


def _expansions(graph, query, config) -> int:
    stats = SearchStats()
    run_phase1(graph, query, config, CandidateIndex(graph, query), stats)
    return stats.nodes_expanded


def run_conflict_fixture():
    graph, query = figure4(width=300)
    return {
        "DSQL0": _expansions(graph, query, DSQLConfig.dsql0(5)),
        "DSQL2": _expansions(graph, query, DSQLConfig.dsql2(5)),
        "DSQL3": _expansions(graph, query, DSQLConfig.dsql3(5)),
    }


def run_bad_vertex_fixture():
    graph, query = figure5(width=60, teasers=30)
    return {
        "DSQL0": _expansions(graph, query, DSQLConfig.dsql0(5)),
        "DSQL2": _expansions(graph, query, DSQLConfig.dsql2(5)),
        "DSQL3": _expansions(graph, query, DSQLConfig.dsql3(5)),
    }


def test_sec5_conflict_tables(benchmark):
    counts = benchmark.pedantic(run_conflict_fixture, rounds=1, iterations=1)
    emit(
        "sec5_conflict_tables",
        render_table(
            ["variant", "node expansions"], [[k, v] for k, v in counts.items()]
        ),
    )
    # Example 6's claim: node skipping collapses the useless fan.
    assert counts["DSQL2"] * 10 < counts["DSQL0"]


def test_sec5_bad_vertices(benchmark):
    counts = benchmark.pedantic(run_bad_vertex_fixture, rounds=1, iterations=1)
    emit(
        "sec5_bad_vertices",
        render_table(
            ["variant", "node expansions"], [[k, v] for k, v in counts.items()]
        ),
    )
    # Example 7's claim: bad-vertex marks collapse the quadratic re-scan
    # precisely where conflict tables alone do nothing.
    assert counts["DSQL2"] == counts["DSQL0"]
    assert counts["DSQL3"] * 5 < counts["DSQL2"]


def test_sec5_strategies_on_plain_sq(benchmark):
    """§5.4's remark: the strategies also speed up plain subgraph querying."""
    graph, query = figure4(width=300)

    def run_pair():
        plain = QSearchEngine(graph, query)
        plain_count = sum(1 for _ in plain.embeddings())
        opt = OptimizedQSearchEngine(graph, query)
        opt_count = sum(1 for _ in opt.embeddings())
        return plain, plain_count, opt, opt_count

    plain, plain_count, opt, opt_count = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    emit(
        "sec5_plain_sq",
        f"plain SQ : {plain.nodes_expanded} expansions, {plain_count} embeddings\n"
        f"optimized: {opt.nodes_expanded} expansions, {opt_count} embeddings",
    )
    assert opt_count == plain_count  # exactness
    assert opt.nodes_expanded < plain.nodes_expanded  # pruning
