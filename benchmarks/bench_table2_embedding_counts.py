"""Table 2 — total number of embeddings and exhaustive-SQ query time.

Paper: with |E_Q| = 5, k = 40, counting *all* embeddings yields enormous
answer sets (123k average on Yeast, 36M on Youtube) and per-query times of
seconds to minutes; the largest datasets cannot finish at all.

Here: the same experiment on the stand-ins, with a node budget playing the
role of the paper's 5-hour wall; budget-exhausted queries are reported as
lower bounds (the paper's "-" rows).
"""

from __future__ import annotations

import statistics
import time

import pytest

from common import bench_graph, bench_queries, emit, queries_per_point
from repro.experiments.report import render_table
from repro.experiments.workloads import DEFAULT_QUERY_EDGES
from repro.isomorphism.qsearch import count_embeddings

DATASETS = ["yeast", "epinion", "dblp", "youtube"]
COUNT_BUDGET = 400_000


def run_dataset(name: str):
    graph = bench_graph(name)
    queries = bench_queries(name, DEFAULT_QUERY_EDGES, queries_per_point(6))
    counts, times, complete = [], [], 0
    for query in queries:
        start = time.perf_counter()
        count, finished = count_embeddings(graph, query, node_budget=COUNT_BUDGET)
        times.append(time.perf_counter() - start)
        counts.append(count)
        complete += finished
    return {
        "avg": statistics.fmean(counts),
        "worst": max(counts),
        "time": statistics.fmean(times),
        "complete": complete,
        "total": len(queries),
    }


def build_table():
    rows = []
    for name in DATASETS:
        r = run_dataset(name)
        flag = "" if r["complete"] == r["total"] else f" (>= , {r['total'] - r['complete']} capped)"
        rows.append(
            [name, f"{r['avg']:.1f}{flag}", r["worst"], f"{r['time'] * 1000:.1f}"]
        )
    return rows


def test_table2_embedding_counts(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = render_table(["dataset", "avg embeddings", "worst case", "ms/query"], rows)
    emit("table2_embedding_counts", table)
    # Shape: exhaustive enumeration returns far more than k = 40 answers on
    # average for at least one social-network dataset.
    avgs = [float(str(r[1]).split()[0]) for r in rows]
    assert max(avgs) > 40


def test_table2_single_query_count(benchmark):
    """Timed kernel: one exhaustive count on the DBLP stand-in."""
    graph = bench_graph("dblp")
    query = bench_queries("dblp", DEFAULT_QUERY_EDGES, 1)[0]
    benchmark(lambda: count_embeddings(graph, query, node_budget=COUNT_BUDGET))
