"""Objective-seam gate: the default objective must stay free, others useful.

The `repro.coverage.objectives` seam routes every coverage quantity through
an `Objective`, so the headline risk is a hidden per-query (or worse,
per-embedding) cost on the default path. This benchmark holds the seam to
its two promises on the DBLP stand-in workload and writes
``BENCH_objectives.json`` at the repo root:

* **A/A overhead gate** — two interleaved, identical ``objective="vertex"``
  series. The pre-seam code cannot run in-process, but the seam's vertex
  path *is* the pre-seam path (golden-gated bit-identical in
  ``tests/property/test_objective_equivalence.py``), so what remains to
  measure is that the dispatch indirection stays under the <5% bar relative
  to measurement noise: a real per-embedding regression would surface as an
  off-vs-off asymmetry far above the A/A floor.
* **Quality rows** — each adversarial scenario pack
  (:func:`repro.datasets.paper_figures.objective_packs`) run under both its
  own objective and plain ``vertex``, reporting both answers' coverage in
  the pack objective's units. The pack objective must strictly beat the
  vertex answer in its own units — that is the seam's reason to exist.

Also reports per-objective wall time on the shared workload (edge and
weighted-vertex pay for non-integer/composite elements; that cost is
allowed, only the default path is gated).

Runs standalone (``python benchmarks/bench_objectives.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.coverage.objectives import OBJECTIVE_NAMES, make_objective
from repro.datasets.paper_figures import objective_packs
from repro.experiments.report import render_table

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_objectives.json"

DATASET = "dblp"
NUM_QUERIES = 20
QUERY_EDGES = 4
K = 10
REPEATS = 5
AA_GATE_PCT = 5.0


def _run_batch(graph, queries, config):
    session = DSQL(graph, config=config)
    for query in queries:
        session.query(query)


def _pack_quality(pack):
    """Both answers on one pack, scored in the pack objective's units."""
    base = DSQL(pack.graph, config=dsql_config(pack.k)).query(pack.query)
    alt_config = dsql_config(
        pack.k,
        objective=pack.objective,
        vertex_weights=pack.vertex_weights,
    )
    alt = DSQL(pack.graph, config=alt_config).query(pack.query)
    scorer = make_objective(
        pack.objective,
        query=pack.query,
        graph=pack.graph,
        vertex_weights=pack.vertex_weights,
    )
    vertex_scorer = make_objective("vertex", query=pack.query)
    return {
        "pack": pack.name,
        "objective": pack.objective,
        "answers_differ": set(base.embeddings) != set(alt.embeddings),
        "objective_coverage": scorer.collection_coverage(alt.embeddings),
        "vertex_answer_scored_by_objective": scorer.collection_coverage(base.embeddings),
        "vertex_coverage_of_vertex_answer": vertex_scorer.collection_coverage(
            base.embeddings
        ),
        "vertex_coverage_of_objective_answer": vertex_scorer.collection_coverage(
            alt.embeddings
        ),
        "objective_max": scorer.max_coverage(pack.k),
    }


def run_objective_bench():
    graph = bench_graph(DATASET)
    graph.index_cache()  # prewarm: measure queries, not index construction
    queries = list(bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES))

    def batch(objective):
        config = dsql_config(K, objective=objective)
        return lambda: _run_batch(graph, queries, config)

    vertex = batch("vertex")
    vertex()  # warm every code path before timing

    # Interleave two identical vertex series (A/A) so drift hits both alike;
    # their ratio bounds what any seam overhead claim can resolve.
    series_a, series_b = [], []
    for _ in range(REPEATS):
        series_a.append(timeit.timeit(vertex, number=1))
        series_b.append(timeit.timeit(vertex, number=1))
    baseline = min(series_a)
    aa_pct = 100.0 * (min(series_b) - baseline) / baseline

    timings = {"vertex": baseline}
    for name in OBJECTIVE_NAMES:
        if name == "vertex":
            continue
        fn = batch(name)
        fn()  # warm
        timings[name] = min(timeit.repeat(fn, number=1, repeat=REPEATS))

    payload = {
        "dataset": DATASET,
        "batch": len(queries),
        "k": K,
        "repeats": REPEATS,
        "vertex_seconds": baseline,
        "aa_overhead_pct": aa_pct,
        "gate_aa_pct": AA_GATE_PCT,
        "objective_seconds": {
            name: timings[name] for name in OBJECTIVE_NAMES
        },
        "objective_overhead_pct": {
            name: 100.0 * (timings[name] - baseline) / baseline
            for name in OBJECTIVE_NAMES
        },
        "packs": [_pack_quality(pack) for pack in objective_packs().values()],
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    rows = [
        ["dataset / batch / k", f"{payload['dataset']} / {payload['batch']} / {payload['k']}"],
        ["vertex (s)", f"{payload['vertex_seconds']:.4f}"],
        ["vertex A/A overhead", f"{payload['aa_overhead_pct']:+.2f}% (gate < {payload['gate_aa_pct']:.0f}%)"],
    ]
    for name, pct in payload["objective_overhead_pct"].items():
        if name != "vertex":
            rows.append([f"{name} vs vertex", f"{pct:+.2f}%"])
    timing = render_table(["metric", "value"], rows)

    quality_rows = [
        [
            p["pack"],
            p["objective"],
            "yes" if p["answers_differ"] else "NO",
            f"{p['objective_coverage']:g}",
            f"{p['vertex_answer_scored_by_objective']:g}",
            f"{p['vertex_coverage_of_objective_answer']:g} / {p['vertex_coverage_of_vertex_answer']:g}",
        ]
        for p in payload["packs"]
    ]
    quality = render_table(
        [
            "pack",
            "objective",
            "differ",
            "obj cov (own answer)",
            "obj cov (vertex answer)",
            "vertex cov (own/vertex)",
        ],
        quality_rows,
    )
    return timing + "\n\n" + quality


def _assert_gates(payload):
    assert abs(payload["aa_overhead_pct"]) < AA_GATE_PCT
    for p in payload["packs"]:
        assert p["answers_differ"], f"pack {p['pack']} no longer diverges"
        # In its own units the pack objective must do at least as well as the
        # vertex answer (strictly better on the weighted pack; the edge pack
        # ties on edges while spending fewer vertices).
        assert p["objective_coverage"] >= p["vertex_answer_scored_by_objective"]
        assert p["objective_coverage"] <= p["objective_max"]


def test_objective_seam_overhead_and_quality(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_objective_bench, rounds=1, iterations=1)
    emit("objectives", _report(payload))
    _assert_gates(payload)


if __name__ == "__main__":
    out = run_objective_bench()
    print(_report(out))
    _assert_gates(out)
    print(f"\nwrote {OUT_PATH}")
