"""Live-mutation maintenance gates. Writes ``BENCH_mutation.json`` at repo root.

One claim from the live-mutation work is held to a number here:

* ``repair_speedup_x`` — on the DBLP stand-in under a 1% edge-churn batch
  (half removals of existing edges, half insertions of absent pairs),
  delta-repairing the warm :class:`GraphIndexCache` via ``apply_delta``
  must be at least 5x faster than constructing a fresh cache over the
  post-mutation graph. The backend mutation itself is applied outside both
  timed regions — it is common to either maintenance strategy, so the gate
  isolates exactly the cost that delta repair replaces.

The comparison is A/A interleaved: each round applies the churn batch to
the backend, times the repair, times a from-scratch rebuild of the *same*
post-mutation topology, then reverts with the inverse batch and compacts
so every round starts from an identical clean overlay. Min-of-rounds is
reported, which keeps the gate stable on a single CPU.

The timed comparison is also checked for structural identity
(``repair_mismatches`` must be 0): the repaired cache's label index, NS
signature masks, degrees, dense degree array, and label table must equal
the freshly built cache's — a fast-but-wrong repair cannot pass. The
end-to-end ``mutate_ops_per_s`` figure (full ``LabeledGraph.mutate``
batch: validation + backend apply + repair) is reported for context, not
gated.

Runs standalone (``python benchmarks/bench_mutation.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import random
import timeit
from pathlib import Path

import numpy as np

from repro.datasets.registry import make_dataset
from repro.experiments.report import render_table
from repro.graph.labeled_graph import LabeledGraph
from repro.indexes.graph_cache import GraphIndexCache

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_mutation.json"

DATASET = "dblp"
SCALE = 0.03
SEED = 2016
CHURN_FRACTION = 0.01
REPEATS = 7

REPAIR_GATE_X = 5.0


def churn_graph() -> LabeledGraph:
    """A private DBLP stand-in (``common.bench_graph`` is session-cached and
    must not be mutated out from under other benchmark modules)."""
    return make_dataset(DATASET, scale=SCALE, seed=SEED)


def churn_scripts(graph: LabeledGraph, rng: random.Random):
    """A 1%-of-edges churn batch and its exact inverse.

    Half the batch removes existing edges, half inserts currently-absent
    pairs; applying ``script`` then ``inverse`` restores the original
    topology, which is what lets the A/A loop re-run on identical state.
    """
    churn = max(2, int(graph.num_edges * CHURN_FRACTION))
    edges = list(graph.edges())
    rng.shuffle(edges)
    removes = edges[: churn // 2]
    n = graph.num_vertices
    adds = []
    while len(adds) < churn - len(removes):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v) and (u, v) not in adds:
            adds.append((u, v))
    script = [("remove_edge", u, v) for u, v in removes]
    script += [("add_edge", u, v) for u, v in adds]
    inverse = [("add_edge", u, v) for u, v in removes]
    inverse += [("remove_edge", u, v) for u, v in adds]
    return script, inverse


def _apply_to_backend(graph: LabeledGraph, ops) -> None:
    """Apply edge ops to the backend only (no cache repair) — the shared,
    untimed cost of either maintenance strategy."""
    backend = graph.backend
    for op in ops:
        if op[0] == "add_edge":
            backend.add_edge(op[1], op[2])
        else:
            backend.remove_edge(op[1], op[2])


def _cache_mismatches(repaired: GraphIndexCache, fresh: GraphIndexCache) -> int:
    """Count structural divergences between a repaired and a fresh cache."""
    checks = [
        repaired.label_index == fresh.label_index,
        repaired.signature_masks == fresh.signature_masks,
        repaired.degrees == fresh.degrees,
        np.array_equal(repaired.degree_array, fresh.degree_array),
        repaired.label_table == fresh.label_table,
    ]
    return sum(not ok for ok in checks)


def _repair_vs_rebuild(graph: LabeledGraph):
    """Interleaved A/A: apply_delta repair vs from-scratch cache build."""
    cache = graph.index_cache()
    script, inverse = churn_scripts(graph, random.Random(SEED))

    # Identity first (also warms every code path): the repaired cache must
    # equal a fresh build over the same post-mutation topology.
    _apply_to_backend(graph, script)
    cache.apply_delta(script)
    mismatches = _cache_mismatches(cache, GraphIndexCache(graph))
    _apply_to_backend(graph, inverse)
    cache.apply_delta(inverse)
    graph.compact()

    repair_s, rebuild_s = [], []
    for _ in range(REPEATS):
        _apply_to_backend(graph, script)
        repair_s.append(timeit.timeit(lambda: cache.apply_delta(script), number=1))
        rebuild_s.append(timeit.timeit(lambda: GraphIndexCache(graph), number=1))
        # apply_delta above advanced the log past the backend's real state
        # only in seq terms; revert the topology and compact so the next
        # round repairs an identical clean overlay under a fresh epoch.
        _apply_to_backend(graph, inverse)
        cache.apply_delta(inverse)
        graph.compact()

    repair = min(repair_s)
    rebuild = min(rebuild_s)
    return {
        "churn_ops": len(script),
        "repair_seconds": repair,
        "rebuild_seconds": rebuild,
        "repair_speedup_x": rebuild / repair,
        "repair_mismatches": mismatches,
    }


def _end_to_end_mutate(graph: LabeledGraph):
    """Full ``LabeledGraph.mutate`` batch throughput (context, not gated)."""
    graph.index_cache()
    script, inverse = churn_scripts(graph, random.Random(SEED + 1))

    def one_round():
        graph.mutate(script, compaction_threshold=None)

    one_round()
    graph.mutate(inverse, compaction_threshold=None)
    graph.compact()
    times = []
    for _ in range(REPEATS):
        times.append(timeit.timeit(one_round, number=1))
        graph.mutate(inverse, compaction_threshold=None)
        graph.compact()
    best = min(times)
    return {
        "mutate_batch_seconds": best,
        "mutate_ops_per_s": len(script) / best,
    }


def run_mutation_bench():
    graph = churn_graph()
    payload = {
        "dataset": DATASET,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "churn_fraction": CHURN_FRACTION,
        "repeats": REPEATS,
        "gate_repair_speedup_x": REPAIR_GATE_X,
    }
    payload.update(_repair_vs_rebuild(graph))
    payload.update(_end_to_end_mutate(graph))
    payload["mismatches"] = payload["repair_mismatches"]
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    rows = [
        ["graph", f"{payload['vertices']}v / {payload['edges']}e ({payload['dataset']})"],
        ["churn batch", f"{payload['churn_ops']} ops ({100 * payload['churn_fraction']:.0f}% of edges)"],
        [
            "repair / rebuild",
            f"{1e3 * payload['repair_seconds']:.2f}ms / {1e3 * payload['rebuild_seconds']:.2f}ms",
        ],
        ["repair speedup", f"{payload['repair_speedup_x']:.1f}x (gate >= {REPAIR_GATE_X:.0f}x)"],
        ["end-to-end mutate", f"{payload['mutate_ops_per_s']:,.0f} ops/s"],
        ["mismatches", str(payload["mismatches"])],
    ]
    return render_table(["metric", "value"], rows)


def test_mutation_maintenance(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_mutation_bench, rounds=1, iterations=1)
    emit("mutation", _report(payload))
    assert payload["mismatches"] == 0
    assert payload["repair_speedup_x"] >= REPAIR_GATE_X


if __name__ == "__main__":
    out = run_mutation_bench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
