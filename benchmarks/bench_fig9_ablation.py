"""Figure 9 — ablation of the Section 5 optimization strategies.

Paper (Appendix B.4): DSQL0 (localized search only) is much slower than
every optimized variant; the single-embedding strategy (DSQL1) recovers
most of the speed on sparse graphs; the skipping strategies (DSQL2/3,
DSQLh) matter most on dense graphs (Human).
"""

from __future__ import annotations

import pytest

from common import bench_graph, bench_queries, emit, queries_per_point, run_dsql_batch
from repro.core.config import VARIANTS, variant_config
from repro.experiments.report import render_series
from repro.experiments.workloads import DEFAULT_K, DEFAULT_QUERY_EDGES, FIG9_DATASETS

VARIANT_ORDER = ["DSQL0", "DSQL1", "DSQL2", "DSQL3", "DSQL", "DSQLh"]


def sweep(name: str):
    graph = bench_graph(name)
    queries = bench_queries(name, DEFAULT_QUERY_EDGES, queries_per_point(5))
    ms, cov, expanded = {}, {}, {}
    for variant in VARIANT_ORDER:
        config = variant_config(variant, DEFAULT_K, node_budget=400_000)
        summary = run_dsql_batch(graph, queries, config, label=variant)
        ms[variant] = summary.mean_millis
        cov[variant] = summary.mean_coverage
        expanded[variant] = summary.mean_embeddings
    return ms, cov


@pytest.mark.parametrize("name", FIG9_DATASETS)
def test_fig9_ablation(benchmark, name):
    ms, cov = benchmark.pedantic(sweep, args=(name,), rounds=1, iterations=1)
    emit(
        f"fig9_{name}_ablation",
        render_series(
            "variant",
            VARIANT_ORDER,
            {
                "ms/query": [ms[v] for v in VARIANT_ORDER],
                "coverage": [cov[v] for v in VARIANT_ORDER],
            },
            value_format="{:.2f}",
        ),
    )
    # Shape: every optimized variant is at least as fast as DSQL0 (within
    # noise), and the full DSQL is not slower than DSQL0.
    assert ms["DSQL"] <= ms["DSQL0"] * 1.3, (name, ms)
    # Shape: the pruning-only variants preserve DSQL0's coverage.
    assert abs(cov["DSQL2"] - cov["DSQL0"]) < 1e-6
    assert abs(cov["DSQL3"] - cov["DSQL0"]) < 1e-6


def test_fig9_full_vs_dsql0_kernel(benchmark):
    """Timed kernel: the full-DSQL single query used for ablation ratios."""
    from repro.core.dsql import DSQL

    graph = bench_graph("human")
    query = bench_queries("human", DEFAULT_QUERY_EDGES, 1)[0]
    solver = DSQL(graph, config=variant_config("DSQL", DEFAULT_K, node_budget=400_000))
    benchmark(lambda: solver.query(query))
