"""Figure 7 — effects of the label-set size (label density).

Paper: on DBLP and Youtube, sweeping |Sigma|/|V| from 0.05e-3 to 0.2e-3 at
k = 40, |Q| = 5: coverage stays close to MAX throughout; as density rises
the approximation ratio first dips (matches get scarcer, DSQL climbs
levels) then recovers (few matches -> provable optimality); runtime first
rises then falls.

Here: the same sweep on fixed stand-in topologies relabeled per density.
Because the bench graphs are smaller than the real ones, the interesting
regime sits at proportionally higher densities; the sweep uses the paper's
densities scaled by the vertex-count ratio so the label-set *sizes* match
the paper's regime.
"""

from __future__ import annotations

import pytest

from common import bench_graph, dsql_config, emit, queries_per_point, run_dsql_batch
from repro.datasets.labels import relabel_to_density
from repro.experiments.report import render_series
from repro.experiments.workloads import DEFAULT_K, LABEL_DENSITY_GRID
from repro.graph.builder import relabel
from repro.queries.generator import query_set

DATASETS = ["dblp", "youtube"]
# The paper sweeps label-set sizes ~16..220 on DBLP (0.05e-3 * 317k etc.);
# match that label-count range on the scaled topology.
PAPER_REFERENCE_V = {"dblp": 317_080, "youtube": 1_100_000}


def sweep(name: str):
    base = bench_graph(name)
    ratio = PAPER_REFERENCE_V[name] / base.num_vertices
    series = {"coverage": [], "MAX": [], "ratio": [], "ms": []}
    labels_used = []
    for density in LABEL_DENSITY_GRID:
        scaled_density = density * ratio
        graph = relabel(
            base, relabel_to_density(base.num_vertices, scaled_density, seed=17)
        )
        labels_used.append(len(graph.label_set()))
        queries = query_set(graph, 5, queries_per_point(5), seed=23)
        summary = run_dsql_batch(graph, queries, dsql_config(DEFAULT_K))
        series["coverage"].append(summary.mean_coverage)
        series["MAX"].append(summary.mean_max)
        series["ratio"].append(summary.mean_ratio)
        series["ms"].append(summary.mean_millis)
    return series, labels_used


@pytest.mark.parametrize("name", DATASETS)
def test_fig7_label_density(benchmark, name):
    (series, labels_used) = benchmark.pedantic(sweep, args=(name,), rounds=1, iterations=1)
    xs = [f"{d:.2e}({n})" for d, n in zip(LABEL_DENSITY_GRID, labels_used)]
    emit(f"fig7_{name}_label_density", render_series("density(|Sigma|)", xs, series))
    # Shape: coverage stays close to MAX across the sweep (paper: "the
    # coverage of DSQL is always close to MAX").
    for cov, mx, ratio in zip(series["coverage"], series["MAX"], series["ratio"]):
        assert ratio >= 0.5, (name, cov, mx)
    # Shape: the sweep actually changes the label alphabet.
    assert labels_used == sorted(labels_used)
    assert labels_used[-1] > labels_used[0]
