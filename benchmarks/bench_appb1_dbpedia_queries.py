"""Appendix B.1 — the DBpedia politician/scientist/physicist case study.

Paper: on occupation-labeled DBpedia, the triangle query (a politician
connected to a scientist and a physicist who also know each other) returns
40 diversified historical triangles (Nixon/Paine/Blagonravov, ...).

Here: the same query on the occupation-flavoured stand-in; the reproduced
claims are that DSQL fills its k slots with near-disjoint triangles and
beats the first-k baseline's coverage.
"""

from __future__ import annotations

from collections import Counter

from common import emit
from repro.baselines.firstk import first_k_baseline
from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.examples import dbpedia_flavor

K = 40


def run_case_study():
    graph, query = dbpedia_flavor(num_people=4000, seed=11)
    dsql = DSQL(graph, config=DSQLConfig(k=K, node_budget=500_000)).query(query)
    firstk = first_k_baseline(graph, query, K, node_budget=500_000)
    return graph, query, dsql, firstk


def test_appb1_dbpedia_case_study(benchmark):
    graph, query, dsql, firstk = benchmark.pedantic(
        run_case_study, rounds=1, iterations=1
    )
    reuse = Counter(v for emb in dsql.embeddings for v in emb)
    max_reuse = max(reuse.values()) if reuse else 0
    lines = [
        f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}",
        f"DSQL   : coverage {dsql.coverage} over {len(dsql)} triangles",
        f"first-k: coverage {firstk.coverage} over {len(firstk.embeddings)} triangles",
        f"max person reuse in DSQL answer: {max_reuse}",
        "sample triangles: "
        + "; ".join(
            "-".join(f"{graph.label(v)}#{v}" for v in emb)
            for emb in dsql.embeddings[:3]
        ),
    ]
    emit("appb1_dbpedia_case_study", "\n".join(lines))
    assert dsql.coverage >= firstk.coverage
    # Diversity shape: no person appears in more than a few of the k answers.
    assert max_reuse <= 3
