"""Appendix B.2 (second half) — multi-scan SWAPα and the schedule payoff.

Paper: "We have compared the coverage results from multiple scans. The
results show that the coverage improvement is not big with additional
scans. Note that the approximation ratios are above 0.5, the asymptotic
theoretical bound."

Here: on a shared embedding stream from the DBLP stand-in, run SWAPα for
1..4 scans with the Theorem-5 α schedule and report coverage per scan, the
greedy and exact references, and the realized ratios.
"""

from __future__ import annotations

from common import bench_graph, bench_queries, emit, queries_per_point
from repro.baselines.enumerate_then_cover import generate_all
from repro.coverage.exact import optimal_coverage
from repro.coverage.greedy import greedy_max_coverage
from repro.coverage.core import coverage as coverage_of
from repro.coverage.multiscan import swap_alpha_multiscan
from repro.exceptions import ConfigError
from repro.experiments.report import render_table
from repro.experiments.workloads import DEFAULT_QUERY_EDGES

K = 20
GENERATION_BUDGET = 60_000


def run_study():
    graph = bench_graph("dblp")
    queries = bench_queries("dblp", DEFAULT_QUERY_EDGES, queries_per_point(4), seed=5)
    rows = []
    for i, query in enumerate(queries):
        stream = generate_all(graph, query, node_budget=GENERATION_BUDGET)
        if len(stream) < K:
            continue
        single = swap_alpha_multiscan(stream, K, num_scans=1)
        multi = swap_alpha_multiscan(stream, K, num_scans=4)
        greedy = coverage_of(greedy_max_coverage(stream, K))
        try:
            # Exact reference on a truncated stream: each B&B node costs
            # O(n*q), so both the input size and the node cap stay small.
            opt, _ = optimal_coverage(stream[:300], K, max_embeddings=300, max_nodes=5_000)
        except ConfigError:
            opt = None
        rows.append(
            [
                f"q{i}",
                len(stream),
                single.coverage,
                multi.coverage,
                greedy,
                opt if opt is not None else "-",
            ]
        )
    return rows


def test_appb2_multiscan(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = render_table(
        ["query", "#embeddings", "SWAPa x1", "SWAPa x4", "Greedy", "OPT(truncated)"],
        rows,
    )
    emit("appb2_multiscan", table)
    assert rows, "no query produced a large enough stream"
    for row in rows:
        single, multi, greedy = row[2], row[3], row[4]
        # Shape: extra scans never hurt, and the improvement is modest.
        assert multi >= single
        assert multi - single <= max(5, 0.2 * single)
        # Shape: greedy is an upper reference for the one-pass result.
        assert greedy >= single - 2
