"""Section 7.2 — the IMDB case-study query (DSQL 150 vs COM 97).

Paper: on real IMDB, the team-style query (people co-appearing in series)
gives DSQL coverage 150 vs COM's 97 at k = 40 — DSQL retrieves casts COM
misses ("Prison Break").

Here: the same query shape on the affiliation-flavoured stand-in; the claim
reproduced is the *direction and rough magnitude* of the gap.
"""

from __future__ import annotations

from common import emit
from repro.baselines.com import com_search
from repro.core.config import DSQLConfig
from repro.core.dsql import DSQL
from repro.datasets.examples import imdb_flavor

K = 40


def run_case_study():
    graph, query = imdb_flavor(num_people=4000, num_series=700, seed=7)
    dsql = DSQL(graph, config=DSQLConfig(k=K, node_budget=500_000)).query(query)
    com = com_search(graph, query, K, node_budget=500_000)
    return graph, query, dsql, com


def test_sec72_imdb_case_study(benchmark):
    graph, query, dsql, com = benchmark.pedantic(run_case_study, rounds=1, iterations=1)
    lines = [
        f"graph: |V|={graph.num_vertices} |E|={graph.num_edges}",
        f"query: {query.size} nodes / {query.num_edges} edges",
        f"DSQL coverage: {dsql.coverage} ({len(dsql)} embeddings)",
        f"COM  coverage: {com.coverage} ({len(com.embeddings)} embeddings)",
        f"gap: {dsql.coverage / max(1, com.coverage):.2f}x (paper: 150/97 = 1.55x)",
    ]
    emit("sec72_imdb_case_study", "\n".join(lines))
    # Shape: DSQL's coverage >= COM's on the case-study query.
    assert dsql.coverage >= com.coverage
    # And the diversified teams reuse far fewer people than first-k style
    # answers would: each embedding brings mostly fresh vertices.
    assert dsql.coverage >= 0.6 * sum(len(set(e)) for e in dsql.embeddings)
