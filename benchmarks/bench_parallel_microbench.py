"""Parallel batch-executor micro-benchmark: serial vs thread vs process.

One ≥20-query batch on the DBLP stand-in is answered by
:class:`~repro.parallel.BatchExecutor` under each strategy; per-strategy
wall-clock and the cross-strategy result check are written to
``BENCH_parallel.json`` at the repo root.

Two gates:

* **correctness** (always) — every strategy's results must be bit-identical
  to serial ``query_many``, the executor's headline guarantee;
* **throughput** (only when ``os.cpu_count() >= 2``) — the best parallel
  strategy must not be dramatically slower than serial. On a single-core
  box parallelism can only add dispatch overhead, so no timing claim is
  made there (the measured numbers are still recorded).

Runs standalone (``python benchmarks/bench_parallel_microbench.py``) or
under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import timeit
from pathlib import Path

from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.experiments.report import render_table
from repro.parallel.executor import STRATEGIES, BatchExecutor, default_jobs

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

DATASET = "dblp"
NUM_QUERIES = 24
QUERY_EDGES = 4
K = 10
REPEATS = 3


def _batch(graph):
    # Duplicate a third of the workload so the memo/replay path is exercised
    # alongside fresh searches, as in a realistic query stream.
    distinct = list(bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES - NUM_QUERIES // 3))
    return (distinct + distinct)[:NUM_QUERIES]


def run_microbench():
    graph = bench_graph(DATASET)
    graph.index_cache()  # prewarm: measure execution, not index construction
    queries = _batch(graph)
    config = dsql_config(K)

    reference = DSQL(graph, config=config).query_many(queries)
    ref_dicts = [r.to_dict() for r in reference]

    # At least two workers even on a single-core box: jobs=1 short-circuits
    # to the serial path, and the correctness gate must exercise the real
    # pool dispatch (the speedup gate stays cpu-count aware regardless).
    jobs = max(2, default_jobs())

    strategies = {}
    for strategy in STRATEGIES:
        def run_once(strategy=strategy):
            executor = BatchExecutor(
                DSQL(graph, config=config), strategy=strategy, jobs=jobs
            )
            return executor.run(queries)

        results = run_once()
        identical = [r.to_dict() for r in results] == ref_dicts
        seconds = min(timeit.repeat(run_once, number=1, repeat=REPEATS))
        strategies[strategy] = {
            "seconds": seconds,
            "ms_per_query": 1e3 * seconds / len(queries),
            "identical_to_serial": identical,
        }

    serial = strategies["serial"]["seconds"]
    payload = {
        "dataset": DATASET,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "batch": len(queries),
        "k": K,
        "cpus": os.cpu_count() or 1,
        "jobs": jobs,
        "strategies": strategies,
        "best_parallel_speedup": serial
        / min(strategies[s]["seconds"] for s in ("thread", "process")),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    rows = [
        ["dataset", payload["dataset"]],
        ["batch / k", f"{payload['batch']} / {payload['k']}"],
        ["cpus / jobs", f"{payload['cpus']} / {payload['jobs']}"],
    ]
    for name, data in payload["strategies"].items():
        rows.append(
            [
                f"{name} (s, ms/query)",
                f"{data['seconds']:.4f}  {data['ms_per_query']:.2f}"
                + ("" if data["identical_to_serial"] else "  MISMATCH"),
            ]
        )
    rows.append(["best parallel speedup", f"{payload['best_parallel_speedup']:.2f}x"])
    return render_table(["metric", "value"], rows)


def test_parallel_microbench(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_microbench, rounds=1, iterations=1)
    emit("parallel_microbench", _report(payload))
    assert payload["batch"] >= 20
    # Hard gate: every strategy reproduces serial query_many exactly.
    for name, data in payload["strategies"].items():
        assert data["identical_to_serial"], f"{name} diverged from serial"
    # Timing claim only where parallel hardware exists to back it.
    if payload["cpus"] >= 2:
        assert payload["best_parallel_speedup"] >= 0.8


if __name__ == "__main__":
    out = run_microbench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
