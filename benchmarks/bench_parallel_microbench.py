"""Parallel batch-executor micro-benchmark: serial vs thread vs process.

One ≥24-query batch on the DBLP stand-in is answered by
:class:`~repro.parallel.BatchExecutor` under each strategy; per-strategy
wall-clock, the cross-strategy result check, and — for the process
strategy — the persistent pool's per-worker dispatch rows are written to
``BENCH_parallel.json`` at the repo root.

The process strategy is timed against the *persistent* worker pool: one
executor lives across every repeat, so the measurement covers warm-pool
dispatch over shared-memory graph segments, not per-batch fork +
graph-pickle cost. The session's query memo is cleared between repeats so
each timed run performs real searches rather than memo replay.

Two gates:

* **correctness** (always) — every strategy's results must be bit-identical
  to serial ``query_many``, the executor's headline guarantee;
* **speedup** (recorded in ``speedup_gate``) — ``"enforced"`` on machines
  with ``os.cpu_count() >= 2``, where the best parallel strategy must beat
  serial by at least ``SPEEDUP_FLOOR``x; ``"skipped_1cpu"`` on a
  single-core box, where parallelism can only add dispatch overhead and no
  timing claim is honest (the measured numbers are still recorded).

Runs standalone (``python benchmarks/bench_parallel_microbench.py``) or
under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.experiments.report import render_table
from repro.parallel.executor import STRATEGIES, BatchExecutor, default_jobs

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

DATASET = "dblp"
NUM_QUERIES = 24
QUERY_EDGES = 4
K = 10
REPEATS = 3
SPEEDUP_FLOOR = 1.7


def _batch(graph):
    # Duplicate a third of the workload so the memo/replay path is exercised
    # alongside fresh searches, as in a realistic query stream.
    distinct = list(bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES - NUM_QUERIES // 3))
    return (distinct + distinct)[:NUM_QUERIES]


def _time_strategy(graph, config, queries, strategy, jobs, ref_dicts):
    """Time REPEATS runs through one long-lived executor (pool persists)."""
    session = DSQL(graph, config=config)
    entry = {"identical_to_serial": True}
    with BatchExecutor(session, strategy=strategy, jobs=jobs) as executor:
        results = executor.run(queries)  # warm-up: pool fork + worker attach
        entry["identical_to_serial"] = [r.to_dict() for r in results] == ref_dicts
        seconds = []
        for _ in range(REPEATS):
            session._query_cache.clear()  # re-search, don't replay the memo
            start = time.perf_counter()
            executor.run(queries)
            seconds.append(time.perf_counter() - start)
        entry["seconds"] = min(seconds)
        entry["ms_per_query"] = 1e3 * entry["seconds"] / len(queries)
        report = executor.last_report
        if strategy == "process":
            entry["per_worker"] = [list(row) for row in report.per_worker]
            entry["chunks_retried"] = report.chunks_retried
            pool = executor.pool
            entry["shared_bytes"] = pool.shared_nbytes if pool is not None else 0
    return entry


def run_microbench():
    graph = bench_graph(DATASET)
    graph.index_cache()  # prewarm: measure execution, not index construction
    queries = _batch(graph)
    config = dsql_config(K)

    reference = DSQL(graph, config=config).query_many(queries)
    ref_dicts = [r.to_dict() for r in reference]

    # At least two workers even on a single-core box: jobs=1 short-circuits
    # to the serial path, and the correctness gate must exercise the real
    # pool dispatch (the speedup gate stays cpu-count aware regardless).
    jobs = max(2, default_jobs())
    cpus = os.cpu_count() or 1

    strategies = {
        strategy: _time_strategy(graph, config, queries, strategy, jobs, ref_dicts)
        for strategy in STRATEGIES
    }

    serial = strategies["serial"]["seconds"]
    payload = {
        "dataset": DATASET,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "batch": len(queries),
        "k": K,
        "cpus": cpus,
        "jobs": jobs,
        "speedup_gate": "enforced" if cpus >= 2 else "skipped_1cpu",
        "speedup_floor": SPEEDUP_FLOOR,
        "strategies": strategies,
        "best_parallel_speedup": serial
        / min(strategies[s]["seconds"] for s in ("thread", "process")),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    rows = [
        ["dataset", payload["dataset"]],
        ["batch / k", f"{payload['batch']} / {payload['k']}"],
        ["cpus / jobs", f"{payload['cpus']} / {payload['jobs']}"],
        ["speedup gate", payload["speedup_gate"]],
    ]
    for name, data in payload["strategies"].items():
        rows.append(
            [
                f"{name} (s, ms/query)",
                f"{data['seconds']:.4f}  {data['ms_per_query']:.2f}"
                + ("" if data["identical_to_serial"] else "  MISMATCH"),
            ]
        )
    process = payload["strategies"]["process"]
    rows.append(
        [
            "process per-worker (pid:chunks)",
            " ".join(f"{pid}:{n}" for pid, n in process.get("per_worker", [])) or "-",
        ]
    )
    rows.append(["shared graph bytes", str(process.get("shared_bytes", 0))])
    rows.append(["best parallel speedup", f"{payload['best_parallel_speedup']:.2f}x"])
    return render_table(["metric", "value"], rows)


def test_parallel_microbench(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_microbench, rounds=1, iterations=1)
    emit("parallel_microbench", _report(payload))
    assert payload["batch"] >= 20
    # Hard gate: every strategy reproduces serial query_many exactly.
    for name, data in payload["strategies"].items():
        assert data["identical_to_serial"], f"{name} diverged from serial"
    # The persistent pool must actually spread work across workers.
    assert payload["strategies"]["process"]["per_worker"]
    assert payload["strategies"]["process"]["shared_bytes"] > 0
    # Timing claim only where parallel hardware exists to back it.
    if payload["speedup_gate"] == "enforced":
        assert payload["best_parallel_speedup"] >= SPEEDUP_FLOOR
    else:
        print(
            "speedup gate skipped: single-CPU machine "
            f"(cpus={payload['cpus']}); parallel dispatch can only add "
            "overhead here, numbers recorded without a claim"
        )


if __name__ == "__main__":
    out = run_microbench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
