"""Backend-seam micro-benchmarks: scalar edge probes and candidate builds.

Two claims of the CSR + shared-index-cache refactor are measured on the DBLP
stand-in and written to ``BENCH_backend.json`` at the repo root:

* ``has_edge`` — the CSR packed-key probe must be no slower than the seed's
  adjacency-set membership probe (the hot operation of the backtracking join
  test);
* ``candidate_build`` — building :class:`CandidateIndex` for a batch of
  queries against one shared :class:`GraphIndexCache` must amortize to at
  least 2x faster than rebuilding the per-graph index for every query (the
  seed behaviour).

Runs standalone (``python benchmarks/bench_backend_microbench.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import random
import timeit
from pathlib import Path

from common import bench_graph, bench_queries, emit
from repro.experiments.report import render_table
from repro.graph.csr import SetBackend
from repro.indexes.candidates import CandidateIndex
from repro.indexes.graph_cache import GraphIndexCache

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_backend.json"

DATASET = "dblp"
NUM_QUERIES = 12
QUERY_EDGES = 5
PROBE_PAIRS = 4096
REPEATS = 5


def _probe_pairs(graph, count: int, seed: int = 0):
    """Half real edges, half random pairs — both probe branches exercised."""
    rng = random.Random(seed)
    n = graph.num_vertices
    edges = list(graph.edges())
    pairs = [edges[rng.randrange(len(edges))] for _ in range(count // 2)]
    pairs += [(rng.randrange(n), rng.randrange(n)) for _ in range(count - len(pairs))]
    rng.shuffle(pairs)
    return pairs


def time_has_edge(graph):
    """Best-of-repeats seconds for one pass over the probe pairs, per probe."""
    pairs = _probe_pairs(graph, PROBE_PAIRS)
    csr_probe = graph.backend.has_edge
    seed_backend = SetBackend(graph.backend.labels, graph.edges())
    set_probe = seed_backend.has_edge

    def run(probe):
        for u, v in pairs:
            probe(u, v)

    csr = min(timeit.repeat(lambda: run(csr_probe), number=1, repeat=REPEATS))
    seed = min(timeit.repeat(lambda: run(set_probe), number=1, repeat=REPEATS))
    return {
        "pairs": len(pairs),
        "csr_seconds": csr,
        "seed_set_seconds": seed,
        "csr_ns_per_probe": 1e9 * csr / len(pairs),
        "seed_ns_per_probe": 1e9 * seed / len(pairs),
        "ratio_csr_over_seed": csr / seed,
    }


def time_candidate_build(graph, queries):
    """Total seconds to build every query's CandidateIndex, two regimes.

    ``rebuild`` recomputes the per-graph index for each query — the seed
    behaviour, where label/signature state was derived per query. ``shared``
    builds one :class:`GraphIndexCache` and restricts per query.
    """

    def rebuild_all():
        for query in queries:
            fresh = GraphIndexCache(graph)
            CandidateIndex(graph, query, cache=fresh)

    def shared_all():
        shared = GraphIndexCache(graph)
        for query in queries:
            CandidateIndex(graph, query, cache=shared)

    rebuild = min(timeit.repeat(rebuild_all, number=1, repeat=REPEATS))
    shared = min(timeit.repeat(shared_all, number=1, repeat=REPEATS))
    return {
        "queries": len(queries),
        "rebuild_seconds": rebuild,
        "shared_seconds": shared,
        "speedup": rebuild / shared,
    }


def run_microbench():
    graph = bench_graph(DATASET)
    queries = bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES)
    payload = {
        "dataset": DATASET,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "has_edge": time_has_edge(graph),
        "candidate_build": time_candidate_build(graph, queries),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    he = payload["has_edge"]
    cb = payload["candidate_build"]
    return render_table(
        ["metric", "value"],
        [
            ["dataset", payload["dataset"]],
            ["|V| / |E|", f"{payload['num_vertices']} / {payload['num_edges']}"],
            ["has_edge csr (ns/probe)", f"{he['csr_ns_per_probe']:.1f}"],
            ["has_edge seed set (ns/probe)", f"{he['seed_ns_per_probe']:.1f}"],
            ["has_edge ratio (csr/seed)", f"{he['ratio_csr_over_seed']:.3f}"],
            [f"candidate build x{cb['queries']} rebuild (s)", f"{cb['rebuild_seconds']:.4f}"],
            [f"candidate build x{cb['queries']} shared (s)", f"{cb['shared_seconds']:.4f}"],
            ["candidate build speedup", f"{cb['speedup']:.2f}x"],
        ],
    )


def test_backend_microbench(benchmark):
    payload = benchmark.pedantic(run_microbench, rounds=1, iterations=1)
    emit("backend_microbench", _report(payload))
    # The refactor's headline claims, as hard gates.
    assert payload["candidate_build"]["queries"] >= 10
    assert payload["candidate_build"]["speedup"] >= 2.0
    # Allow timer noise; the probe must not regress meaningfully.
    assert payload["has_edge"]["ratio_csr_over_seed"] <= 1.2


if __name__ == "__main__":
    out = run_microbench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
