"""Benchmark-suite configuration.

The suite is runnable two ways:

* ``pytest benchmarks/ --benchmark-only`` — timed runs via pytest-benchmark;
* ``pytest benchmarks/`` — the same experiments as plain tests (each bench
  function asserts the paper's qualitative *shape*, e.g. "DSQL covers at
  least as much as COM").

Reports land in ``benchmarks/out/`` either way.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow `import common` from bench modules regardless of invocation cwd.
sys.path.insert(0, str(Path(__file__).parent))
