"""Observability overhead gate: instrumentation must be ~free when disabled.

The instrumentation layer's design rule is that *no* metrics/tracing/hook
code runs on a per-expansion path — disabled sessions pay only a handful of
``is None`` checks per query. This benchmark holds the layer to that claim
on the DBLP stand-in workload and writes ``BENCH_observability.json`` at
the repo root:

* ``disabled_overhead_pct`` — an interleaved A/A measurement of the
  *uninstrumented* path (two identical disabled runs). The old
  pre-instrumentation code cannot run in-process, so this bounds the
  measurement noise floor the <5% gate is asserted against: if the disabled
  path carried real per-expansion work, it would also show up here as an
  off-vs-off asymmetry far above noise.
* ``enabled_overhead_pct`` — disabled vs fully enabled (metrics + JSONL
  tracer + hooks), quantifying what turning everything on costs.

Gates: ``disabled_overhead_pct`` < 5 (the ISSUE's bar), and the fully
enabled path stays within a generous 75% of disabled (it does per-level and
per-embedding work by design).

Runs standalone (``python benchmarks/bench_observability_overhead.py``) or
under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import timeit
from pathlib import Path

from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.experiments.report import render_table
from repro.observability import Instrumentation, JsonlSink, ProfilingHooks, Tracer

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"
TRACE_PATH = Path(__file__).resolve().parent / "out" / "bench_observability_trace.jsonl"

DATASET = "dblp"
NUM_QUERIES = 20
QUERY_EDGES = 4
K = 10
REPEATS = 5
DISABLED_GATE_PCT = 5.0
ENABLED_GATE_PCT = 75.0


class _CountingHooks(ProfilingHooks):
    """Minimal real subscriber, so hook dispatch is measured, not elided."""

    def __init__(self):
        self.calls = 0

    def on_level_start(self, phase, level, query_id=None):
        self.calls += 1

    def on_embedding_emitted(self, phase, level, embedding, query_id=None):
        self.calls += 1


def _run_batch(graph, queries, config, instrumentation):
    session = DSQL(graph, config=config, instrumentation=instrumentation)
    for query in queries:
        session.query(query)


def _best_of(fn, repeats=REPEATS):
    """Min-of-repeats wall time: the least-noise estimate of the true cost."""
    return min(timeit.repeat(fn, number=1, repeat=repeats))


def run_overhead_bench():
    graph = bench_graph(DATASET)
    graph.index_cache()  # prewarm: measure queries, not index construction
    queries = list(bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES))
    config = dsql_config(K)

    def disabled():
        _run_batch(graph, queries, config, None)

    TRACE_PATH.parent.mkdir(exist_ok=True)
    TRACE_PATH.write_text("", encoding="utf-8")
    hooks = _CountingHooks()
    instr = Instrumentation(tracer=Tracer(JsonlSink(TRACE_PATH)), hooks=hooks)

    def enabled():
        _run_batch(graph, queries, config, instr)

    # Warm every code path (and the query memo inside each fresh session is
    # unused across sessions, so runs stay comparable).
    disabled()
    enabled()

    # Interleave two disabled series (A/A) so drift hits both samples alike;
    # their ratio is the noise floor of this measurement methodology.
    series_a, series_b = [], []
    for _ in range(REPEATS):
        series_a.append(timeit.timeit(disabled, number=1))
        series_b.append(timeit.timeit(disabled, number=1))
    baseline = min(series_a)
    disabled_pct = 100.0 * (min(series_b) - baseline) / baseline

    enabled_seconds = _best_of(enabled)
    enabled_pct = 100.0 * (enabled_seconds - baseline) / baseline

    instr.close()
    events = sum(1 for line in TRACE_PATH.read_text(encoding="utf-8").splitlines() if line)

    payload = {
        "dataset": DATASET,
        "batch": len(queries),
        "k": K,
        "repeats": REPEATS,
        "disabled_seconds": baseline,
        "disabled_overhead_pct": disabled_pct,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_pct": enabled_pct,
        "trace_events": events,
        "hook_calls": hooks.calls,
        "gate_disabled_pct": DISABLED_GATE_PCT,
        "gate_enabled_pct": ENABLED_GATE_PCT,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    rows = [
        ["dataset / batch / k", f"{payload['dataset']} / {payload['batch']} / {payload['k']}"],
        ["disabled (s)", f"{payload['disabled_seconds']:.4f}"],
        ["disabled A/A overhead", f"{payload['disabled_overhead_pct']:+.2f}%"],
        ["enabled (s)", f"{payload['enabled_seconds']:.4f}"],
        ["enabled overhead", f"{payload['enabled_overhead_pct']:+.2f}%"],
        ["trace events / hook calls", f"{payload['trace_events']} / {payload['hook_calls']}"],
    ]
    return render_table(["metric", "value"], rows)


def test_observability_overhead(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_overhead_bench, rounds=1, iterations=1)
    emit("observability_overhead", _report(payload))
    # The instrumented run must actually have observed something, or the
    # overhead numbers are vacuous.
    assert payload["trace_events"] > 0
    assert payload["hook_calls"] > 0
    # The disabled path carries no measurable instrumentation cost.
    assert abs(payload["disabled_overhead_pct"]) < DISABLED_GATE_PCT
    # Fully enabled stays in the same ballpark (it does real work by design).
    assert payload["enabled_overhead_pct"] < ENABLED_GATE_PCT


if __name__ == "__main__":
    out = run_overhead_bench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
