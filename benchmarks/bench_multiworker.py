"""Multi-worker service benchmark: N pre-forked workers vs a single worker.

Boots two service fronts over the same warm DBLP stand-in catalog — a
:class:`~repro.service.MultiWorkerServer` with ``WORKERS`` pre-forked
processes sharing one SO_REUSEPORT port (graph segments published once,
attached zero-copy by every worker), and a plain single-process
:class:`~repro.service.ServiceServer` — then drives each with the same
closed-loop client pool and compares throughput. Results land in
``BENCH_multiworker.json`` at the repo root.

Gates:

* **correctness** (always) — every response from every worker must carry
  exactly the embeddings a direct serial session produces, regardless of
  which worker the kernel picked;
* **scaling** (recorded in ``scaling_gate``) — ``"enforced"`` when
  ``os.cpu_count() >= 2``: the multi-worker front must not fall far behind
  the single worker (floor ``SCALING_FLOOR``x). ``"skipped_1cpu"`` on a
  single-core box, where N processes time-slice one core and no scaling
  claim is honest (numbers still recorded).

Runs standalone (``python benchmarks/bench_multiworker.py``) or under
``pytest benchmarks/ --benchmark-only``. Skipped where the platform lacks
SO_REUSEPORT or the fork start method.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import threading
import time
from pathlib import Path

import pytest
from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.experiments.report import render_table
from repro.service import (
    GraphCatalog,
    MultiWorkerServer,
    QueryService,
    ServiceClient,
    ServiceServer,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multiworker.json"

DATASET = "dblp"
NUM_QUERIES = 12
QUERY_EDGES = 4
K = 10
WORKERS = 2
THREADS = 4
ROUNDS = 2  # each client thread replays the stream this many times
SCALING_FLOOR = 0.8


def _platform_supported() -> bool:
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return False
    return True


def _drive(url: str, queries, expected):
    """Closed-loop load: THREADS clients replay the stream; returns stats."""
    latencies = []
    mismatches = []
    lock = threading.Lock()

    def closed_loop():
        client = ServiceClient(url, timeout=120.0)
        local = []
        for _ in range(ROUNDS):
            for query in queries:
                start = time.perf_counter()
                body = client.query(DATASET, query)
                local.append(time.perf_counter() - start)
                if body["embeddings"] != expected[query.canonical_key()]:
                    with lock:
                        mismatches.append(query.canonical_key())
        with lock:
            latencies.extend(local)

    workers = [threading.Thread(target=closed_loop) for _ in range(THREADS)]
    wall_start = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall = time.perf_counter() - wall_start
    return {
        "requests": len(latencies),
        "mismatches": len(mismatches),
        "mean_ms": 1e3 * sum(latencies) / len(latencies) if latencies else 0.0,
        "throughput_rps": len(latencies) / wall if wall else 0.0,
    }


def _catalog(graph, config):
    catalog = GraphCatalog(default_config=config)
    catalog.add_graph(DATASET, graph, source="bench")
    return catalog


def run_multiworker_bench():
    graph = bench_graph(DATASET)
    graph.index_cache()
    queries = list(bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES))
    config = dsql_config(K)
    expected = {
        q.canonical_key(): [list(e) for e in r.embeddings]
        for q, r in zip(queries, DSQL(graph, config=config).query_many(queries))
    }

    multi = MultiWorkerServer(_catalog(graph, config), workers=WORKERS).start()
    try:
        multi_stats = _drive(multi.url, queries, expected)
        metrics = multi.merged_metrics()
        multi_stats["per_worker_requests"] = [
            {
                "worker": row.get("worker"),
                "requests": (row.get("metrics") or {}).get("service.requests", 0),
            }
            for row in metrics["per_worker"]
        ]
        multi_stats["shared_bytes"] = metrics["shared_bytes"]
    finally:
        multi.close()

    single_service = QueryService(
        _catalog(graph, config), max_in_flight=THREADS, max_queue=THREADS * 4
    )
    single_server = ServiceServer(single_service, port=0).start()
    try:
        single_stats = _drive(single_server.url, queries, expected)
    finally:
        single_server.close()

    cpus = os.cpu_count() or 1
    payload = {
        "dataset": DATASET,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "k": K,
        "workers": WORKERS,
        "threads": THREADS,
        "cpus": cpus,
        "scaling_gate": "enforced" if cpus >= 2 else "skipped_1cpu",
        "scaling_floor": SCALING_FLOOR,
        "multi": multi_stats,
        "single": single_stats,
        "multi_vs_single_throughput": (
            multi_stats["throughput_rps"] / single_stats["throughput_rps"]
            if single_stats["throughput_rps"]
            else float("inf")
        ),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    multi, single = payload["multi"], payload["single"]
    per_worker = " ".join(
        f"w{row['worker']}:{int(row['requests'])}"
        for row in multi.get("per_worker_requests", [])
    )
    rows = [
        ["dataset", payload["dataset"]],
        ["workers / threads / cpus",
         f"{payload['workers']} / {payload['threads']} / {payload['cpus']}"],
        ["scaling gate", payload["scaling_gate"]],
        ["multi throughput (req/s)", f"{multi['throughput_rps']:.1f}"],
        ["single throughput (req/s)", f"{single['throughput_rps']:.1f}"],
        ["multi vs single", f"{payload['multi_vs_single_throughput']:.2f}x"],
        ["per-worker requests", per_worker or "-"],
        ["shared graph bytes", str(multi.get("shared_bytes", 0))],
        ["mismatches", str(multi["mismatches"] + single["mismatches"])],
    ]
    return render_table(["metric", "value"], rows)


@pytest.mark.skipif(
    not _platform_supported(),
    reason="multiworker front requires SO_REUSEPORT and the fork start method",
)
def test_multiworker_bench(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_multiworker_bench, rounds=1, iterations=1)
    emit("multiworker", _report(payload))
    assert payload["multi"]["requests"] == THREADS * ROUNDS * NUM_QUERIES
    # Hard gate: no worker may ever trade correctness for throughput.
    assert payload["multi"]["mismatches"] == 0
    assert payload["single"]["mismatches"] == 0
    assert payload["multi"]["shared_bytes"] > 0
    # Scaling claim only where parallel hardware exists to back it.
    if payload["scaling_gate"] == "enforced":
        assert payload["multi_vs_single_throughput"] >= SCALING_FLOOR
    else:
        print(
            "scaling gate skipped: single-CPU machine "
            f"(cpus={payload['cpus']}); {payload['workers']} workers "
            "time-slice one core, numbers recorded without a claim"
        )


if __name__ == "__main__":
    if not _platform_supported():
        raise SystemExit("platform lacks SO_REUSEPORT or fork; nothing to measure")
    out = run_multiworker_bench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
