"""BoostIso-style compression vs the plain engine (Table 2's generator).

The paper uses BoostIso [24] (twin-vertex compression over TurboISO) as its
exhaustive-enumeration workhorse: identical results, faster generation, and
it can finish counts that plain engines cannot. Compression pays exactly
when vertices are interchangeable, so this bench runs two regimes:

* a **twin-rich casting graph** (movies with interchangeable cast members —
  the structure [24] motivates): class-level counting computes exact
  multi-million counts orders of magnitude faster than vertex-level
  enumeration can even approach;
* the **imdb stand-in** (ratio ~0.7): exactness holds and compressed
  counting completes totals the plain engine's budget truncates.
"""

from __future__ import annotations

import random
import time

from common import emit
from repro.experiments.report import render_table
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.compression import CompressedGraph, count_embeddings_compressed
from repro.isomorphism.qsearch import count_embeddings


def casting_graph(num_movies: int = 120, cast: int = 12, seed: int = 3) -> LabeledGraph:
    """Movies with interchangeable casts: the twin-rich regime of [24]."""
    rng = random.Random(seed)
    labels = []
    edges = []
    vid = 0
    for _ in range(num_movies):
        movie = vid
        labels.append(f"Genre{rng.randrange(4)}")
        vid += 1
        for _ in range(cast):
            labels.append("Actor" if rng.random() < 0.7 else "Actress")
            edges.append((movie, vid))
            vid += 1
    return LabeledGraph(labels, edges, name="casting")


def run_twin_rich():
    graph = casting_graph()
    compressed = CompressedGraph(graph)
    query = QueryGraph(
        ["Genre1", "Actor", "Actor", "Actress"],
        [(0, 1), (0, 2), (0, 3)],
        name="one-movie-cast",
    )
    start = time.perf_counter()
    comp_count, comp_complete = count_embeddings_compressed(
        graph, query, compressed=compressed
    )
    comp_ms = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    plain_count, plain_complete = count_embeddings(graph, query, node_budget=300_000)
    plain_ms = (time.perf_counter() - start) * 1000
    return {
        "ratio": compressed.compression_ratio(),
        "comp": (comp_count, comp_complete, comp_ms),
        "plain": (plain_count, plain_complete, plain_ms),
    }


def test_compression_twin_rich(benchmark):
    result = benchmark.pedantic(run_twin_rich, rounds=1, iterations=1)
    comp_count, comp_complete, comp_ms = result["comp"]
    plain_count, plain_complete, plain_ms = result["plain"]
    rows = [
        ["compressed", comp_count, "yes" if comp_complete else "no", f"{comp_ms:.1f}"],
        ["plain", plain_count, "yes" if plain_complete else "no", f"{plain_ms:.1f}"],
    ]
    emit(
        "compression_twin_rich",
        render_table(["engine", "count", "complete", "ms"], rows)
        + f"\n(compression ratio {result['ratio']:.3f})",
    )
    # Twin-rich graphs collapse hard.
    assert result["ratio"] < 0.3
    assert comp_complete
    # Exactness whenever the plain engine also finished.
    if plain_complete:
        assert comp_count == plain_count
        # ...and the class-level count must be meaningfully faster.
        assert comp_ms < plain_ms
    else:
        assert comp_count >= plain_count


def test_compression_exactness_on_imdb_standin(benchmark):
    """Small queries on the affiliation stand-in: identical counts."""
    from common import bench_graph, bench_queries

    graph = bench_graph("imdb")
    compressed = CompressedGraph(graph)
    queries = bench_queries("imdb", 2, 2, seed=9)

    def run():
        rows = []
        for i, query in enumerate(queries):
            plain, plain_done = count_embeddings(graph, query, node_budget=50_000)
            comp, comp_done = count_embeddings_compressed(
                graph, query, compressed=compressed, node_budget=50_000
            )
            rows.append([f"q{i}", plain, plain_done, comp, comp_done])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "compression_imdb_exactness",
        render_table(["query", "plain", "complete", "compressed", "complete"], rows),
    )
    for _, plain, plain_done, comp, comp_done in rows:
        if plain_done and comp_done:
            assert plain == comp
