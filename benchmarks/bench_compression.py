"""Twin-compression gates. Writes ``BENCH_compression.json`` at repo root.

The paper uses BoostIso [24] (twin-vertex compression over TurboISO) as its
exhaustive-enumeration workhorse: identical results, faster generation, and
it can finish counts that plain engines cannot. Compression pays exactly
when vertices are interchangeable, so the gates run two regimes:

* ``endtoend_speedup_x`` — on the **imdb stand-in** (the redundancy-heavy
  registry dataset: one-credit careers give popular works large
  interchangeable casts, compression ratio ~0.54), an exhaustive fan-out
  count suite through the cached partition must run at least **1.5x** the
  plain vertex-level engine, with every count exact either way.
* ``aa_overhead_pct`` — interleaved A/A on **yeast** (ratio ~1.0, zero
  twins): DSQL with ``use_compression=True`` vs off must stay within
  **10%**. Where redundancy is absent the toggle may not tax queries — the
  cbitset plan kernel refuses pools the partition cannot shrink
  (``CBITSET_MAX_RATIO``), so the A/A run also pins that refusal.
* ``mismatches`` — every timed comparison is checked for result identity
  (counts equal, ``DSQResult`` views identical), so fast-but-wrong cannot
  pass. The DSQL mechanism path is additionally held to *bit-identical*
  results with compression on (same embeddings, same ``nodes_expanded``).

Two narrative (non-JSON) benches ride along: the twin-rich casting graph
where class-level counting computes exact multi-million counts orders of
magnitude faster than enumeration can approach, and small-query exactness
on imdb.

Runs standalone (``python benchmarks/bench_compression.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import random
import time
import timeit
from dataclasses import replace
from pathlib import Path

from common import bench_graph, bench_queries, dsql_config, emit
from repro.core.dsql import DSQL
from repro.experiments.report import render_table
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.compression import CompressedGraph, count_embeddings_compressed
from repro.isomorphism.qsearch import count_embeddings

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compression.json"

RICH_DATASET = "imdb"  # bipartite affiliation: ratio ~0.54 at bench scale
LOW_DATASET = "yeast"  # lognormal PPI: ratio ~1.0, zero twins
REPEATS = 3
AA_QUERIES = 10
AA_EDGES = 4
K = 10

SPEEDUP_GATE_X = 1.5
AA_GATE_PCT = 10.0

# Fan-out stars over the two biggest work labels: the casts of popular
# works are where one-credit twins concentrate.
STAR_WORK_LABELS = ("W0", "W1")
STAR_PERSON_LABELS = ("L0", "L1", "L2")


def _star_suite():
    """Star-3 queries per (work label, person label): exhaustive fan-out."""
    return [
        QueryGraph([wl, pl, pl, pl], [(0, 1), (0, 2), (0, 3)])
        for wl in STAR_WORK_LABELS
        for pl in STAR_PERSON_LABELS
    ]


def _end_to_end(graph):
    """Exact fan-out counts, plain vs through the cached class partition."""
    queries = _star_suite()
    cache = graph.index_cache()
    start = time.perf_counter()
    compressed = cache.compressed()
    build_ms = (time.perf_counter() - start) * 1000

    mismatches = 0
    for query in queries:  # warm + exactness before any timing
        plain, plain_done = count_embeddings(graph, query)
        comp, comp_done = count_embeddings_compressed(
            graph, query, compressed=compressed
        )
        if not (plain_done and comp_done and plain == comp):
            mismatches += 1

    def plain_suite():
        for query in queries:
            count_embeddings(graph, query)

    def comp_suite():
        for query in queries:
            count_embeddings_compressed(graph, query, compressed=compressed)

    plain_s = min(timeit.repeat(plain_suite, number=1, repeat=REPEATS))
    comp_s = min(timeit.repeat(comp_suite, number=1, repeat=REPEATS))
    return {
        "endtoend_dataset": RICH_DATASET,
        "endtoend_queries": len(queries),
        "endtoend_ratio": compressed.compression_ratio(),
        "endtoend_build_ms": build_ms,
        "endtoend_plain_seconds": plain_s,
        "endtoend_compressed_seconds": comp_s,
        "endtoend_speedup_x": plain_s / comp_s,
        "endtoend_mismatches": mismatches,
    }


def _dsql_identity(graph):
    """The DSQL mechanism path: identical results *and* identical charges."""
    queries = list(bench_queries(RICH_DATASET, 3, 6, seed=13))
    config = dsql_config(K)
    on = DSQL(graph, config=replace(config, use_compression=True))
    off = DSQL(graph, config=config)
    mismatches = 0
    for query in queries:
        r_on, r_off = on.query(query), off.query(query)
        if (
            r_on.embeddings,
            r_on.coverage,
            r_on.optimal,
            r_on.level,
            r_on.stats.nodes_expanded,
        ) != (
            r_off.embeddings,
            r_off.coverage,
            r_off.optimal,
            r_off.level,
            r_off.stats.nodes_expanded,
        ):
            mismatches += 1
    return {"dsql_queries": len(queries), "dsql_mismatches": mismatches}


def _aa_overhead(graph):
    """Interleaved A/A: use_compression on vs off where twins are absent."""
    queries = list(bench_queries(LOW_DATASET, AA_EDGES, AA_QUERIES, seed=5))
    config = dsql_config(K)
    on_config = replace(config, use_compression=True)
    ratio = graph.index_cache().compressed().compression_ratio()

    mismatches = 0
    on, off = DSQL(graph, config=on_config), DSQL(graph, config=config)
    for query in queries:
        r_on, r_off = on.query(query), off.query(query)
        if (r_on.embeddings, r_on.coverage, r_on.optimal, r_on.level) != (
            r_off.embeddings,
            r_off.coverage,
            r_off.optimal,
            r_off.level,
        ):
            mismatches += 1

    def run_off():
        session = DSQL(graph, config=config)
        for query in queries:
            session.query(query)

    def run_on():
        session = DSQL(graph, config=on_config)
        for query in queries:
            session.query(query)

    run_off()
    run_on()  # warm every code path (incl. the partition build) before timing
    series_off, series_on = [], []
    for _ in range(REPEATS + 2):  # interleaved to share thermal/cache drift
        series_off.append(timeit.timeit(run_off, number=1))
        series_on.append(timeit.timeit(run_on, number=1))
    baseline = min(series_off)
    return {
        "aa_dataset": LOW_DATASET,
        "aa_ratio": ratio,
        "aa_batch": len(queries),
        "aa_off_seconds": baseline,
        "aa_on_seconds": min(series_on),
        "aa_overhead_pct": 100.0 * (min(series_on) - baseline) / baseline,
        "aa_mismatches": mismatches,
    }


def run_compression_bench():
    rich = bench_graph(RICH_DATASET)
    low = bench_graph(LOW_DATASET)
    payload = {
        "k": K,
        "repeats": REPEATS,
        "gate_endtoend_speedup_x": SPEEDUP_GATE_X,
        "gate_aa_overhead_pct": AA_GATE_PCT,
    }
    payload.update(_end_to_end(rich))
    payload.update(_dsql_identity(rich))
    payload.update(_aa_overhead(low))
    payload["mismatches"] = (
        payload["endtoend_mismatches"]
        + payload["dsql_mismatches"]
        + payload["aa_mismatches"]
    )
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    rows = [
        [
            "fan-out suite (imdb)",
            f"{payload['endtoend_plain_seconds']:.2f}s plain / "
            f"{payload['endtoend_compressed_seconds']:.2f}s compressed",
        ],
        [
            "end-to-end speedup",
            f"{payload['endtoend_speedup_x']:.2f}x (gate >= {SPEEDUP_GATE_X}x)",
        ],
        ["compression ratio (imdb)", f"{payload['endtoend_ratio']:.3f}"],
        ["partition build", f"{payload['endtoend_build_ms']:.1f}ms"],
        [
            "A/A overhead (yeast)",
            f"{payload['aa_overhead_pct']:+.2f}% (gate < {AA_GATE_PCT:.0f}%)",
        ],
        ["mismatches", str(payload["mismatches"])],
    ]
    return render_table(["metric", "value"], rows)


def test_compression_gates(benchmark):
    payload = benchmark.pedantic(run_compression_bench, rounds=1, iterations=1)
    emit("compression_gates", _report(payload))
    assert payload["mismatches"] == 0
    assert payload["endtoend_speedup_x"] >= SPEEDUP_GATE_X
    assert payload["aa_overhead_pct"] < AA_GATE_PCT


# ----------------------------------------------------------------------
# Narrative benches (no JSON): the regimes the substrate was built for.
# ----------------------------------------------------------------------
def casting_graph(num_movies: int = 120, cast: int = 12, seed: int = 3) -> LabeledGraph:
    """Movies with interchangeable casts: the twin-rich regime of [24]."""
    rng = random.Random(seed)
    labels = []
    edges = []
    vid = 0
    for _ in range(num_movies):
        movie = vid
        labels.append(f"Genre{rng.randrange(4)}")
        vid += 1
        for _ in range(cast):
            labels.append("Actor" if rng.random() < 0.7 else "Actress")
            edges.append((movie, vid))
            vid += 1
    return LabeledGraph(labels, edges, name="casting")


def run_twin_rich():
    graph = casting_graph()
    compressed = CompressedGraph(graph)
    query = QueryGraph(
        ["Genre1", "Actor", "Actor", "Actress"],
        [(0, 1), (0, 2), (0, 3)],
        name="one-movie-cast",
    )
    start = time.perf_counter()
    comp_count, comp_complete = count_embeddings_compressed(
        graph, query, compressed=compressed
    )
    comp_ms = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    plain_count, plain_complete = count_embeddings(graph, query, node_budget=300_000)
    plain_ms = (time.perf_counter() - start) * 1000
    return {
        "ratio": compressed.compression_ratio(),
        "comp": (comp_count, comp_complete, comp_ms),
        "plain": (plain_count, plain_complete, plain_ms),
    }


def test_compression_twin_rich(benchmark):
    result = benchmark.pedantic(run_twin_rich, rounds=1, iterations=1)
    comp_count, comp_complete, comp_ms = result["comp"]
    plain_count, plain_complete, plain_ms = result["plain"]
    rows = [
        ["compressed", comp_count, "yes" if comp_complete else "no", f"{comp_ms:.1f}"],
        ["plain", plain_count, "yes" if plain_complete else "no", f"{plain_ms:.1f}"],
    ]
    emit(
        "compression_twin_rich",
        render_table(["engine", "count", "complete", "ms"], rows)
        + f"\n(compression ratio {result['ratio']:.3f})",
    )
    # Twin-rich graphs collapse hard.
    assert result["ratio"] < 0.3
    assert comp_complete
    # Exactness whenever the plain engine also finished.
    if plain_complete:
        assert comp_count == plain_count
        # ...and the class-level count must be meaningfully faster.
        assert comp_ms < plain_ms
    else:
        assert comp_count >= plain_count


def test_compression_exactness_on_imdb_standin(benchmark):
    """Small queries on the affiliation stand-in: identical counts."""
    graph = bench_graph("imdb")
    compressed = CompressedGraph(graph)
    queries = bench_queries("imdb", 2, 2, seed=9)

    def run():
        rows = []
        for i, query in enumerate(queries):
            plain, plain_done = count_embeddings(graph, query, node_budget=50_000)
            comp, comp_done = count_embeddings_compressed(
                graph, query, compressed=compressed, node_budget=50_000
            )
            rows.append([f"q{i}", plain, plain_done, comp, comp_done])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "compression_imdb_exactness",
        render_table(["query", "plain", "complete", "compressed", "complete"], rows),
    )
    for _, plain, plain_done, comp, comp_done in rows:
        if plain_done and comp_done:
            assert plain == comp


if __name__ == "__main__":
    out = run_compression_bench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
