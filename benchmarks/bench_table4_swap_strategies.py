"""Table 4 — enumerate-all + k-coverage strategies vs DSQL (DBLP).

Paper (Appendix B.2): with all embeddings pre-generated (time ``t``),
SWAP1/SWAP2/SWAP_A/SWAPα reach coverage ~112-123, Greedy ~118-127 at
higher selection cost, while DSQL reaches 127.4 in ~10ms without any
pre-generation. The qualitative claims: (a) generation dominates the
pipeline cost, (b) Greedy >= swaps in coverage, (c) DSQL matches the best
pipelines at a fraction of the total time.
"""

from __future__ import annotations

import statistics
import time

from common import bench_graph, bench_queries, dsql_config, emit, queries_per_point
from repro.baselines.enumerate_then_cover import STRATEGIES, generate_all, select_top_k
from repro.core.dsql import DSQL
from repro.coverage.core import coverage as coverage_of
from repro.experiments.report import render_table
from repro.experiments.workloads import DEFAULT_K, DEFAULT_QUERY_EDGES

GENERATION_BUDGET = 60_000


def build_rows():
    graph = bench_graph("dblp")
    queries = bench_queries("dblp", DEFAULT_QUERY_EDGES, queries_per_point(5))

    per_strategy = {s: {"cov": [], "ms": []} for s in STRATEGIES}
    gen_times, dsql_cov, dsql_ms = [], [], []

    solver = DSQL(graph, config=dsql_config(DEFAULT_K))
    for query in queries:
        start = time.perf_counter()
        embeddings = generate_all(graph, query, node_budget=GENERATION_BUDGET)
        gen_times.append(time.perf_counter() - start)
        for strategy in STRATEGIES:
            start = time.perf_counter()
            members = select_top_k(embeddings, DEFAULT_K, strategy)
            per_strategy[strategy]["ms"].append((time.perf_counter() - start) * 1000)
            per_strategy[strategy]["cov"].append(coverage_of(members))
        start = time.perf_counter()
        result = solver.query(query)
        dsql_ms.append((time.perf_counter() - start) * 1000)
        dsql_cov.append(result.coverage)

    t = statistics.fmean(gen_times) * 1000
    rows = []
    for strategy in STRATEGIES:
        rows.append(
            [
                strategy,
                f"{statistics.fmean(per_strategy[strategy]['ms']):.2f}+t",
                f"{statistics.fmean(per_strategy[strategy]['cov']):.1f}",
            ]
        )
    rows.append(["DSQL", f"{statistics.fmean(dsql_ms):.2f}", f"{statistics.fmean(dsql_cov):.1f}"])
    return rows, t


def test_table4_swap_strategies(benchmark):
    rows, t = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = render_table(["strategy", "time (ms)", "coverage"], rows)
    emit("table4_swap_strategies", table + f"\n(t = generation = {t:.1f} ms/query)")

    cov = {row[0]: float(row[2]) for row in rows}
    ms = {row[0]: float(str(row[1]).replace("+t", "")) for row in rows}
    # Shape (a): generation dominates the indexed selection stages (the
    # paper's SWAP implementations are PNP-indexed; ours indexes SWAPalpha
    # and SWAP2 — SWAP0/SWAP1/SWAP_A stay deliberately naive baselines).
    assert t > ms["SWAPalpha"] * 0.5
    # Shape (b): Greedy's coverage is at least each single-pass swap's - slack.
    for s in ("SWAP1", "SWAP2", "SWAP_A", "SWAPalpha"):
        assert cov["Greedy"] >= cov[s] - 2.0, s
    # Shape (c): DSQL is within a small factor of the best pipeline coverage
    # while skipping generation entirely.
    best = max(cov[s] for s in STRATEGIES)
    assert cov["DSQL"] >= 0.7 * best
    assert ms["DSQL"] < t + max(ms.values())
