"""Table 1 — statistics of the dataset stand-ins.

Regenerates the dataset-statistics table at bench scale and records the
published full-scale numbers alongside, so the scaling substitution is
visible in one place.
"""

from __future__ import annotations

from common import bench_graph, emit
from repro.datasets.registry import dataset_names, get_profile
from repro.experiments.report import render_table
from repro.graph.statistics import compute_statistics


def build_table() -> str:
    rows = []
    for name in dataset_names():
        profile = get_profile(name)
        stats = compute_statistics(bench_graph(name))
        rows.append(
            [
                name,
                f"{profile.num_vertices}/{stats.num_vertices}",
                f"{profile.num_edges}/{stats.num_edges}",
                f"{profile.num_labels}/{stats.num_labels}",
                f"{profile.avg_degree:.2f}/{stats.average_degree:.2f}",
            ]
        )
    return render_table(
        ["dataset", "|V| paper/bench", "|E| paper/bench", "|Sigma| p/b", "avg deg p/b"],
        rows,
    )


def test_table1_statistics(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table1_datasets", table)
    # Shape assertions: every stand-in keeps its profile's density.
    for name in dataset_names():
        stats = compute_statistics(bench_graph(name))
        profile = get_profile(name)
        assert abs(stats.average_degree - profile.avg_degree) / profile.avg_degree < 0.35
