"""Cost-estimation gates. Writes ``BENCH_cost.json`` at repo root.

Two claims from the cost-estimation work are held to numbers here:

* **Estimator quality** — Spearman rank correlation between the raw model
  output and the engine's actual ``nodes_expanded`` across mixed-size
  query sets on five registry datasets. Gates: pooled rho >= 0.8, median
  per-dataset rho >= 0.8, every dataset >= 0.6 (wordnet's within-class
  variance is structurally invisible to static features; the floor keeps
  the gate honest instead of hiding it). A second pass over the same
  workload must show the EWMA calibration tightening the pooled mean
  absolute log-error (pass 2 < pass 1).

* **Load shedding** — an adversarial mixed workload (10% crafted
  dense-pool queries interleaved into cheap traffic, closed-loop
  clients) through the transport-free ``QueryService.handle_post`` path.
  Cost-aware admission must hold the cheap queries' p95 latency within 2x
  of their isolated p95 (same clients, no dense queries interleaved),
  while count-based admission — where cheap requests queue behind dense
  ones — must not. Both ratios are recorded; every answered request is
  compared against a serial DSQL reference and the mismatch count must be
  zero (the gate may delay or shed, never change answers).

Runs standalone (``python benchmarks/bench_cost.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import itertools
import json
import math
import random
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.cost.calibration import CalibrationState
from repro.experiments.report import render_table
from repro.graph.query_graph import QueryGraph
from repro.service import GraphCatalog, QueryService
from repro.service.schemas import query_graph_to_json

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cost.json"

# -- estimator-quality probe -------------------------------------------
QUALITY_DATASETS = ["yeast", "human", "dblp", "wordnet", "epinion"]
QUALITY_MIX = [(3, 20, 13), (5, 25, 7), (8, 20, 11)]  # (edges, count, seed)
QUALITY_K = 40

GATE_SPEARMAN_POOLED = 0.8
GATE_SPEARMAN_MEDIAN = 0.8
GATE_SPEARMAN_FLOOR = 0.6

# -- adversarial mixed workload ----------------------------------------
WORKLOAD_DATASET = "yeast"
WORKLOAD_K = 16
WORKLOAD_SEED = 404
WORKERS = 3
CHEAP_REQUESTS = 135
DENSE_REQUESTS = 15  # 10% of the mixed workload
DENSE_MIN_RAW = 3000.0  # raw work units qualifying a crafted query as dense
COUNT_IN_FLIGHT = 1  # the concurrency knob count-based admission relies on
COUNT_QUEUE = 64
BUDGET_HEADROOM = 1.3  # work-unit budget over the costliest dense estimate
CALIBRATION_ROUNDS = 3  # pre-run feedback rounds so the gate sees honest costs

GATE_CHEAP_P95_RATIO = 2.0


def p95(samples: Sequence[float]) -> float:
    ordered = sorted(samples)
    return ordered[int(0.95 * (len(ordered) - 1))]


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rho with average ranks for ties (no scipy dependency)."""

    def ranks(vals: Sequence[float]) -> List[float]:
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        out = [0.0] * len(vals)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and vals[order[j + 1]] == vals[order[i]]:
                j += 1
            for t in range(i, j + 1):
                out[order[t]] = (i + j) / 2.0
            i = j + 1
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mx, my = sum(rx) / n, sum(ry) / n
    num = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    den = math.sqrt(
        sum((a - mx) ** 2 for a in rx) * sum((b - my) ** 2 for b in ry)
    )
    return num / den if den else 0.0


def _abs_log_err(estimated: float, actual: float) -> float:
    return abs(math.log(actual + 1.0) - math.log(estimated + 1.0))


def estimator_quality() -> Dict[str, object]:
    """Spearman per dataset + pooled, and the two-pass calibration check."""
    per_dataset: Dict[str, float] = {}
    pass1: Dict[str, float] = {}
    pass2: Dict[str, float] = {}
    pooled_est: List[float] = []
    pooled_act: List[float] = []
    pooled_err = {1: [], 2: []}
    total_expansions = 0
    total_seconds = 0.0
    for name in QUALITY_DATASETS:
        graph = bench_graph(name)
        cache = graph.index_cache()
        estimator = cache.cost_estimator()
        estimator.restore(CalibrationState())  # pristine: measure from scratch
        solver = DSQL(graph, config=dsql_config(k=QUALITY_K))
        plans, raws, actuals = [], [], []
        for num_edges, count, seed in QUALITY_MIX:
            for query in bench_queries(name, num_edges, count, seed=seed):
                plan = cache.plan_cache.get_or_compile(query, cache)
                raw = estimator.estimate(plan, k=QUALITY_K).raw_expansions
                start = time.perf_counter()
                result = solver.query(query)
                total_seconds += time.perf_counter() - start
                plans.append(plan)
                raws.append(raw)
                actuals.append(result.stats.nodes_expanded)
                total_expansions += result.stats.nodes_expanded
        per_dataset[name] = round(spearman(raws, actuals), 3)
        pooled_est.extend(raws)
        pooled_act.extend(actuals)
        # Two passes over the same workload. Pass 1 is the cold server:
        # every estimate comes from the pristine state, then the actuals
        # are fed back. Pass 2 replays the workload against what pass 1
        # learned (still observing, as the live service would).
        errors1 = [
            _abs_log_err(estimator.estimate(plan, k=QUALITY_K).work_units, actual)
            for plan, actual in zip(plans, actuals)
        ]
        for plan, actual in zip(plans, actuals):
            estimator.observe(estimator.estimate(plan, k=QUALITY_K), actual)
        errors2 = []
        for plan, actual in zip(plans, actuals):
            estimate = estimator.estimate(plan, k=QUALITY_K)
            errors2.append(_abs_log_err(estimate.work_units, actual))
            estimator.observe(estimate, actual)
        for pass_no, errors in ((1, errors1), (2, errors2)):
            mean = sum(errors) / len(errors)
            (pass1 if pass_no == 1 else pass2)[name] = round(mean, 3)
            pooled_err[pass_no].extend(errors)
    rhos = sorted(per_dataset.values())
    return {
        "spearman_per_dataset": per_dataset,
        "spearman_pooled": round(spearman(pooled_est, pooled_act), 3),
        "spearman_median": round(rhos[len(rhos) // 2], 3),
        "spearman_min": round(rhos[0], 3),
        "calibration_pass1_mean_abs_log_err": round(
            sum(pooled_err[1]) / len(pooled_err[1]), 3
        ),
        "calibration_pass2_mean_abs_log_err": round(
            sum(pooled_err[2]) / len(pooled_err[2]), 3
        ),
        "calibration_pass1_per_dataset": pass1,
        "calibration_pass2_per_dataset": pass2,
        "measured_units_per_ms": round(total_expansions / (1000.0 * total_seconds), 1),
        "quality_queries": len(pooled_act),
    }


# ----------------------------------------------------------------------
# Adversarial mixed workload
# ----------------------------------------------------------------------
def dense_queries(graph) -> List[QueryGraph]:
    """Crafted dense-pool adversaries: 6-cycles over the three most
    frequent labels, kept when the raw model prices them as heavy. These
    are the queries the count-based gate cannot distinguish from cheap
    traffic (each is still "one request")."""
    top = [label for label, _ in Counter(graph.labels).most_common(3)]
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]
    cache = graph.index_cache()
    estimator = cache.cost_estimator()
    scored, seen = [], set()
    for combo in itertools.product(range(3), repeat=6):
        if combo.count(0) < 3:  # >= 3 hub-label vertices keeps costs in a band
            continue
        labels = tuple(top[i] for i in combo)
        if labels in seen:
            continue
        seen.add(labels)
        query = QueryGraph(list(labels), edges)
        plan = cache.plan_cache.get_or_compile(query, cache)
        raw = estimator.estimate(plan, k=WORKLOAD_K).raw_expansions
        if raw >= DENSE_MIN_RAW:
            scored.append((raw, query))
    if len(scored) < DENSE_REQUESTS:
        raise RuntimeError(f"only {len(scored)} dense queries found")
    scored.sort(key=lambda item: -item[0])  # heaviest first
    return [query for _, query in scored[:DENSE_REQUESTS]]


def cheap_queries(graph) -> List[QueryGraph]:
    """The cheap 90%: generator queries ranked by estimate, cheapest first,
    deduplicated so the service memo cannot shortcut repeats."""
    cache = graph.index_cache()
    estimator = cache.cost_estimator()
    pool, seen = [], set()
    for num_edges, seed in [(3, 101), (3, 102), (5, 103), (5, 104)]:
        for query in bench_queries(WORKLOAD_DATASET, num_edges, 50, seed=seed):
            key = query.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            plan = cache.plan_cache.get_or_compile(query, cache)
            cost = estimator.estimate(plan, k=WORKLOAD_K).raw_expansions
            pool.append((cost, query))
    pool.sort(key=lambda item: item[0])
    if len(pool) < CHEAP_REQUESTS:
        raise RuntimeError(f"only {len(pool)} distinct cheap queries")
    return [query for _, query in pool[:CHEAP_REQUESTS]]


def run_workload(
    service: QueryService,
    schedule: Sequence[Tuple[str, int]],
    payloads: Dict[Tuple[str, int], Dict[str, object]],
) -> List[Tuple[str, int, float, Dict[str, object]]]:
    """Drive the service with WORKERS closed-loop clients; returns
    ``(kind, status, latency_s, body)`` per request in schedule order."""
    results: List = [None] * len(schedule)
    cursor = itertools.count()

    def client() -> None:
        while True:
            i = next(cursor)
            if i >= len(schedule):
                return
            kind, _ = schedule[i]
            payload = payloads[schedule[i]]
            start = time.perf_counter()
            status, body, _ = service.handle_post("/v1/query", lambda p=payload: p)
            results[i] = (kind, status, time.perf_counter() - start, body)

    threads = [threading.Thread(target=client) for _ in range(WORKERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def _fresh_service(graph, **kwargs) -> QueryService:
    catalog = GraphCatalog(default_config=dsql_config(k=WORKLOAD_K))
    catalog.add_graph("bench", graph)
    return QueryService(catalog, **kwargs)


def adversarial_workload() -> Dict[str, object]:
    graph = bench_graph(WORKLOAD_DATASET)
    dense = dense_queries(graph)
    cheap = cheap_queries(graph)

    # Serial reference: the answer every admission mode must reproduce.
    reference_session = DSQL(graph, config=dsql_config(k=WORKLOAD_K))
    reference: Dict[Tuple[str, int], object] = {}
    for kind, batch in (("dense", dense), ("cheap", cheap)):
        for i, query in enumerate(batch):
            reference[(kind, i)] = reference_session.query(query)

    payloads = {
        (kind, i): {"graph": "bench", "query": query_graph_to_json(query)}
        for kind, batch in (("dense", dense), ("cheap", cheap))
        for i, query in enumerate(batch)
    }
    mixed = [("cheap", i) for i in range(len(cheap))]
    mixed += [("dense", i) for i in range(len(dense))]
    random.Random(WORKLOAD_SEED).shuffle(mixed)
    cheap_only = [("cheap", i) for i in range(len(cheap))]

    # Converge the calibration on this workload before anything is timed:
    # the service observes (estimate, actual) per answered query, so a few
    # feedback rounds with the reference actuals put the estimator where a
    # warm server would be, and the work-unit budget is sized from honest
    # numbers instead of the raw model's bias.
    cache = graph.index_cache()
    estimator = cache.cost_estimator()
    workload_plans = {
        key: cache.plan_cache.get_or_compile(payloadless, cache)
        for key, payloadless in [
            ((kind, i), query)
            for kind, batch in (("dense", dense), ("cheap", cheap))
            for i, query in enumerate(batch)
        ]
    }
    for _ in range(CALIBRATION_ROUNDS):
        for key, plan in workload_plans.items():
            estimate = estimator.estimate(plan, k=WORKLOAD_K)
            estimator.observe(estimate, reference[key].stats.nodes_expanded)

    # One dense query plus all the cheap traffic fits inside the budget; a
    # second expensive dense query overlapping it is shed.
    dense_estimates = [
        estimator.estimate(workload_plans[("dense", i)], k=WORKLOAD_K).work_units
        for i in range(len(dense))
    ]
    budget = BUDGET_HEADROOM * max(dense_estimates)

    mismatches = 0
    runs: Dict[str, Dict[str, object]] = {}

    def verify(results, schedule) -> None:
        nonlocal mismatches
        for (kind, i), (_, status, _, body) in zip(schedule, results):
            if status != 200:
                continue
            want = reference[(kind, i)]
            if body["embeddings"] != [list(e) for e in want.embeddings]:
                mismatches += 1
            elif body["coverage"] != want.coverage:
                mismatches += 1

    # Isolated baseline: same clients, no dense queries, no gate.
    service = _fresh_service(graph, admission_mode="off")
    try:
        isolated = run_workload(service, cheap_only, payloads)
    finally:
        service.close()
    verify(isolated, cheap_only)
    isolated_p95 = p95([lat for _, status, lat, _ in isolated if status == 200])

    for mode, kwargs in (
        ("count", {"admission_mode": "count", "max_in_flight": COUNT_IN_FLIGHT,
                   "max_queue": COUNT_QUEUE}),
        ("cost", {"admission_mode": "cost", "max_in_flight": COUNT_IN_FLIGHT,
                  "work_unit_budget": budget}),
    ):
        service = _fresh_service(graph, **kwargs)
        try:
            results = run_workload(service, mixed, payloads)
        finally:
            service.close()
        verify(results, mixed)
        cheap_latencies = [
            lat for (kind, _), (_, status, lat, _) in zip(mixed, results)
            if kind == "cheap" and status == 200
        ]
        dense_served = sum(
            1 for (kind, _), (_, status, _, _) in zip(mixed, results)
            if kind == "dense" and status == 200
        )
        dense_shed = sum(
            1 for (kind, _), (_, status, _, _) in zip(mixed, results)
            if kind == "dense" and status == 429
        )
        cheap_shed = sum(
            1 for (kind, _), (_, status, _, _) in zip(mixed, results)
            if kind == "cheap" and status == 429
        )
        runs[mode] = {
            "cheap_p95_ms": round(1e3 * p95(cheap_latencies), 2),
            "cheap_served": len(cheap_latencies),
            "cheap_shed": cheap_shed,
            "dense_served": dense_served,
            "dense_shed": dense_shed,
            "cheap_p95_ratio": round(p95(cheap_latencies) / isolated_p95, 2),
        }

    return {
        "workload_dataset": WORKLOAD_DATASET,
        "workload_requests": len(mixed),
        "dense_requests": len(dense),
        "workers": WORKERS,
        "work_unit_budget": round(budget, 1),
        "isolated_cheap_p95_ms": round(1e3 * isolated_p95, 2),
        "count": runs["count"],
        "cost": runs["cost"],
        "cheap_p95_ratio_count": runs["count"]["cheap_p95_ratio"],
        "cheap_p95_ratio_cost": runs["cost"]["cheap_p95_ratio"],
        "mismatches": mismatches,
    }


def run_cost_bench() -> Dict[str, object]:
    payload: Dict[str, object] = {
        "gate_spearman_pooled": GATE_SPEARMAN_POOLED,
        "gate_spearman_median": GATE_SPEARMAN_MEDIAN,
        "gate_spearman_floor": GATE_SPEARMAN_FLOOR,
        "gate_cheap_p95_ratio": GATE_CHEAP_P95_RATIO,
    }
    payload.update(estimator_quality())
    payload.update(adversarial_workload())
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload: Dict[str, object]) -> str:
    per = payload["spearman_per_dataset"]
    rows = [
        ["spearman pooled", f"{payload['spearman_pooled']:+.3f} (gate >= {GATE_SPEARMAN_POOLED})"],
        ["spearman median", f"{payload['spearman_median']:+.3f} (gate >= {GATE_SPEARMAN_MEDIAN})"],
        ["spearman per dataset",
         "  ".join(f"{name}={rho:+.3f}" for name, rho in per.items())],
        ["calibration mabs log-err",
         f"pass1 {payload['calibration_pass1_mean_abs_log_err']:.3f} -> "
         f"pass2 {payload['calibration_pass2_mean_abs_log_err']:.3f}"],
        ["measured unit rate", f"{payload['measured_units_per_ms']:,} units/ms"],
        ["isolated cheap p95", f"{payload['isolated_cheap_p95_ms']:.2f}ms"],
        ["count-mode cheap p95",
         f"{payload['count']['cheap_p95_ms']:.2f}ms "
         f"({payload['cheap_p95_ratio_count']:.2f}x isolated)"],
        ["cost-mode cheap p95",
         f"{payload['cost']['cheap_p95_ms']:.2f}ms "
         f"({payload['cheap_p95_ratio_cost']:.2f}x isolated, gate <= {GATE_CHEAP_P95_RATIO}x)"],
        ["cost-mode shedding",
         f"{payload['cost']['dense_shed']} dense shed, "
         f"{payload['cost']['cheap_shed']} cheap shed, "
         f"{payload['cost']['dense_served']} dense served"],
        ["mismatches", str(payload["mismatches"])],
    ]
    return render_table(["metric", "value"], rows)


def test_cost_estimation(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_cost_bench, rounds=1, iterations=1)
    emit("cost", _report(payload))
    assert payload["mismatches"] == 0
    assert payload["spearman_pooled"] >= GATE_SPEARMAN_POOLED
    assert payload["spearman_median"] >= GATE_SPEARMAN_MEDIAN
    assert payload["spearman_min"] >= GATE_SPEARMAN_FLOOR
    assert (
        payload["calibration_pass2_mean_abs_log_err"]
        < payload["calibration_pass1_mean_abs_log_err"]
    )
    assert payload["cheap_p95_ratio_cost"] <= GATE_CHEAP_P95_RATIO
    assert payload["cheap_p95_ratio_count"] > GATE_CHEAP_P95_RATIO


if __name__ == "__main__":
    out = run_cost_bench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
