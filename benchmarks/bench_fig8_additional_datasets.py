"""Figure 8 — DSQL / DSQLh / COM on Yeast, Human and USpatent.

Paper (Appendix B.3): the trends of Figure 6 repeat; on the dense graphs
(Human, USpatent) plain DSQL and COM can blow past the time limit, and the
relaxed DSQLh variant stays fast with coverage still close to MAX.
"""

from __future__ import annotations

import pytest

from common import (
    bench_graph,
    bench_queries,
    com_adapter,
    dsql_config,
    emit,
    queries_per_point,
    run_dsql_batch,
    run_solver_batch,
)
from repro.core.config import DSQLConfig
from repro.experiments.report import render_series
from repro.experiments.workloads import DEFAULT_K, DEFAULT_QUERY_EDGES, K_GRID

DATASETS = ["yeast", "human", "uspatent"]


def dsqlh_config(k: int) -> DSQLConfig:
    return DSQLConfig.dsqlh(k, node_budget=300_000)


def sweep_k(name: str):
    graph = bench_graph(name)
    queries = bench_queries(name, DEFAULT_QUERY_EDGES, queries_per_point(5))
    series = {
        "DSQL cov": [], "DSQLh cov": [], "COM cov": [], "MAX": [],
        "DSQL ms": [], "DSQLh ms": [], "COM ms": [],
    }
    for k in K_GRID:
        dsql = run_dsql_batch(graph, queries, dsql_config(k))
        dsqlh = run_dsql_batch(graph, queries, dsqlh_config(k), label="DSQLh")
        com = run_solver_batch(graph, queries, com_adapter(k), k, "COM")
        series["DSQL cov"].append(dsql.mean_coverage)
        series["DSQLh cov"].append(dsqlh.mean_coverage)
        series["COM cov"].append(com.mean_coverage)
        series["MAX"].append(dsql.mean_max)
        series["DSQL ms"].append(dsql.mean_millis)
        series["DSQLh ms"].append(dsqlh.mean_millis)
        series["COM ms"].append(com.mean_millis)
    return series


@pytest.mark.parametrize("name", DATASETS)
def test_fig8_vary_k(benchmark, name):
    series = benchmark.pedantic(sweep_k, args=(name,), rounds=1, iterations=1)
    emit(f"fig8_{name}_vary_k", render_series("k", K_GRID, series))
    # Shape: DSQL beats COM on coverage at every k.
    for d, c in zip(series["DSQL cov"], series["COM cov"]):
        assert d >= c - 1e-9
    # Shape: DSQLh stays within a reasonable band of DSQL's coverage while
    # never being dramatically slower (the point of the relaxation).
    for dh, d in zip(series["DSQLh cov"], series["DSQL cov"]):
        assert dh >= 0.4 * d, name


def test_fig8_dsqlh_speedup_on_dense_graph(benchmark):
    """On the dense Human stand-in DSQLh must not be slower than DSQL."""
    graph = bench_graph("human")
    queries = bench_queries("human", DEFAULT_QUERY_EDGES, queries_per_point(5))

    def run_pair():
        dsql = run_dsql_batch(graph, queries, dsql_config(DEFAULT_K))
        dsqlh = run_dsql_batch(graph, queries, dsqlh_config(DEFAULT_K), label="DSQLh")
        return dsql, dsqlh

    dsql, dsqlh = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    emit(
        "fig8_human_dsqlh",
        f"DSQL : {dsql.mean_millis:.2f} ms, cov {dsql.mean_coverage:.1f}\n"
        f"DSQLh: {dsqlh.mean_millis:.2f} ms, cov {dsqlh.mean_coverage:.1f}",
    )
    assert dsqlh.mean_millis <= dsql.mean_millis * 1.5
