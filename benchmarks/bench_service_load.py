"""Service load benchmark: closed-loop clients against a warm catalog.

Boots one in-process :class:`~repro.service.ServiceServer` holding the DBLP
stand-in warm (pinned index cache + primed session), then drives it with a
closed-loop load generator — ``THREADS`` clients, each issuing its share of
the query stream back-to-back over HTTP and recording per-request
latencies. The cold baseline answers the same queries the way a one-shot
CLI invocation would: rebuild the graph, rebuild the per-graph index
cache, construct a fresh :class:`~repro.core.dsql.DSQL`, then query.

Results land in ``BENCH_service.json`` at the repo root with warm
p50/p95/p99, throughput, and the cold per-request mean.

Gates:

* **correctness** (always) — every HTTP response carries exactly the
  embeddings a direct serial session produces;
* **amortization** (always) — warm p50 must beat the cold per-request
  mean. This is the service's reason to exist: the cold path pays graph +
  index construction on every request, the warm path pays it once at
  startup. The margin is large (orders of magnitude), so the gate is not
  hardware-sensitive.

Runs standalone (``python benchmarks/bench_service_load.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from common import bench_graph, bench_queries, dsql_config
from repro.core.dsql import DSQL
from repro.experiments.report import render_table
from repro.graph.labeled_graph import LabeledGraph
from repro.service import GraphCatalog, QueryService, ServiceClient, ServiceServer

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

DATASET = "dblp"
NUM_QUERIES = 12
QUERY_EDGES = 4
K = 10
THREADS = 4
ROUNDS = 2  # each thread replays the stream this many times (memo gets hot)
COLD_REQUESTS = 5


def _percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def _cold_request(labels, edges, query, config) -> float:
    """One request the way a cold process pays for it: graph + index + DSQL."""
    start = time.perf_counter()
    graph = LabeledGraph(list(labels), list(edges))
    graph.index_cache()
    DSQL(graph, config=config).query(query)
    return time.perf_counter() - start


def run_load_bench():
    graph = bench_graph(DATASET)
    queries = list(bench_queries(DATASET, QUERY_EDGES, NUM_QUERIES))
    config = dsql_config(K)

    reference = DSQL(graph, config=config).query_many(queries)
    expected = {
        q.canonical_key(): [list(e) for e in r.embeddings]
        for q, r in zip(queries, reference)
    }

    catalog = GraphCatalog(default_config=config)
    catalog.add_graph(DATASET, graph, source="bench")
    service = QueryService(catalog, max_in_flight=THREADS, max_queue=THREADS * 4)
    server = ServiceServer(service, port=0).start()
    latencies = []
    mismatches = []
    lock = threading.Lock()

    def closed_loop():
        client = ServiceClient(server.url, timeout=120.0)
        local = []
        for _ in range(ROUNDS):
            for query in queries:
                start = time.perf_counter()
                body = client.query(DATASET, query)
                local.append(time.perf_counter() - start)
                if body["embeddings"] != expected[query.canonical_key()]:
                    with lock:
                        mismatches.append(query.canonical_key())
        with lock:
            latencies.extend(local)

    try:
        workers = [threading.Thread(target=closed_loop) for _ in range(THREADS)]
        wall_start = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        wall = time.perf_counter() - wall_start
    finally:
        server.close()

    labels, edges = list(graph.labels), list(graph.edges())
    cold = [
        _cold_request(labels, edges, queries[i % len(queries)], config)
        for i in range(COLD_REQUESTS)
    ]

    ordered = sorted(latencies)
    payload = {
        "dataset": DATASET,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "k": K,
        "threads": THREADS,
        "requests": len(latencies),
        "mismatches": len(mismatches),
        "warm": {
            "p50_ms": 1e3 * _percentile(ordered, 0.50),
            "p95_ms": 1e3 * _percentile(ordered, 0.95),
            "p99_ms": 1e3 * _percentile(ordered, 0.99),
            "throughput_rps": len(latencies) / wall if wall else 0.0,
        },
        "cold": {
            "requests": len(cold),
            "mean_ms": 1e3 * sum(cold) / len(cold),
            "min_ms": 1e3 * min(cold),
        },
    }
    payload["warm_p50_vs_cold_mean"] = (
        payload["cold"]["mean_ms"] / payload["warm"]["p50_ms"]
        if payload["warm"]["p50_ms"]
        else float("inf")
    )
    OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def _report(payload) -> str:
    warm, cold = payload["warm"], payload["cold"]
    rows = [
        ["dataset", payload["dataset"]],
        ["threads / requests", f"{payload['threads']} / {payload['requests']}"],
        ["warm p50 / p95 / p99 (ms)",
         f"{warm['p50_ms']:.2f} / {warm['p95_ms']:.2f} / {warm['p99_ms']:.2f}"],
        ["warm throughput (req/s)", f"{warm['throughput_rps']:.1f}"],
        ["cold per-request mean (ms)", f"{cold['mean_ms']:.2f}"],
        ["cold mean / warm p50", f"{payload['warm_p50_vs_cold_mean']:.1f}x"],
        ["mismatches", str(payload["mismatches"])],
    ]
    return render_table(["metric", "value"], rows)


def test_service_load(benchmark):
    from common import emit

    payload = benchmark.pedantic(run_load_bench, rounds=1, iterations=1)
    emit("service_load", _report(payload))
    assert payload["requests"] == THREADS * ROUNDS * NUM_QUERIES
    # Hard gate: the service must never trade correctness for latency.
    assert payload["mismatches"] == 0
    # Amortization gate: the warm catalog beats cold per-request
    # construction — otherwise the serving layer has no reason to exist.
    assert payload["warm"]["p50_ms"] < payload["cold"]["mean_ms"]


if __name__ == "__main__":
    out = run_load_bench()
    print(_report(out))
    print(f"\nwrote {OUT_PATH}")
