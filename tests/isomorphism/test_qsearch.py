"""Unit tests for :mod:`repro.isomorphism.qsearch`.

The central property: the engine enumerates exactly the embeddings a naive
brute force finds, across a spread of small random graphs and query shapes.
"""

from __future__ import annotations

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.indexes.candidates import CandidateIndex
from repro.isomorphism.qsearch import (
    QSearchEngine,
    connected_search_order,
    count_embeddings,
    enumerate_embeddings,
    first_k_embeddings,
    has_embedding,
)
from repro.queries.ordering import selectivity_order

from tests.conftest import (
    brute_force_embeddings,
    connected_query_from,
    random_labeled_graph,
)


class TestConnectedSearchOrder:
    def test_order_keeps_connectivity(self):
        q = QueryGraph(["a", "b", "c", "d"], [(0, 1), (1, 2), (2, 3)])
        idx_graph = LabeledGraph(["a", "b", "c", "d"], [(0, 1), (1, 2), (2, 3)])
        idx = CandidateIndex(idx_graph, q)
        order = connected_search_order(q, selectivity_order(q, idx))
        placed = {order[0]}
        for u in order[1:]:
            assert set(q.neighbors(u)) & placed, f"node {u} has no earlier neighbor"
            placed.add(u)

    def test_order_is_permutation(self):
        q = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
        g = LabeledGraph(["a", "b", "c"], [(0, 1), (1, 2)])
        order = connected_search_order(q, selectivity_order(q, CandidateIndex(g, q)))
        assert sorted(order) == [0, 1, 2]


class TestEnumerationCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_random(self, seed):
        graph = random_labeled_graph(18, 3, 0.25, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 100)
        expected = set(brute_force_embeddings(graph, query))
        got = set(enumerate_embeddings(graph, query))
        assert got == expected

    @pytest.mark.parametrize("edges", [1, 2, 4, 5])
    def test_matches_brute_force_query_sizes(self, edges):
        graph = random_labeled_graph(16, 2, 0.3, seed=11)
        query = connected_query_from(graph, edges, seed=edges)
        assert set(enumerate_embeddings(graph, query)) == set(
            brute_force_embeddings(graph, query)
        )

    def test_single_node_query(self):
        graph = LabeledGraph(["a", "a", "b"], [(0, 1), (1, 2)])
        query = QueryGraph(["a"])
        assert set(enumerate_embeddings(graph, query)) == {(0,), (1,)}

    def test_no_matches(self):
        graph = LabeledGraph(["a", "a"], [(0, 1)])
        query = QueryGraph(["a", "z"], [(0, 1)])
        assert enumerate_embeddings(graph, query) == []

    def test_triangle_symmetry_counted(self):
        # A same-label triangle has 3! = 6 automorphic embeddings.
        graph = LabeledGraph(["x", "x", "x"], [(0, 1), (1, 2), (0, 2)])
        query = QueryGraph(["x", "x", "x"], [(0, 1), (1, 2), (0, 2)])
        assert len(enumerate_embeddings(graph, query)) == 6

    def test_distinct_vertex_sets(self):
        graph = LabeledGraph(["x", "x", "x"], [(0, 1), (1, 2), (0, 2)])
        query = QueryGraph(["x", "x", "x"], [(0, 1), (1, 2), (0, 2)])
        assert len(enumerate_embeddings(graph, query, distinct_vertex_sets=True)) == 1


class TestLimitsAndBudgets:
    def test_limit(self):
        graph = random_labeled_graph(20, 2, 0.3, seed=2)
        query = connected_query_from(graph, 2, seed=3)
        full = enumerate_embeddings(graph, query)
        assert len(enumerate_embeddings(graph, query, limit=3)) == min(3, len(full))

    def test_first_k(self):
        graph = random_labeled_graph(20, 2, 0.3, seed=2)
        query = connected_query_from(graph, 2, seed=3)
        k = first_k_embeddings(graph, query, 5)
        assert len(k) <= 5
        assert k == enumerate_embeddings(graph, query, limit=5)

    def test_budget_truncates(self):
        graph = random_labeled_graph(30, 2, 0.4, seed=5)
        query = connected_query_from(graph, 3, seed=5)
        engine = QSearchEngine(graph, query, node_budget=10)
        results = list(engine.embeddings())
        assert engine.budget_exhausted
        full = enumerate_embeddings(graph, query)
        assert len(results) <= len(full)

    def test_count_embeddings_complete_flag(self):
        graph = random_labeled_graph(15, 3, 0.25, seed=6)
        query = connected_query_from(graph, 2, seed=6)
        count, complete = count_embeddings(graph, query)
        assert complete
        assert count == len(brute_force_embeddings(graph, query))

    def test_count_embeddings_budget_flag(self):
        graph = random_labeled_graph(30, 2, 0.4, seed=5)
        query = connected_query_from(graph, 3, seed=5)
        _, complete = count_embeddings(graph, query, node_budget=5)
        assert not complete

    def test_has_embedding(self):
        graph = LabeledGraph(["a", "b"], [(0, 1)])
        assert has_embedding(graph, QueryGraph(["a", "b"], [(0, 1)]))
        assert not has_embedding(graph, QueryGraph(["a", "a"], [(0, 1)]))


class TestEmbeddingValidity:
    def test_all_outputs_valid(self):
        from repro.graph.validation import validate_embedding

        graph = random_labeled_graph(25, 3, 0.2, seed=9)
        query = connected_query_from(graph, 4, seed=9)
        for mapping in enumerate_embeddings(graph, query):
            validate_embedding(graph, query, mapping)

    def test_no_duplicate_mappings(self):
        graph = random_labeled_graph(25, 3, 0.2, seed=10)
        query = connected_query_from(graph, 3, seed=10)
        out = enumerate_embeddings(graph, query)
        assert len(out) == len(set(out))
