"""Tests for BoostIso-style twin compression (:mod:`repro.isomorphism.compression`)."""

from __future__ import annotations

import pytest

from repro.datasets.paper_figures import figure4, figure5
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.compression import (
    CompressedGraph,
    count_embeddings_compressed,
    enumerate_embeddings_compressed,
)
from repro.isomorphism.qsearch import count_embeddings, enumerate_embeddings

from tests.conftest import connected_query_from, random_labeled_graph


class TestCompressedGraph:
    def test_false_twins_grouped(self):
        # v1 and v2 both attach only to v0: identical open neighborhoods.
        g = LabeledGraph(["a", "b", "b"], [(0, 1), (0, 2)])
        c = CompressedGraph(g)
        assert c.class_of[1] == c.class_of[2]
        assert not c.clique[c.class_of[1]]

    def test_true_twins_grouped_as_clique(self):
        # v1, v2 adjacent to each other and both to v0: closed twins.
        g = LabeledGraph(["a", "b", "b"], [(0, 1), (0, 2), (1, 2)])
        c = CompressedGraph(g)
        assert c.class_of[1] == c.class_of[2]
        assert c.clique[c.class_of[1]]

    def test_labels_respected(self):
        g = LabeledGraph(["a", "b", "c"], [(0, 1), (0, 2)])
        c = CompressedGraph(g)
        assert c.class_of[1] != c.class_of[2]

    def test_partition_covers_all_vertices(self):
        g = random_labeled_graph(30, 3, 0.2, seed=1)
        c = CompressedGraph(g)
        seen = sorted(v for members in c.classes for v in members)
        assert seen == list(g.vertices())

    def test_class_adjacency_consistent(self):
        g = random_labeled_graph(25, 3, 0.25, seed=2)
        c = CompressedGraph(g)
        for u, v in g.edges():
            cu, cv = c.class_of[u], c.class_of[v]
            if cu != cv:
                assert cv in c.neighbors(cu)

    def test_twin_heavy_graphs_compress_hard(self):
        # A hub with 50 interchangeable leaves per label: 102 vertices
        # collapse to 3 classes. (figure4's fans carry *private* leaves, so
        # they are deliberately twin-free — compression is orthogonal to
        # the §5 skipping strategies.)
        labels = ["a"] + ["b"] * 50 + ["c"] * 50
        edges = [(0, v) for v in range(1, 101)]
        c = CompressedGraph(LabeledGraph(labels, edges))
        assert c.num_classes == 3
        assert c.compression_ratio() < 0.05

    def test_compression_ratio_bounds(self):
        g = random_labeled_graph(20, 3, 0.3, seed=3)
        c = CompressedGraph(g)
        assert 0 < c.compression_ratio() <= 1.0


class TestCountingExactness:
    @pytest.mark.parametrize("seed", range(8))
    def test_counts_match_plain_engine_random(self, seed):
        graph = random_labeled_graph(22, 3, 0.25, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 211)
        plain, complete = count_embeddings(graph, query)
        assert complete
        assert count_embeddings_compressed(graph, query) == (plain, True)

    def test_counts_match_on_twin_heavy_fixtures(self):
        for graph, query in (figure4(width=15), figure5(width=8, teasers=4)):
            plain, _ = count_embeddings(graph, query)
            assert count_embeddings_compressed(graph, query) == (plain, True)

    def test_same_class_query_nodes_need_clique(self):
        # Two same-label query nodes joined by an edge can only land in a
        # clique class; false twins cannot host them.
        g_false = LabeledGraph(["a", "b", "b"], [(0, 1), (0, 2)])
        g_true = LabeledGraph(["a", "b", "b"], [(0, 1), (0, 2), (1, 2)])
        q = QueryGraph(["b", "b"], [(0, 1)])
        assert count_embeddings_compressed(g_false, q) == (0, True)
        assert count_embeddings_compressed(g_true, q) == (2, True)

    def test_no_candidates(self):
        g = LabeledGraph(["a", "a"], [(0, 1)])
        q = QueryGraph(["z"])
        assert count_embeddings_compressed(g, q) == (0, True)


class TestEnumerationExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_enumeration_matches_plain_engine(self, seed):
        graph = random_labeled_graph(20, 3, 0.25, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 97)
        plain = set(enumerate_embeddings(graph, query))
        compressed = enumerate_embeddings_compressed(graph, query)
        assert set(compressed) == plain
        assert len(compressed) == len(plain)

    def test_limit(self):
        graph, query = figure4(width=10)
        full = enumerate_embeddings_compressed(graph, query)
        limited = enumerate_embeddings_compressed(graph, query, limit=1)
        assert len(limited) == min(1, len(full))

    def test_reusable_compression(self):
        graph = random_labeled_graph(20, 3, 0.25, seed=9)
        compressed = CompressedGraph(graph)
        q1 = connected_query_from(graph, 2, seed=1)
        q2 = connected_query_from(graph, 3, seed=2)
        for q in (q1, q2):
            plain, _ = count_embeddings(graph, q)
            count, complete = count_embeddings_compressed(graph, q, compressed=compressed)
            assert complete and count == plain
