"""Unit tests for :mod:`repro.isomorphism.match`."""

from __future__ import annotations

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.match import (
    distinct_by_vertex_set,
    induced_match_subgraph,
    matched_edges,
    vertex_set,
)


def _setting():
    graph = LabeledGraph(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)])
    query = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
    return graph, query


class TestVertexSet:
    def test_basic(self):
        assert vertex_set((3, 1, 2)) == frozenset({1, 2, 3})

    def test_frozen(self):
        assert isinstance(vertex_set([1]), frozenset)


class TestMatchedEdges:
    def test_normalized_sorted(self):
        _, query = _setting()
        assert matched_edges(query, (2, 1, 0)) == [(0, 1), (1, 2)]

    def test_only_query_edges(self):
        graph, query = _setting()
        # The data edge (0, 2) exists but is not a query edge: excluded.
        edges = matched_edges(query, (0, 1, 2))
        assert (0, 2) not in edges


class TestInducedMatchSubgraph:
    def test_labels_and_structure(self):
        graph, query = _setting()
        sub = induced_match_subgraph(graph, query, (0, 1, 2))
        assert list(sub.labels) == ["a", "b", "c"]
        assert sub.num_edges == 2  # not the induced triangle

    def test_is_isomorphic_to_query(self):
        graph, query = _setting()
        sub = induced_match_subgraph(graph, query, (0, 1, 2))
        assert sorted(sub.degree_sequence()) == sorted(query.degree_sequence())


class TestDistinctByVertexSet:
    def test_dedup(self):
        out = list(distinct_by_vertex_set([(0, 1), (1, 0), (1, 2)]))
        assert out == [(0, 1), (1, 2)]

    def test_keeps_first_occurrence(self):
        out = list(distinct_by_vertex_set([(5, 6), (6, 5)]))
        assert out == [(5, 6)]

    def test_empty(self):
        assert list(distinct_by_vertex_set([])) == []
