"""Tests for the conflict-directed SQ engine (:mod:`repro.isomorphism.optimized`)."""

from __future__ import annotations

import pytest

from repro.datasets.paper_figures import figure4, figure5
from repro.isomorphism.optimized import (
    OptimizedQSearchEngine,
    enumerate_embeddings_optimized,
)
from repro.isomorphism.qsearch import QSearchEngine, enumerate_embeddings

from tests.conftest import (
    brute_force_embeddings,
    connected_query_from,
    random_labeled_graph,
)


class TestExactness:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        graph = random_labeled_graph(20, 3, 0.25, seed=seed)
        query = connected_query_from(graph, 3, seed=seed + 101)
        got = set(enumerate_embeddings_optimized(graph, query))
        assert got == set(brute_force_embeddings(graph, query))

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_plain_engine(self, seed):
        graph = random_labeled_graph(25, 2, 0.2, seed=seed)
        query = connected_query_from(graph, 4, seed=seed + 53)
        plain = set(enumerate_embeddings(graph, query))
        optimized = set(enumerate_embeddings_optimized(graph, query))
        assert plain == optimized

    def test_exact_on_adversarial_fixtures(self):
        for graph, query in (figure4(width=25), figure5(width=12, teasers=6)):
            plain = set(enumerate_embeddings(graph, query))
            optimized = set(enumerate_embeddings_optimized(graph, query))
            assert plain == optimized

    def test_limit(self):
        graph = random_labeled_graph(25, 2, 0.25, seed=3)
        query = connected_query_from(graph, 2, seed=3)
        full = enumerate_embeddings_optimized(graph, query)
        assert enumerate_embeddings_optimized(graph, query, limit=2) == full[:2]


class TestPruningPower:
    def test_fewer_expansions_on_conflict_fixture(self):
        graph, query = figure4(width=60)
        plain = QSearchEngine(graph, query)
        list(plain.embeddings())
        opt = OptimizedQSearchEngine(graph, query)
        list(opt.embeddings())
        assert opt.nodes_expanded < plain.nodes_expanded
        assert opt.conflict_skips > 0

    def test_no_extra_expansions_on_bad_vertex_fixture(self):
        """The SQ engine's own search order may already dodge the figure5
        trap; the optimized engine must never do *more* work."""
        graph, query = figure5(width=30, teasers=15)
        plain = QSearchEngine(graph, query)
        list(plain.embeddings())
        opt = OptimizedQSearchEngine(graph, query)
        list(opt.embeddings())
        assert opt.nodes_expanded <= plain.nodes_expanded

    def test_strategies_toggleable(self):
        graph, query = figure4(width=40)
        off = OptimizedQSearchEngine(
            graph, query, conflict_backjumping=False, bad_vertex_skipping=False
        )
        on = OptimizedQSearchEngine(graph, query)
        assert set(off.embeddings()) == set(on.embeddings())
        assert on.nodes_expanded <= off.nodes_expanded

    def test_budget(self):
        graph = random_labeled_graph(40, 2, 0.3, seed=9)
        query = connected_query_from(graph, 3, seed=9)
        engine = OptimizedQSearchEngine(graph, query, node_budget=20)
        list(engine.embeddings())
        assert engine.budget_exhausted
