"""Unit tests for :mod:`repro.isomorphism.joinable`."""

from __future__ import annotations

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.joinable import (
    UNMATCHED,
    is_joinable,
    joinable_ignoring_injectivity,
)


def _setting():
    graph = LabeledGraph(["a", "b", "c", "b"], [(0, 1), (1, 2), (0, 3)])
    query = QueryGraph(["a", "b", "c"], [(0, 1), (1, 2)])
    return graph, query


class TestIsJoinable:
    def test_join_ok(self):
        graph, query = _setting()
        assignment = [0, UNMATCHED, UNMATCHED]
        assert is_joinable(graph, query, assignment, {0}, 1, 1)

    def test_join_fails_missing_edge(self):
        graph, query = _setting()
        # v3 ("b") has no edge to v2 if we later need it — here test node 1
        # against matched node 0 -> v0: (v0, v3) exists, so joinable; but
        # matching node 2 to v3 against node 1 -> v1 must fail (no edge 1-3).
        assignment = [UNMATCHED, 1, UNMATCHED]
        assert not is_joinable(graph, query, assignment, {1}, 2, 3)

    def test_injectivity(self):
        graph, query = _setting()
        assignment = [0, UNMATCHED, UNMATCHED]
        assert not is_joinable(graph, query, assignment, {0}, 1, 0)

    def test_unmatched_neighbors_ignored(self):
        graph, query = _setting()
        assignment = [UNMATCHED, UNMATCHED, UNMATCHED]
        assert is_joinable(graph, query, assignment, set(), 1, 3)


class TestJoinableIgnoringInjectivity:
    def test_reused_vertex_allowed(self):
        graph, query = _setting()
        assignment = [0, UNMATCHED, UNMATCHED]
        # v0 is held by node 0 but edge-consistency for node 1 -> v0 is
        # what matters here: query edge (0,1) needs data edge (v0, v0): none.
        assert not joinable_ignoring_injectivity(graph, query, assignment, 1, 0)

    def test_edge_consistency_checked(self):
        graph, query = _setting()
        assignment = [UNMATCHED, 1, UNMATCHED]
        assert joinable_ignoring_injectivity(graph, query, assignment, 2, 2)
        assert not joinable_ignoring_injectivity(graph, query, assignment, 2, 3)
