"""Direct unit tests for the compression expanders and split repair.

``_expand`` carries a subtle contract: it returns ``True`` exactly when
``out`` has been truncated at ``limit`` and the *caller's* loop over class
assignments must stop. The limit check runs before each append, so
``len(out)`` can never exceed ``limit``, a zero/negative limit yields
nothing, and a pre-filled ``out`` at the limit is left untouched. These
tests pin that contract at the function level (the property suite only
sees it indirectly through result equality), plus the lazy expander's
pay-per-pull accounting and :meth:`CompressedGraph.apply_delta` repair
semantics.
"""

from __future__ import annotations

from itertools import islice

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.query_graph import QueryGraph
from repro.isomorphism.compression import (
    CompressedGraph,
    _expand,
    count_embeddings_compressed,
    enumerate_embeddings_compressed,
    iter_embeddings_compressed,
)
from repro.isomorphism.qsearch import enumerate_embeddings


def hub_and_leaves(num_leaves: int = 3):
    """One ``a`` hub, ``num_leaves`` interchangeable ``b`` leaves."""
    labels = ["a"] + ["b"] * num_leaves
    edges = [(0, v) for v in range(1, num_leaves + 1)]
    graph = LabeledGraph(labels, edges)
    comp = CompressedGraph(graph)
    return graph, comp


def frame_for(comp, assignment):
    """The (groups, assignment) pair ``enumerate_embeddings_compressed``
    would hand to ``_expand`` for one class assignment."""
    groups = {}
    for u, cid in enumerate(assignment):
        groups.setdefault(cid, []).append(u)
    return groups, assignment


class TestExpandLimit:
    def setup_method(self):
        self.graph, self.comp = hub_and_leaves(3)
        hub = self.comp.class_of[0]
        leaf = self.comp.class_of[1]
        # Query nodes 0 -> hub class, 1 -> leaf class: 1 * 3 = 3 embeddings.
        self.frame = frame_for(self.comp, [hub, leaf])

    def expand(self, out, limit):
        groups, assignment = self.frame
        return _expand(groups, self.comp, assignment, out, limit)

    def test_no_limit_yields_all_and_reports_unlimited(self):
        out = []
        assert self.expand(out, None) is False
        assert len(out) == 3
        assert len(set(out)) == 3

    def test_zero_limit_appends_nothing_and_reports_limited(self):
        out = []
        assert self.expand(out, 0) is True
        assert out == []

    def test_negative_limit_appends_nothing_and_reports_limited(self):
        out = []
        assert self.expand(out, -2) is True
        assert out == []

    def test_mid_product_truncation_is_exact(self):
        out = []
        assert self.expand(out, 2) is True
        assert len(out) == 2

    def test_limit_at_total_reports_limited(self):
        # All 3 embeddings fit, and the stream is exactly full: the caller
        # must stop — appending frame 2 would overshoot.
        out = []
        assert self.expand(out, 3) is True
        assert len(out) == 3

    def test_limit_beyond_total_reports_unlimited(self):
        out = []
        assert self.expand(out, 5) is False
        assert len(out) == 3

    def test_prefilled_out_at_limit_is_untouched(self):
        # The caller accumulates across frames; a previous frame may already
        # have filled the budget.
        sentinel = [("sentinel",), ("sentinel",)]
        out = list(sentinel)
        assert self.expand(out, 2) is True
        assert out == sentinel

    def test_prefilled_out_below_limit_tops_up_exactly(self):
        out = [("sentinel",)]
        assert self.expand(out, 3) is True
        assert len(out) == 3
        assert out[0] == ("sentinel",)

    def test_multi_node_class_draws_ordered_distinct_members(self):
        # Two query nodes in the leaf class: ordered selections of distinct
        # members, 3 * 2 = 6, never the same vertex twice.
        leaf = self.comp.class_of[1]
        hub = self.comp.class_of[0]
        groups, assignment = frame_for(self.comp, [leaf, hub, leaf])
        out = []
        assert _expand(groups, self.comp, assignment, out, None) is False
        assert len(out) == 6
        assert all(m[0] != m[2] for m in out)
        assert len(set(out)) == 6


class TestEnumerateLimit:
    def setup_method(self):
        self.graph, _ = hub_and_leaves(4)
        self.query = QueryGraph(["b", "a", "b"], [(0, 1), (1, 2)])

    def test_limit_zero_and_negative_return_empty(self):
        assert enumerate_embeddings_compressed(self.graph, self.query, limit=0) == []
        assert enumerate_embeddings_compressed(self.graph, self.query, limit=-1) == []

    def test_limit_truncates_to_exactly_limit(self):
        full = enumerate_embeddings_compressed(self.graph, self.query)
        assert len(full) == 12  # 4 * 3 ordered leaf pairs
        for limit in (1, 5, 11, 12, 13, 50):
            got = enumerate_embeddings_compressed(self.graph, self.query, limit=limit)
            assert len(got) == min(limit, 12)
            assert set(got) <= set(full)

    def test_matches_plain_engine_set(self):
        full = enumerate_embeddings_compressed(self.graph, self.query)
        plain = enumerate_embeddings(self.graph, self.query)
        assert set(full) == set(plain)
        assert len(full) == len(plain)


class TestLazyExpansion:
    def test_counter_pays_per_pull(self):
        graph, comp = hub_and_leaves(4)
        query = QueryGraph(["b", "a", "b"], [(0, 1), (1, 2)])
        stream = iter_embeddings_compressed(graph, query, compressed=comp)
        assert comp.lazy_expansions == 0
        first = list(islice(stream, 3))
        assert len(first) == 3
        assert comp.lazy_expansions == 3
        rest = list(stream)
        assert comp.lazy_expansions == 12
        assert set(first) | set(rest) == set(enumerate_embeddings(graph, query))

    def test_lazy_matches_eager(self):
        graph, comp = hub_and_leaves(3)
        query = QueryGraph(["a", "b"], [(0, 1)])
        lazy = list(iter_embeddings_compressed(graph, query, compressed=comp))
        eager = enumerate_embeddings_compressed(graph, query)
        assert lazy == eager


class TestApplyDelta:
    def test_add_vertex_appends_singleton(self):
        graph, comp = hub_and_leaves(3)
        n = graph.num_vertices
        assert comp.apply_delta([("add_vertex", n, "b")]) == 0
        assert comp.classes[-1] == (n,)
        assert comp.class_of[n] == comp.num_classes - 1
        assert not comp.clique[-1]

    def test_add_vertex_out_of_order_raises(self):
        graph, comp = hub_and_leaves(3)
        with pytest.raises(ValueError):
            comp.apply_delta([("add_vertex", graph.num_vertices + 1, "b")])

    def test_unknown_op_raises(self):
        _, comp = hub_and_leaves(3)
        with pytest.raises(ValueError):
            comp.apply_delta([("recolor", 0, "z")])

    def test_edge_delta_splits_both_shared_endpoints(self):
        graph, comp = hub_and_leaves(4)
        leaf_cid = comp.class_of[1]
        assert comp.size(leaf_cid) == 4
        before_classes = comp.num_classes
        assert graph.add_edge(1, 2)
        splits = comp.apply_delta([("add_edge", 1, 2)])
        assert splits == 2
        assert comp.split_repairs == 2
        # Old class shrank in place; ids are append-only stable.
        assert comp.classes[leaf_cid] == (3, 4)
        assert comp.num_classes == before_classes + 2
        assert comp.class_of[1] != comp.class_of[2] != leaf_cid
        assert comp.classes[comp.class_of[1]] == (1,)
        assert comp.classes[comp.class_of[2]] == (2,)

    def test_singleton_endpoint_counts_no_split(self):
        graph, comp = hub_and_leaves(2)
        hub_cid = comp.class_of[0]
        assert comp.size(hub_cid) == 1
        assert graph.remove_edge(0, 1)
        splits = comp.apply_delta([("remove_edge", 0, 1)])
        # Leaf 1 splits out of the leaf pair; the hub was already alone.
        assert splits == 1

    def test_memoized_views_are_invalidated(self):
        graph, comp = hub_and_leaves(3)
        hub_cid = comp.class_of[0]
        leaf_cid = comp.class_of[1]
        # Memoize pre-delta views.
        assert leaf_cid in comp.neighbors(hub_cid)
        assert (comp.class_join_mask(hub_cid) >> leaf_cid) & 1
        assert graph.remove_edge(0, 1)
        comp.apply_delta([("remove_edge", 0, 1)])
        # Vertex 1 sits alone in a new class that the hub no longer joins.
        new_cid = comp.class_of[1]
        assert new_cid != leaf_cid
        assert new_cid not in comp.neighbors(comp.class_of[0])
        assert not (comp.class_join_mask(comp.class_of[0]) >> new_cid) & 1
        # And results stay exact against the live topology.
        query = QueryGraph(["a", "b"], [(0, 1)])
        count, complete = count_embeddings_compressed(graph, query, compressed=comp)
        assert complete
        assert count == len(enumerate_embeddings(graph, query)) == 2

    def test_empty_delta_is_noop(self):
        _, comp = hub_and_leaves(3)
        comp.neighbors(comp.class_of[0])
        assert comp.apply_delta([]) == 0
        assert comp._adjacency  # memo untouched: nothing was dirtied
